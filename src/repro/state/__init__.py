"""Durability: machine snapshots, the gate-call journal, and recovery.

The paper's central design move — making *all* protection state explicit
machine state (DBR, SDWs, ring brackets, per-ring stacks) — has a
consequence it never needed to exploit: the whole machine is a
serializable value.  This package exploits it.

* :mod:`repro.state.snapshot` — versioned, sha256-hashed serialization
  of a complete :class:`~repro.sim.machine.Machine`, restorable
  bit-identically in every architectural figure;
* :mod:`repro.state.journal` — an append-only, CRC-framed write-ahead
  log of committed gate calls, so any machine state is reconstructible
  as ``snapshot + deterministic replay``;
* :mod:`repro.state.recover` — the replay engine, with a verification
  mode that cross-checks replayed outcomes against the journaled ones
  record by record;
* :mod:`repro.state.replication` — the journal as a replication log:
  live tailing, CRC-reusing ship frames, and warm replica appliers
  with hot failover promotion.

The gateway (:mod:`repro.serve`) builds worker crash recovery and
WAL-shipping replication out of these pieces; the ``repro checkpoint``
/ ``repro restore`` / ``repro replay`` / ``repro journal`` CLI verbs
expose them directly.
"""

from .journal import (
    JournalReader,
    JournalWriter,
    read_journal,
)
from .recover import (
    RecoveryResult,
    ReplayReport,
    recover_slot,
    replay_journal,
)
from .replication import (
    Frame,
    JournalTailer,
    ReplicaApplier,
    decode_frame,
    encode_frame,
    read_frames,
)
from .snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    read_snapshot_file,
    restore_machine,
    snapshot_digest,
    snapshot_machine,
    write_snapshot_file,
)

__all__ = [
    "Frame",
    "JournalReader",
    "JournalTailer",
    "JournalWriter",
    "ReplicaApplier",
    "decode_frame",
    "encode_frame",
    "read_frames",
    "read_journal",
    "RecoveryResult",
    "ReplayReport",
    "recover_slot",
    "replay_journal",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "read_snapshot_file",
    "restore_machine",
    "snapshot_digest",
    "snapshot_machine",
    "write_snapshot_file",
]
