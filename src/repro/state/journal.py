"""The append-only write-ahead journal of committed gate calls.

Binary framing, one file per worker machine::

    +--------+  8-byte magic: b"RPJRNL1\\n"
    | header |
    +--------+
    | record |  <length:u32le> <crc32(payload):u32le> <payload bytes>
    | record |  payload: UTF-8 JSON with a monotonically increasing
    |  ...   |  "seq" field (1, 2, 3, ...)
    +--------+

Why CRC framing rather than trusting JSON to fail loudly: a torn write
at the tail (the process died mid-append) must be *distinguishable*
from corruption in the committed prefix.  The rules, enforced by
:func:`read_journal`:

* an incomplete header or payload at end-of-file is a **torn tail** —
  silently dropped in recovery mode, an error in strict mode;
* a CRC mismatch on the **final** record is treated the same way (the
  length prefix may itself be garbage from a torn write);
* a CRC mismatch with committed records *after* it can never be a torn
  write and always raises :class:`repro.errors.JournalError`, as does a
  sequence-number gap — the prefix was tampered with or the medium is
  failing, and replaying around it would silently lose calls.

:class:`JournalWriter` truncates a torn tail on open, then appends;
``fsync_every`` batches the fsync so the gateway can trade a bounded
loss window (at most ``fsync_every - 1`` acknowledged calls) for
throughput.  The gateway's recovery protocol is at-least-once, so the
trade is availability, not correctness.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple
from zlib import crc32

from ..errors import ConfigurationError, JournalError

MAGIC = b"RPJRNL1\n"

_FRAME = struct.Struct("<II")


def _encode_record(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _FRAME.pack(len(payload), crc32(payload)) + payload


def _scan(
    data: bytes, path: str, strict: bool
) -> Tuple[List[Dict[str, Any]], int]:
    """Parse journal bytes; returns ``(records, good_length)``.

    ``good_length`` is the byte offset one past the last intact record —
    what a recovery-mode writer truncates the file to.
    """
    if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
        if not data and not strict:
            return [], 0
        raise JournalError(f"{path!r} has no journal magic header")
    records: List[Dict[str, Any]] = []
    offset = len(MAGIC)
    last_seq = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            if strict:
                raise JournalError(
                    f"{path!r}: torn record header at byte {offset}"
                )
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            if strict:
                raise JournalError(
                    f"{path!r}: torn record payload at byte {offset}"
                )
            break
        payload = data[start:end]
        if crc32(payload) != crc:
            if strict or end < len(data):
                # bytes after a bad CRC mean the damage is not a torn
                # tail: refuse in every mode
                raise JournalError(
                    f"{path!r}: CRC mismatch in record at byte {offset}"
                )
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise JournalError(
                f"{path!r}: record at byte {offset} passed its CRC but "
                "is not valid JSON"
            ) from None
        seq = record.get("seq")
        if seq != last_seq + 1:
            raise JournalError(
                f"{path!r}: sequence gap — record at byte {offset} has "
                f"seq {seq!r}, expected {last_seq + 1}"
            )
        last_seq = seq
        records.append(record)
        offset = end
    return records, offset


def read_journal(path: str, strict: bool = False) -> List[Dict[str, Any]]:
    """Read every intact record of a journal.

    Recovery mode (default) drops a torn tail; ``strict`` raises
    :class:`repro.errors.JournalError` for *any* imperfection.  A
    missing file is an empty journal in recovery mode.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        if strict:
            raise JournalError(f"no journal at {path!r}") from None
        return []
    records, _ = _scan(data, path, strict)
    return records


class JournalReader:
    """Iterate journal records lazily (CLI replay of large journals)."""

    def __init__(self, path: str, strict: bool = False):
        self.path = path
        self.strict = strict

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(read_journal(self.path, strict=self.strict))


class JournalWriter:
    """Append records; recovers from (and truncates) a torn tail on open.

    ``fsync_every`` = N flushes + fsyncs once every N appends (and on
    :meth:`sync`/:meth:`close`); 1 is the fully durable default.
    """

    def __init__(self, path: str, fsync_every: int = 1):
        if fsync_every < 1:
            raise ConfigurationError("fsync_every must be >= 1")
        self.path = path
        self.fsync_every = fsync_every
        self._pending_syncs = 0
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""
        records, good_length = _scan(data, path, strict=False)
        self.last_seq = records[-1]["seq"] if records else 0
        self._handle = open(path, "r+b" if data else "wb")
        if not data:
            self._handle.write(MAGIC)
            good_length = len(MAGIC)
        elif good_length < len(data):
            self._handle.truncate(good_length)
        self._handle.seek(good_length)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, record: Dict[str, Any]) -> int:
        """Append one record; returns the sequence number it received.

        The writer owns the ``seq`` field — callers must not set it.
        """
        if "seq" in record:
            raise ConfigurationError(
                "the journal writer assigns seq; do not set it"
            )
        seq = self.last_seq + 1
        framed = _encode_record({**record, "seq": seq})
        self._handle.write(framed)
        self.last_seq = seq
        self._pending_syncs += 1
        if self._pending_syncs >= self.fsync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._pending_syncs = 0

    def close(self) -> None:
        """Sync and close the file (idempotent)."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
