"""Versioned, integrity-hashed serialization of a complete machine.

A snapshot is a plain JSON-serializable dict capturing everything the
simulation semantics depend on:

========== ==========================================================
section    contents
========== ==========================================================
config     the construction knobs (memory size, ring hardware, stack
           rule, paging, cost model, cache configuration)
memory     non-zero physical memory in sparse chunks, plus the
           allocator's free list
processor  registers, DBR, trap save stack, interval timer, pending
           events, the *keys* of the SDW associative memory, and the
           host-tier invalidation counters the metrics dict omits
supervisor users, file system, active-segment table, process table
           (descriptor segments, known-segment tables, upward-call
           assists), console, linkage state
counters   ``MetricsSnapshot.as_dict()`` at the instant of capture
extra      opaque caller bookkeeping (the serve workers store their
           program/initiation caches here)
========== ==========================================================

Cache *contents* are deliberately not serialized.  The host-side tiers
(PTLB, decoded-instruction cache, superblock tier) are rebuilt cold —
they are architecturally invisible, so a cold restart changes nothing
the simulation can observe.  The SDW associative memory is different:
its misses are architecturally charged, so a cold SDW cache would make
the restored machine *slower* in simulated cycles than the original.
Descriptor memory is authoritative for SDW bits, so the snapshot
records only which segment numbers were cached (in fill order) and
:meth:`~repro.cpu.processor.Processor.warm_sdw_cache` refills them
uncharged on restore.  Restore-then-continue is therefore bit-identical
to never having stopped, in every architectural figure.

On disk a snapshot travels in an envelope carrying a format tag, a
version, and the sha256 of the canonical JSON encoding; any mismatch
raises :class:`repro.errors.SnapshotError` before a single field is
trusted.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
import zlib
from typing import Any, Dict, List, Optional

from ..core.acl import AclEntry, RingBracketSpec
from ..cpu.faults import Fault, FaultCode
from ..cpu.processor import CostModel, ProcessorStats
from ..cpu.registers import IPR, PointerRegister, RegisterFile
from ..errors import SnapshotError
from ..hardening import HardeningConfig
from ..krnl.baseline645 import SoftwareRingAssist
from ..krnl.callret import ReturnGateRecord, UpwardCallAssist
from ..krnl.filesystem import SegmentNode, split_path
from ..krnl.linkage import PendingLink
from ..krnl.loader import PlacedSegment
from ..krnl.process import KnownSegment, Process
from ..krnl.supervisor import ActiveSegment, ConsoleRecord
from ..mem.descriptor import DBR, DescriptorSegment
from ..mem.paging import PageTable
from ..mem.physical import Allocation
from ..mem.segment import LinkRequest, SegmentImage
from ..sim.machine import Machine
from ..sim.metrics import MetricsSnapshot

SNAPSHOT_FORMAT = "repro-machine-snapshot"
SNAPSHOT_VERSION = 1

DELTA_FORMAT = "repro-machine-delta"
DELTA_VERSION = 1

#: zlib level used when compression is requested as a plain ``True``;
#: level 1 already removes the bulk of JSON redundancy on
#: checkpoint-sized snapshots at a fraction of level 9's latency
DEFAULT_COMPRESS_LEVEL = 1

#: sparse-memory granularity: chunks with any non-zero word are stored
MEMORY_CHUNK = 256

_SPEC_FIELDS = ("r1", "r2", "r3", "read", "write", "execute", "gate")
_FAULT_FIELDS = (
    "segno", "wordno", "ring", "cur_ring", "detail", "at_segno", "at_wordno",
)


# ---------------------------------------------------------------------------
# small value dumpers/loaders
# ---------------------------------------------------------------------------


def _dump_registers(regs: RegisterFile) -> Dict[str, Any]:
    return {
        "ipr": [regs.ipr.ring, regs.ipr.segno, regs.ipr.wordno],
        "prs": [[pr.segno, pr.wordno, pr.ring] for pr in regs.prs],
        "a": regs.a,
        "q": regs.q,
        "crr": regs.crr,
    }


def _load_registers(data: Dict[str, Any]) -> RegisterFile:
    return RegisterFile(
        ipr=IPR(*data["ipr"]),
        prs=[PointerRegister(*triple) for triple in data["prs"]],
        a=data["a"],
        q=data["q"],
        crr=data["crr"],
    )


def _dump_image(image: SegmentImage) -> Dict[str, Any]:
    return {
        "name": image.name,
        "words": list(image.words),
        "gate_count": image.gate_count,
        "entries": dict(image.entries),
        "links": [
            [link.wordno, link.symbol, link.field, link.ring]
            for link in image.links
        ],
        "source_map": {str(w): line for w, line in image.source_map.items()},
    }


def _load_image(data: Dict[str, Any]) -> SegmentImage:
    return SegmentImage(
        name=data["name"],
        words=list(data["words"]),
        gate_count=data["gate_count"],
        entries=dict(data["entries"]),
        links=[LinkRequest(*quad) for quad in data["links"]],
        source_map={int(w): line for w, line in data["source_map"].items()},
    )


def _dump_placed(placed: PlacedSegment) -> Dict[str, Any]:
    return {
        "addr": placed.addr,
        "bound": placed.bound,
        "paged": placed.paged,
        "allocation": (
            [placed.allocation.addr, placed.allocation.size]
            if placed.allocation is not None
            else None
        ),
        "page_table": (
            {
                "addr": placed.page_table.addr,
                "npages": placed.page_table.npages,
                "frames": list(placed.page_table._frames),
            }
            if placed.page_table is not None
            else None
        ),
    }


def _load_placed(data: Dict[str, Any], image: SegmentImage, memory) -> PlacedSegment:
    page_table = None
    if data["page_table"] is not None:
        pt = data["page_table"]
        page_table = PageTable(memory, pt["addr"], pt["npages"])
        page_table._frames = list(pt["frames"])
    allocation = (
        Allocation(*data["allocation"]) if data["allocation"] is not None else None
    )
    return PlacedSegment(
        image=image,
        addr=data["addr"],
        bound=data["bound"],
        paged=data["paged"],
        allocation=allocation,
        page_table=page_table,
    )


def _dump_fault(fault: Fault) -> Dict[str, Any]:
    out: Dict[str, Any] = {"code": fault.code.name}
    for name in _FAULT_FIELDS:
        out[name] = getattr(fault, name)
    return out


def _load_fault(data: Dict[str, Any]) -> Fault:
    return Fault(
        code=FaultCode[data["code"]],
        **{name: data[name] for name in _FAULT_FIELDS},
    )


# ---------------------------------------------------------------------------
# capture
# ---------------------------------------------------------------------------


def snapshot_machine(
    machine: Machine, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Serialize ``machine`` into a plain JSON-compatible dict.

    ``extra`` is opaque caller bookkeeping stored verbatim (the serve
    workers keep their installed-program and initiation caches there);
    it must itself be JSON-serializable.
    """
    proc = machine.processor
    sup = machine.supervisor
    memory = machine.memory

    chunks: Dict[str, List[int]] = {}
    for start in range(0, memory.size, MEMORY_CHUNK):
        block = memory._words[start : start + MEMORY_CHUNK]
        if any(block):
            chunks[str(start)] = list(block)

    processes: List[Dict[str, Any]] = []
    for process in sup.processes:
        assist = sup._assists[id(process)]
        soft = sup._soft_rings[id(process)]
        occupants = sorted(
            (key[1], owner)
            for key, owner in sup._ring_occupants.items()
            if key[0] == id(process)
        )
        processes.append(
            {
                "user": process.user.name,
                "descriptor": [process.dseg.addr, process.dseg.bound],
                "dbr": [process.dbr.addr, process.dbr.bound, process.dbr.stack],
                "known": [
                    {
                        "name": known.name,
                        "segno": known.segno,
                        "path": known.path,
                        "entries": dict(known.entries),
                        "gate_count": known.gate_count,
                    }
                    for known in process.known.values()
                ],
                "assist": {
                    "gate_segno": assist.gate_segno,
                    "installed": assist._installed,
                    "records": [
                        {
                            "slot": rec.slot,
                            "caller_ring": rec.caller_ring,
                            "callee_ring": rec.callee_ring,
                            "return_segno": rec.return_segno,
                            "return_wordno": rec.return_wordno,
                            "saved_prs": [
                                [pr.segno, pr.wordno, pr.ring]
                                for pr in rec.saved_prs
                            ],
                        }
                        for rec in assist.stack._records
                    ],
                },
                "soft_crossings": soft.crossings_handled,
                "timer_runouts": sup._timer_counts.get(id(process), 0),
                "occupants": [[ring, owner] for ring, owner in occupants],
            }
        )

    attached = None
    if sup.attached_process is not None:
        for index, process in enumerate(sup.processes):
            if process is sup.attached_process:
                attached = index
                break

    pending: List[Dict[str, Any]] = []
    for link in sup.linkage._pending.values():
        pending.append(
            {
                "link_id": link.link_id,
                "self_segno": link.self_segno,
                "snapped": link.snapped,
                "request": [
                    link.request.wordno,
                    link.request.symbol,
                    link.request.field,
                    link.request.ring,
                ],
            }
        )

    return {
        "config": {
            "memory_words": memory.size,
            "hardware_rings": proc.hardware_rings,
            "stack_rule": proc.stack_rule,
            "nrings": proc.nrings,
            "paged": sup.paged,
            "lazy_linking": sup.lazy_linking,
            "sdw_cache_slots": proc.sdw_cache.slots,
            "sdw_cache_enabled": proc.sdw_cache.enabled,
            "fast_path_enabled": proc.access_cache.enabled,
            "block_tier_enabled": proc.block_cache.enabled,
            "jit_tier_enabled": proc.jit_cache.enabled,
            "fast_gate": machine.fast_gate,
            "hardening": proc.hardening.as_dict(),
            "cost": {
                "memory_reference": proc.cost.memory_reference,
                "instruction_base": proc.cost.instruction_base,
                "trap_overhead": proc.cost.trap_overhead,
                "ring_crossing_extra": proc.cost.ring_crossing_extra,
                "auth_mac_cycles": proc.cost.auth_mac_cycles,
            },
        },
        "memory": {
            "chunks": chunks,
            "holes": [[addr, size] for addr, size in memory._holes],
        },
        "processor": {
            "registers": _dump_registers(proc.registers),
            "dbr": [proc.dbr.addr, proc.dbr.bound, proc.dbr.stack],
            "save_stack": [_dump_registers(saved) for saved in proc._save_stack],
            "halted": proc.halted,
            "timer": proc.timer,
            "events": [
                [countdown, code.name, detail]
                for countdown, code, detail in proc._events
            ],
            "attached": attached,
            "sdw_cache": {
                "segnos": list(proc.sdw_cache._entries.keys()),
                "invalidations": proc.sdw_cache.invalidations,
            },
            "cache_invalidations": {
                "ptlb": proc.access_cache.invalidations,
                "icache": proc.inst_cache.invalidations,
            },
            # hardening runtime state: the MAC chain is architectural
            # (a restored machine must verify exactly the frames the
            # snapshotted one pushed) and so are the segno->domain
            # bindings built up at initiation time
            "hardening": {
                "auth_chain": (
                    proc.auth_stack.snapshot()
                    if proc.auth_stack is not None
                    else []
                ),
                "domains": (
                    proc.domains.snapshot()
                    if proc.domains is not None
                    else None
                ),
            },
        },
        "supervisor": {
            "users": [
                [user.name, user.administrator] for user in sup.users
            ],
            "fs": [
                {
                    "path": node.path,
                    "owner": node.owner.name,
                    "acl": [
                        [
                            entry.username,
                            {f: getattr(entry.spec, f) for f in _SPEC_FIELDS},
                        ]
                        for entry in node.acl
                    ],
                    "image": _dump_image(node.image),
                }
                for node in sup.fs._segments.values()
            ],
            "active": [
                {
                    "path": active.path,
                    "segno": active.segno,
                    "links_resolved": active.links_resolved,
                    "placed": _dump_placed(active.placed),
                }
                for active in sup.active.values()
            ],
            "next_segno": sup._next_segno,
            "reserved_segnos": dict(sup._reserved_segnos),
            "console": [[rec.word, rec.ring] for rec in sup.console],
            "console_chars": "".join(sup.console_chars),
            "io_in_flight": [
                [rec.word, rec.ring] for rec in sup._io_in_flight
            ],
            "aborted_faults": [_dump_fault(f) for f in sup.aborted_faults],
            "timer_quantum": sup.timer_quantum,
            "timer_limit": sup.timer_limit,
            "subsystem_rings": list(sup.subsystem_rings),
            "processes": processes,
            "linkage": {
                "next_id": sup.linkage._next_id,
                "snaps": sup.linkage.snaps,
                "pending": pending,
            },
        },
        "counters": MetricsSnapshot.collect(proc).as_dict(),
        "extra": dict(extra) if extra else {},
    }


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------


def restore_machine(
    snap: Dict[str, Any],
    fast_path_enabled: Optional[bool] = None,
    block_tier_enabled: Optional[bool] = None,
    jit_tier_enabled: Optional[bool] = None,
    fast_gate: Optional[bool] = None,
) -> Machine:
    """Rebuild a machine from a snapshot dict.

    ``fast_path_enabled`` / ``block_tier_enabled`` /
    ``jit_tier_enabled`` / ``fast_gate`` override the host-side
    execution tiers of the restored machine — the architectural figures
    are identical for every combination, which the restore-equivalence
    test pins.  Everything else comes from the snapshot.  Snapshots
    written before the trace tier existed default its knobs to off.
    """
    cfg = snap["config"]
    fast = cfg["fast_path_enabled"] if fast_path_enabled is None else fast_path_enabled
    block = cfg["block_tier_enabled"] if block_tier_enabled is None else block_tier_enabled
    if jit_tier_enabled is None:
        # Inherited from the snapshot: clamp to the (possibly
        # overridden) block tier — the trace tier records through
        # superblock dispatch, and the figures are identical anyway.
        jit = cfg.get("jit_tier_enabled", False) and (
            block if block is not None else fast
        )
    else:
        jit = jit_tier_enabled
    gate = cfg.get("fast_gate", False) if fast_gate is None else fast_gate
    # Snapshots written before the hardening extensions existed carry
    # no section: everything defaults to off.
    hardening = HardeningConfig.from_dict(cfg.get("hardening", {}))
    machine = Machine(
        memory_words=cfg["memory_words"],
        hardware_rings=cfg["hardware_rings"],
        stack_rule=cfg["stack_rule"],
        paged=cfg["paged"],
        lazy_linking=cfg["lazy_linking"],
        cost=CostModel(**cfg["cost"]),
        sdw_cache_slots=cfg["sdw_cache_slots"],
        sdw_cache_enabled=cfg["sdw_cache_enabled"],
        fast_path_enabled=fast,
        block_tier_enabled=block,
        jit_tier_enabled=jit,
        fast_gate=gate,
        services=False,
        hardening=hardening,
    )
    proc = machine.processor
    sup = machine.supervisor
    memory = machine.memory
    proc.nrings = cfg["nrings"]

    # -- physical memory (words first: everything else points into it) --
    for start_str, block_words in snap["memory"]["chunks"].items():
        start = int(start_str)
        memory._words[start : start + len(block_words)] = list(block_words)
    memory._holes = [(addr, size) for addr, size in snap["memory"]["holes"]]

    # -- users (Machine.__init__ pre-registered "system"; rebuild all) --
    supd = snap["supervisor"]
    sup.users._users.clear()
    for name, administrator in supd["users"]:
        sup.users.register(name, administrator=administrator)
    machine.system_user = sup.users.lookup("system")

    # -- file system (direct node construction: create() would invent a
    #    default ACL for nodes serialized with an empty one) --
    for noded in supd["fs"]:
        node = SegmentNode(
            path=noded["path"],
            image=_load_image(noded["image"]),
            owner=sup.users.lookup(noded["owner"]),
            acl=[
                AclEntry(username, RingBracketSpec(**spec))
                for username, spec in noded["acl"]
            ],
        )
        sup.fs._segments[tuple(split_path(node.path))] = node

    # -- active segments (image identity: fs node <-> active <-> placed) --
    for actived in supd["active"]:
        image = sup.fs.get(actived["path"]).image
        active = ActiveSegment(
            path=actived["path"],
            segno=actived["segno"],
            placed=_load_placed(actived["placed"], image, memory),
            image=image,
            links_resolved=actived["links_resolved"],
        )
        sup.active[active.path] = active
        sup.active_by_name[image.name] = active
        sup.active_by_segno[active.segno] = active

    sup._next_segno = supd["next_segno"]
    sup._reserved_segnos = dict(supd["reserved_segnos"])
    sup.console = [ConsoleRecord(word, ring) for word, ring in supd["console"]]
    sup.console_chars = list(supd["console_chars"])
    sup._io_in_flight = [
        ConsoleRecord(word, ring) for word, ring in supd["io_in_flight"]
    ]
    sup.aborted_faults = [_load_fault(d) for d in supd["aborted_faults"]]
    sup.timer_quantum = supd["timer_quantum"]
    sup.timer_limit = supd["timer_limit"]
    sup.subsystem_rings = tuple(supd["subsystem_rings"])

    # -- processes (Process.__init__ directly: create() would allocate
    #    fresh descriptor and stack storage the memory image already has) --
    for pd in supd["processes"]:
        process = Process(
            user=sup.users.lookup(pd["user"]),
            memory=memory,
            dseg=DescriptorSegment(memory, *pd["descriptor"]),
            dbr=DBR(*pd["dbr"]),
        )
        for kd in pd["known"]:
            known = KnownSegment(
                name=kd["name"],
                segno=kd["segno"],
                path=kd["path"],
                entries=dict(kd["entries"]),
                gate_count=kd["gate_count"],
            )
            process.known[known.name] = known
            process.by_segno[known.segno] = known
        sup.processes.append(process)
        ad = pd["assist"]
        assist = UpwardCallAssist(process, gate_segno=ad["gate_segno"])
        assist._installed = ad["installed"]
        assist.stack._records = [
            ReturnGateRecord(
                slot=rec["slot"],
                caller_ring=rec["caller_ring"],
                callee_ring=rec["callee_ring"],
                return_segno=rec["return_segno"],
                return_wordno=rec["return_wordno"],
                saved_prs=[
                    PointerRegister(*triple) for triple in rec["saved_prs"]
                ],
            )
            for rec in ad["records"]
        ]
        sup._assists[id(process)] = assist
        soft = SoftwareRingAssist(process)
        soft.crossings_handled = pd["soft_crossings"]
        sup._soft_rings[id(process)] = soft
        if pd["timer_runouts"]:
            sup._timer_counts[id(process)] = pd["timer_runouts"]
        for ring, owner in pd["occupants"]:
            sup._ring_occupants[(id(process), ring)] = owner

    # -- linkage (pending links reconnect to the active placements) --
    linkaged = supd["linkage"]
    sup.linkage._next_id = linkaged["next_id"]
    sup.linkage.snaps = linkaged["snaps"]
    for linkd in linkaged["pending"]:
        active = sup.active_by_segno.get(linkd["self_segno"])
        if active is not None:
            placed = active.placed
        else:
            # a snapped link whose holder was since deactivated: keep the
            # registry entry (ids stay unique) on a detached stand-in
            placed = PlacedSegment(
                image=SegmentImage(name="<detached>"), addr=0, bound=0
            )
        sup.linkage._pending[linkd["link_id"]] = PendingLink(
            link_id=linkd["link_id"],
            placed=placed,
            self_segno=linkd["self_segno"],
            request=LinkRequest(*linkd["request"]),
            snapped=linkd["snapped"],
        )

    # -- processor: attach first (installs fault/io handlers, loads the
    #    DBR, arms the timer), then overwrite the state attach touched --
    procd = snap["processor"]
    if procd["attached"] is not None:
        sup.attach(proc, sup.processes[procd["attached"]])
    else:
        proc.dbr = DBR(*procd["dbr"])
    proc.registers = _load_registers(procd["registers"])
    proc._save_stack = [
        _load_registers(saved) for saved in procd["save_stack"]
    ]
    proc.halted = procd["halted"]
    proc.timer = procd["timer"]
    proc._events = [
        [countdown, FaultCode[code], detail]
        for countdown, code, detail in procd["events"]
    ]
    hardd = procd.get("hardening", {})
    if proc.auth_stack is not None:
        proc.auth_stack.restore(hardd.get("auth_chain", []))
    if proc.domains is not None and hardd.get("domains") is not None:
        proc.domains.restore(hardd["domains"])

    # -- counters, then cache state (attach invalidated the caches and
    #    bumped their counters; the snapshot's figures win) --
    counters = MetricsSnapshot.from_dict(snap["counters"])
    proc.cycles = counters.cycles
    proc.stats = ProcessorStats(
        instructions=counters.instructions,
        faults=counters.faults,
        traps_delivered=counters.traps_delivered,
        calls=counters.calls,
        returns=counters.returns,
        ring_crossings=counters.ring_crossings,
    )
    memory.reads = counters.memory_reads
    memory.writes = counters.memory_writes
    proc.warm_sdw_cache(procd["sdw_cache"]["segnos"])
    proc.sdw_cache.hits = counters.sdw_hits
    proc.sdw_cache.misses = counters.sdw_misses
    proc.sdw_cache.invalidations = procd["sdw_cache"]["invalidations"]
    proc.access_cache.hits = counters.ptlb_hits
    proc.access_cache.misses = counters.ptlb_misses
    proc.access_cache.invalidations = procd["cache_invalidations"]["ptlb"]
    proc.inst_cache.hits = counters.icache_hits
    proc.inst_cache.misses = counters.icache_misses
    proc.inst_cache.invalidations = procd["cache_invalidations"]["icache"]
    proc.block_cache.hits = counters.block_hits
    proc.block_cache.misses = counters.block_misses
    proc.block_cache.invalidations = counters.block_invalidations
    proc.block_cache.block_instructions = counters.block_instructions
    proc.jit_cache.hits = counters.jit_hits
    proc.jit_cache.misses = counters.jit_misses
    proc.jit_cache.invalidations = counters.jit_invalidations
    proc.jit_cache.instructions = counters.jit_instructions
    return machine


# ---------------------------------------------------------------------------
# files
# ---------------------------------------------------------------------------


def _canonical(snap: Dict[str, Any]) -> bytes:
    return json.dumps(
        snap, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def snapshot_digest(snap: Dict[str, Any]) -> str:
    """sha256 of the canonical JSON encoding of a snapshot dict."""
    return hashlib.sha256(_canonical(snap)).hexdigest()


def canonical_bytes(snap: Dict[str, Any]) -> bytes:
    """The canonical JSON encoding a snapshot's digest is taken over."""
    return _canonical(snap)


# ---------------------------------------------------------------------------
# delta snapshots (park/hydrate paging)
# ---------------------------------------------------------------------------
#
# A delta records a snapshot as edits against a *base* snapshot of the
# same shape (same programs installed, same construction knobs — tenant
# machines built through the same code path place every segment at the
# same addresses).  Dicts are diffed key by key recursively, so the
# sparse memory chunks — a dict keyed by chunk start — drop out
# wherever a tenant's memory matches the base image: those chunks are
# stored *by reference* (their absence from the delta), which is what
# makes a parked call_loop tenant a few KB instead of a full machine.
#
# Delta nodes use a two-token vocabulary that cannot collide with
# snapshot data (data values are always wrapped):
#
#   {"v": value}                 replace this position with ``value``
#   {"k": {...}, "x": [...]}     recurse: per-key child nodes, plus the
#                                keys deleted relative to the base
#
# Integrity is end-to-end: the delta envelope records the sha256 of the
# *reconstructed* snapshot, and :func:`apply_delta` refuses a result
# that does not hash back to it — a wrong or stale base image can never
# hydrate silently.


def _diff_node(base: Any, new: Any) -> Optional[Dict[str, Any]]:
    if base == new:
        return None
    if isinstance(base, dict) and isinstance(new, dict):
        changed: Dict[str, Any] = {}
        for key, value in new.items():
            if key in base:
                child = _diff_node(base[key], value)
                if child is not None:
                    changed[key] = child
            else:
                changed[key] = {"v": value}
        removed = sorted(key for key in base if key not in new)
        return {"k": changed, "x": removed}
    if isinstance(base, list) and isinstance(new, list):
        # Lists recurse element-wise over the common prefix: the
        # supervisor's user, process, and file-system tables are lists
        # that differ between same-shape tenants only in a name here
        # and a counter there — replacing them wholesale would dominate
        # the parked delta.  A length change records the new length
        # plus any appended tail.  JSON object keys are strings, so
        # indices are encoded as such.
        elements = {}
        for index in range(min(len(base), len(new))):
            child = _diff_node(base[index], new[index])
            if child is not None:
                elements[str(index)] = child
        node: Dict[str, Any] = {"l": elements}
        if len(new) != len(base):
            node["n"] = len(new)
            if len(new) > len(base):
                node["t"] = new[len(base):]
        return node
    return {"v": new}


def _apply_node(base: Any, node: Optional[Dict[str, Any]]) -> Any:
    if node is None:
        return base
    if "v" in node:
        return node["v"]
    if "l" in node:
        if not isinstance(base, list):
            raise SnapshotError(
                "delta recurses into a position the base does not hold "
                "a list at — wrong base image"
            )
        length = node.get("n", len(base))
        out_list = list(base[:length])
        for index, child in node["l"].items():
            out_list[int(index)] = _apply_node(base[int(index)], child)
        out_list.extend(node.get("t", ()))
        return out_list
    if not isinstance(base, dict):
        raise SnapshotError(
            "delta recurses into a position the base does not hold a "
            "dict at — wrong base image"
        )
    removed = set(node.get("x", ()))
    changed = node.get("k", {})
    out = {
        key: value for key, value in base.items()
        if key not in removed and key not in changed
    }
    for key, child in changed.items():
        out[key] = _apply_node(base.get(key), child)
    return out


def delta_snapshot(
    snap: Dict[str, Any], base: Dict[str, Any]
) -> Dict[str, Any]:
    """Encode ``snap`` as a delta against ``base``.

    Returns a JSON-serializable envelope carrying the base's digest
    (so hydration can pick the right base image), the reconstructed
    snapshot's digest, and the edit tree.
    """
    return {
        "format": DELTA_FORMAT,
        "version": DELTA_VERSION,
        "base_sha256": snapshot_digest(base),
        "sha256": snapshot_digest(snap),
        "delta": _diff_node(base, snap),
    }


def apply_delta(
    base: Dict[str, Any], delta: Dict[str, Any]
) -> Dict[str, Any]:
    """Reconstruct the full snapshot ``delta`` encodes against ``base``.

    The result shares unchanged subtrees with ``base`` — treat both as
    read-only (restore never mutates a snapshot dict).  Raises
    :class:`~repro.errors.SnapshotError` on a format mismatch, a wrong
    base image, or a reconstruction that fails its integrity hash.
    """
    if (
        not isinstance(delta, dict)
        or delta.get("format") != DELTA_FORMAT
    ):
        raise SnapshotError("not a machine snapshot delta")
    if delta.get("version") != DELTA_VERSION:
        raise SnapshotError(
            f"snapshot delta has version {delta.get('version')!r}; "
            f"this build reads version {DELTA_VERSION}"
        )
    base_digest = snapshot_digest(base)
    if base_digest != delta.get("base_sha256"):
        raise SnapshotError(
            f"delta was taken against base {delta.get('base_sha256')!r}, "
            f"got base {base_digest!r}"
        )
    snap = _apply_node(base, delta.get("delta"))
    digest = snapshot_digest(snap)
    if digest != delta.get("sha256"):
        raise SnapshotError(
            f"delta reconstruction failed its integrity check: "
            f"recorded sha256 {delta.get('sha256')!r}, computed {digest!r}"
        )
    return snap


def encode_delta(
    delta: Dict[str, Any], compress: Any = False
) -> bytes:
    """Canonical bytes of a delta envelope, optionally zlib-compressed.

    The compressed form is self-describing (zlib's two-byte header
    never starts a JSON document), so :func:`decode_delta` needs no
    side channel.
    """
    body = _canonical(delta)
    if compress:
        level = (
            DEFAULT_COMPRESS_LEVEL if compress is True else int(compress)
        )
        return zlib.compress(body, level)
    return body


def decode_delta(data: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_delta`."""
    if data[:1] != b"{":
        try:
            data = zlib.decompress(data)
        except zlib.error as exc:
            raise SnapshotError(
                f"undecodable snapshot delta: {exc}"
            ) from None
    try:
        return json.loads(data.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotError(f"undecodable snapshot delta: {exc}") from None


def write_snapshot_file(
    snap: Dict[str, Any], path: str, compress: Any = False
) -> str:
    """Write ``snap`` to ``path`` atomically (tmp + fsync + rename).

    ``compress`` (flag or zlib level) stores the snapshot body
    zlib-compressed inside the envelope; the recorded sha256 is always
    taken over the *uncompressed* canonical bytes, so integrity
    semantics — and the digest a given machine state produces — are
    identical in both encodings.  Returns that digest.
    """
    # encode the snapshot exactly once: the digest is taken over the
    # same bytes that are spliced into the envelope (streaming
    # json.dump would re-serialize the whole dict a second time, and
    # measurably slower than dumps-then-write on checkpoint-sized
    # snapshots)
    body = _canonical(snap)
    digest = hashlib.sha256(body).hexdigest()
    head = json.dumps(
        {"format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION, "sha256": digest}
    ).encode("utf-8")
    if compress:
        level = (
            DEFAULT_COMPRESS_LEVEL if compress is True else int(compress)
        )
        packed = json.dumps(
            base64.b64encode(zlib.compress(body, level)).decode("ascii")
        ).encode("ascii")
        envelope = head[:-1] + b', "snapshot_zlib": ' + packed + b"}"
    else:
        envelope = head[:-1] + b', "snapshot": ' + body + b"}"
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(envelope)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return digest


def read_snapshot_file(path: str) -> Dict[str, Any]:
    """Read and verify a snapshot file; returns the snapshot dict.

    Raises :class:`repro.errors.SnapshotError` on unreadable JSON, a
    wrong format tag, an unsupported version, or a digest mismatch.
    """
    try:
        with open(path, "r") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from None
    if not isinstance(envelope, dict) or envelope.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path!r} is not a machine snapshot")
    if envelope.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has version {envelope.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )
    if "snapshot_zlib" in envelope:
        try:
            body = zlib.decompress(
                base64.b64decode(envelope["snapshot_zlib"])
            )
        except (ValueError, zlib.error) as exc:
            raise SnapshotError(
                f"snapshot {path!r} has an undecodable compressed body: "
                f"{exc}"
            ) from None
        # the digest covers the uncompressed canonical bytes — exactly
        # the bytes just recovered, so verify them directly
        digest = hashlib.sha256(body).hexdigest()
        if digest != envelope.get("sha256"):
            raise SnapshotError(
                f"snapshot {path!r} failed its integrity check: "
                f"recorded sha256 {envelope.get('sha256')!r}, "
                f"computed {digest!r}"
            )
        return json.loads(body.decode("utf-8"))
    snap = envelope.get("snapshot")
    digest = snapshot_digest(snap)
    if digest != envelope.get("sha256"):
        raise SnapshotError(
            f"snapshot {path!r} failed its integrity check: "
            f"recorded sha256 {envelope.get('sha256')!r}, computed {digest!r}"
        )
    return snap
