"""Recovery: rebuild a worker machine from snapshot + journal replay.

The simulated machine is deterministic, so a slot's state is fully
determined by the sequence of gate calls it executed — which is exactly
what the journal records.  Recovery therefore has two modes:

* **resume** (:func:`recover_slot`): restore the newest intact snapshot
  and replay only the journal records past it — what a replacement
  worker does when it claims a crashed worker's slot;
* **verify** (:func:`replay_journal` with ``verify=True``): replay from
  a fresh machine through the *entire* journal, checking every replayed
  result against the journaled one record by record.  Because the
  structural checks (snapshot sha256, journal CRCs, sequence numbers)
  can be forged together, the replay cross-check is the last line of
  defence: any divergence raises
  :class:`~repro.errors.ReplayDivergenceError`.

The replayer drives :class:`~repro.serve.workers.GateCallEngine` — the
same code path the serving workers use — imported lazily to keep
:mod:`repro.state` importable without the serving stack.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReplayDivergenceError, SnapshotError
from .journal import read_journal
from .snapshot import read_snapshot_file

#: file names inside a worker slot directory
SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.bin"

#: result fields the verifier compares, in reporting order
_RESULT_FIELDS = ("error", "detail", "payload", "metrics")


def _check_result(seq: int, expected: Dict[str, Any], actual: Dict[str, Any]):
    for name in _RESULT_FIELDS:
        if expected.get(name) != actual.get(name):
            raise ReplayDivergenceError(
                seq, name, expected.get(name), actual.get(name)
            )


@dataclass
class ReplayReport:
    """What :func:`replay_journal` did."""

    engine: Any  # GateCallEngine
    replayed: int = 0
    verified: int = 0
    skipped: int = 0  # records at or below start_seq
    last_seq: int = 0


@dataclass
class RecoveryResult:
    """What :func:`recover_slot` rebuilt."""

    engine: Any  # GateCallEngine
    snapshot_source: str = "none"  # "current" | "prev" | "none"
    snapshot_seq: int = 0
    replayed: int = 0
    last_seq: int = 0
    recent: "OrderedDict[str, Dict[str, Any]]" = field(
        default_factory=OrderedDict
    )


def replay_journal(
    journal_path: str,
    engine: Any = None,
    start_seq: int = 0,
    verify: bool = False,
    strict: bool = False,
    recent: Optional["OrderedDict[str, Dict[str, Any]]"] = None,
) -> ReplayReport:
    """Replay journal records with ``seq > start_seq`` through ``engine``.

    Without ``engine`` a fresh :class:`GateCallEngine` is built, which
    with ``start_seq=0`` replays the slot's entire history.  ``strict``
    refuses a torn journal tail instead of dropping it.  ``recent``, if
    given, collects each record's ``call_id`` → journaled result (the
    duplicate-suppression cache a resuming worker needs).
    """
    from ..serve.workers import GateCallEngine

    if engine is None:
        engine = GateCallEngine()
    report = ReplayReport(engine=engine, last_seq=start_seq)
    for record in read_journal(journal_path, strict=strict):
        seq = record["seq"]
        if seq <= start_seq:
            report.skipped += 1
            continue
        result = engine.run_job(record["job"])
        if verify:
            _check_result(seq, record["result"], result)
            report.verified += 1
        if recent is not None and record.get("call_id") is not None:
            # the journaled result is authoritative: it is what the
            # caller was (or would have been) told
            recent[record["call_id"]] = record["result"]
        report.replayed += 1
        report.last_seq = seq
    return report


def recover_slot(slot_dir: str, verify: bool = False) -> RecoveryResult:
    """Rebuild a worker slot's engine: newest intact snapshot + replay.

    Tries ``snapshot.json`` then ``snapshot.json.prev`` (the previous
    checkpoint survives until the next one replaces it, so a crash
    mid-checkpoint at worst lengthens the replay); with neither intact,
    replays the whole journal from a fresh machine.  A missing journal
    is an empty one — a brand-new slot recovers to a fresh engine.
    """
    from ..serve.workers import GateCallEngine

    engine = None
    source = "none"
    extra: Dict[str, Any] = {}
    snapshot_path = os.path.join(slot_dir, SNAPSHOT_NAME)
    for path, label in (
        (snapshot_path, "current"),
        (snapshot_path + ".prev", "prev"),
    ):
        try:
            snap = read_snapshot_file(path)
            engine = GateCallEngine.from_snapshot(snap)
        except SnapshotError:
            continue
        source = label
        extra = snap.get("extra", {})
        break
    if engine is None:
        engine = GateCallEngine()
    snapshot_seq = int(extra.get("last_seq", 0))
    recent: "OrderedDict[str, Dict[str, Any]]" = OrderedDict(
        (call_id, result)
        for call_id, result in extra.get("recent_calls", [])
    )
    report = replay_journal(
        os.path.join(slot_dir, JOURNAL_NAME),
        engine=engine,
        start_seq=snapshot_seq,
        verify=verify,
        recent=recent,
    )
    return RecoveryResult(
        engine=engine,
        snapshot_source=source,
        snapshot_seq=snapshot_seq,
        replayed=report.replayed,
        last_seq=report.last_seq,
        recent=recent,
    )
