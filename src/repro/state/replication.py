"""WAL shipping and warm replicas: the journal as a replication log.

The gate-call journal (:mod:`repro.state.journal`) is a totally
ordered, CRC-framed, deterministic record of every state transition a
worker machine executes, and verified replay
(:mod:`repro.state.recover`) guarantees any machine applying it lands
bit-for-bit on the primary's architectural figures.  That *is* a
state-machine-replication log — this module adds the three mechanisms
that turn it into one:

* :class:`JournalTailer` — incremental live tailing of a journal that
  is still being appended to.  Unlike :func:`~repro.state.journal.read_journal`,
  which classifies a torn tail once and drops it, the tailer must
  distinguish "torn" from "still being written": an incomplete or
  CRC-failing *final* frame is simply not shipped yet (the writer will
  either finish it or truncate it on restart), while damage with
  committed bytes after it is fatal exactly as in recovery.
* wire frames (:func:`encode_frame` / :func:`decode_frame`) — each
  shipped record carries the CRC taken from the journal file itself,
  re-verified against the canonical re-encoding on arrival, so
  integrity holds end to end: disk frame -> wire -> replica.
* :class:`ReplicaApplier` — a warm replica: a
  :class:`~repro.serve.workers.GateCallEngine` that applies shipped
  records through the same ``run_job`` path the serving workers and
  the recovery replayer use, verifying every applied result against
  the journaled one.  Verification covers ``error``/``detail``/
  ``payload`` and the **architectural** counters: host-tier
  diagnostics (PTLB, icache, block, trace hits) legitimately differ
  between primary and replica because the primary drops its host
  caches at checkpoint boundaries the replica cannot observe — the
  exactness contract is about the simulated machine, and that is what
  is pinned, record by record.

Promotion (:meth:`ReplicaApplier.promote`) is what failover buys: the
replica replays only the journal tail past its applied position —
bounded by shipping lag, not by the primary's checkpoint interval —
then folds itself into a fresh promotion snapshot inside the slot
directory.  The next worker to claim the slot recovers from that
snapshot with an empty tail, and the generation bump on its claim
fences the dead incarnation.  The replica's duplicate-suppression
cache (``call_id`` -> journaled result) rides along, so calls that
were in flight at the crash dedup instead of double-executing.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional
from zlib import crc32

from ..errors import JournalError, ReplayDivergenceError
from ..sim.metrics import MetricsSnapshot
from .journal import MAGIC, _FRAME, read_journal
from .recover import JOURNAL_NAME, SNAPSHOT_NAME
from .snapshot import snapshot_machine, write_snapshot_file

#: bound on a replica's duplicate-suppression cache — mirrors the
#: serving workers' RECENT_CALLS so a promoted replica dedups at least
#: as much history as the worker it replaces would have
REPLICA_RECENT_CALLS = 512

#: result fields a replica compares verbatim on every applied record
_VERBATIM_FIELDS = ("error", "detail", "payload")


@dataclass(frozen=True)
class Frame:
    """One journal record plus the CRC it carried on disk."""

    seq: int
    crc: int
    record: Dict[str, Any]


def canonical_record_bytes(record: Dict[str, Any]) -> bytes:
    """The canonical JSON encoding — the exact bytes the journal wrote.

    :class:`~repro.state.journal.JournalWriter` frames
    ``json.dumps(record, sort_keys=True, separators=(",", ":"))``, so
    re-encoding a decoded record reproduces the on-disk payload byte
    for byte; that is what lets a shipped record's file CRC be
    re-checked after a trip through the wire's own JSON layer.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def encode_frame(frame: Frame) -> Dict[str, Any]:
    """A frame as a wire entry inside a JSON-lines ``ship`` message."""
    return {"seq": frame.seq, "crc": frame.crc, "record": frame.record}


def decode_frame(entry: Dict[str, Any]) -> Frame:
    """Parse and integrity-check one wire entry back into a frame.

    Raises :class:`repro.errors.JournalError` when the re-canonicalized
    record does not reproduce the shipped CRC (bit rot or tampering in
    transit) or the envelope seq disagrees with the record's own.
    """
    record = entry.get("record")
    if not isinstance(record, dict):
        raise JournalError("shipped frame has no record object")
    crc = entry.get("crc")
    if crc32(canonical_record_bytes(record)) != crc:
        raise JournalError(
            f"shipped record seq {entry.get('seq')!r} failed its CRC"
        )
    seq = record.get("seq")
    if seq != entry.get("seq"):
        raise JournalError(
            f"shipped frame seq {entry.get('seq')!r} disagrees with its "
            f"record's seq {seq!r}"
        )
    return Frame(seq=seq, crc=crc, record=record)


class JournalTailer:
    """Incrementally read intact records from a live, growing journal.

    The tailer remembers the byte offset one past the last intact
    record it consumed and re-reads only from there, so polling a large
    journal is O(new bytes).  Framing rules differ from recovery-mode
    reads in exactly one way: an incomplete or CRC-failing **final**
    frame is *waited out*, not dropped — a concurrent appender may
    still be writing it, and if it was a genuine torn tail the
    restarting writer truncates it in place, after which the next poll
    re-reads the same offset and finds the replacement bytes.  Interior
    damage (bad CRC with committed bytes after it, a sequence gap, bad
    magic) is always fatal, as everywhere else.

    ``since_seq`` parses but does not emit records at or below it — how
    a shipper resumes against a follower that already applied a prefix.
    """

    def __init__(self, path: str, since_seq: int = 0):
        self.path = path
        self.since_seq = since_seq
        #: byte offset one past the last consumed record (0: header
        #: not yet consumed)
        self.offset = 0
        #: seq of the last record parsed (consumed), emitted or not
        self.last_seq = 0

    def poll(self, max_records: Optional[int] = None) -> List[Frame]:
        """New intact frames appended since the last poll.

        Returns an empty list when nothing new (or only an incomplete
        tail) is available; a missing file is an empty journal that may
        yet be created.
        """
        try:
            with open(self.path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < self.offset:
                    raise JournalError(
                        f"{self.path!r}: journal shrank below the tailed "
                        f"offset ({size} < {self.offset}) — the committed "
                        "prefix was rewritten"
                    )
                handle.seek(self.offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        base = self.offset
        pos = 0
        if base == 0:
            if len(data) < len(MAGIC):
                return []  # header still being written
            if data[: len(MAGIC)] != MAGIC:
                raise JournalError(
                    f"{self.path!r} has no journal magic header"
                )
            pos = len(MAGIC)
        frames: List[Frame] = []
        while True:
            if max_records is not None and len(frames) >= max_records:
                break
            if pos + _FRAME.size > len(data):
                break  # incomplete header: wait
            length, crc = _FRAME.unpack_from(data, pos)
            start = pos + _FRAME.size
            end = start + length
            if end > len(data):
                break  # incomplete payload: wait
            payload = data[start:end]
            if crc32(payload) != crc:
                if end < len(data):
                    raise JournalError(
                        f"{self.path!r}: CRC mismatch in committed record "
                        f"at byte {base + pos}"
                    )
                break  # bad final record: torn or mid-write, wait
            try:
                record = json.loads(payload.decode("utf-8"))
            except ValueError:
                raise JournalError(
                    f"{self.path!r}: record at byte {base + pos} passed "
                    "its CRC but is not valid JSON"
                ) from None
            seq = record.get("seq")
            if seq != self.last_seq + 1:
                raise JournalError(
                    f"{self.path!r}: sequence gap — record at byte "
                    f"{base + pos} has seq {seq!r}, expected "
                    f"{self.last_seq + 1}"
                )
            self.last_seq = seq
            pos = end
            self.offset = base + pos
            if seq > self.since_seq:
                frames.append(Frame(seq=seq, crc=crc, record=record))
        return frames


def read_frames(
    path: str, limit: Optional[int] = None
) -> List[Frame]:
    """Every intact frame of a journal, with its on-disk CRC.

    One-shot convenience over :class:`JournalTailer` for inspection
    (``repro journal dump``); a torn tail is silently ignored exactly
    as in recovery-mode reads.
    """
    return JournalTailer(path).poll(max_records=limit)


def check_replica_result(
    seq: int, expected: Dict[str, Any], actual: Dict[str, Any]
) -> None:
    """Raise :class:`ReplayDivergenceError` unless ``actual`` matches.

    Compares ``error``/``detail``/``payload`` verbatim and the metrics
    on the **architectural** counters only — the host-tier diagnostics
    depend on checkpoint-boundary cache drops the replica cannot
    observe, and the exactness contract they back is checked elsewhere
    (the parity backstop, the restore-equivalence matrix).
    """
    for name in _VERBATIM_FIELDS:
        if expected.get(name) != actual.get(name):
            raise ReplayDivergenceError(
                seq, name, expected.get(name), actual.get(name)
            )
    expected_metrics = expected.get("metrics")
    actual_metrics = actual.get("metrics")
    if (expected_metrics is None) != (actual_metrics is None):
        raise ReplayDivergenceError(
            seq, "metrics", expected_metrics, actual_metrics
        )
    if expected_metrics is None:
        return
    for name in MetricsSnapshot.ARCHITECTURAL:
        if expected_metrics.get(name) != actual_metrics.get(name):
            raise ReplayDivergenceError(
                seq,
                f"metrics.{name}",
                expected_metrics.get(name),
                actual_metrics.get(name),
            )


class ReplicaApplier:
    """A warm replica machine built by applying shipped journal records.

    Applying is replaying: every record's job runs through the same
    :class:`~repro.serve.workers.GateCallEngine` code path the serving
    workers use, and the result is verified against the journaled one
    before the record counts as applied.  Records at or below
    ``applied_seq`` are skipped idempotently (re-shipped batches after
    a reconnect or a promotion are harmless); a gap above it is fatal.
    """

    def __init__(self, engine: Any = None):
        from ..serve.workers import GateCallEngine

        self.engine = engine if engine is not None else GateCallEngine()
        self.applied_seq = 0
        self.applied = 0
        self.skipped = 0
        self.promotions = 0
        self.last_applied_at: Optional[float] = None
        #: call_id -> journaled result (duplicate suppression on promote)
        self.recent: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def apply(self, frame: Frame) -> bool:
        """Apply one shipped frame; returns whether it advanced state."""
        return self.apply_record(frame.record)

    def apply_record(self, record: Dict[str, Any]) -> bool:
        """Apply one journal record (already integrity-checked)."""
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise JournalError(f"shipped record has no seq: {record!r}")
        if seq <= self.applied_seq:
            self.skipped += 1
            return False
        if seq != self.applied_seq + 1:
            raise JournalError(
                f"replication gap: got seq {seq}, expected "
                f"{self.applied_seq + 1}"
            )
        result = self.engine.run_job(record["job"])
        check_replica_result(seq, record["result"], result)
        call_id = record.get("call_id")
        if call_id is not None:
            # the journaled result is authoritative: it is what the
            # caller was (or would have been) told
            self.recent[call_id] = record["result"]
            while len(self.recent) > REPLICA_RECENT_CALLS:
                self.recent.popitem(last=False)
        self.applied_seq = seq
        self.applied += 1
        self.last_applied_at = time.monotonic()
        return True

    def catch_up(self, journal_path: str) -> int:
        """Apply every journal record past ``applied_seq`` from disk.

        The promotion tail replay: what was journaled but not yet
        shipped when the primary died.  A missing journal is an empty
        tail.  Returns how many records were applied.
        """
        applied = 0
        for record in read_journal(journal_path):
            if record["seq"] <= self.applied_seq:
                continue
            self.apply_record(record)
            applied += 1
        return applied

    def lookup(self, call_id: str) -> Optional[Dict[str, Any]]:
        """The journaled result of ``call_id`` if this replica saw it."""
        return self.recent.get(call_id)

    def promote(self, slot_dir: str) -> Dict[str, Any]:
        """Fail over onto this replica: tail replay + promotion snapshot.

        Replays the unacked journal tail (everything journaled past
        ``applied_seq`` — bounded by shipping lag, not the primary's
        checkpoint interval), then writes a fresh snapshot into the
        slot directory with the replica's bookkeeping, journal
        position, and duplicate-suppression cache.  The next worker to
        claim the slot recovers from it with an empty tail; its
        generation bump fences the dead incarnation.  An empty tail —
        the replica was fully caught up, or the slot never executed a
        call — still writes the snapshot, so promotion is uniform.
        """
        journal_path = os.path.join(slot_dir, JOURNAL_NAME)
        replayed = self.catch_up(journal_path)
        # Checkpoint discipline: the successor restores with cold host
        # tiers, so the replica goes cold at the same point — keeps any
        # later live-vs-replay comparison of host diagnostics exact.
        self.engine.machine.processor.drop_host_caches()
        extra = {
            "engine": self.engine.bookkeeping(),
            "last_seq": self.applied_seq,
            "promoted": True,
            "recent_calls": [
                [call_id, result] for call_id, result in self.recent.items()
            ],
        }
        snap = snapshot_machine(self.engine.machine, extra=extra)
        current = os.path.join(slot_dir, SNAPSHOT_NAME)
        if os.path.exists(current):
            os.replace(current, current + ".prev")
        digest = write_snapshot_file(snap, current)
        self.promotions += 1
        return {
            "slot_dir": slot_dir,
            "applied_seq": self.applied_seq,
            "replayed_tail": replayed,
            "snapshot_sha256": digest,
        }

    def stats(self) -> Dict[str, Any]:
        """Read-only health figures, answerable locally by a standby."""
        total = self.engine.total
        return {
            "applied_seq": self.applied_seq,
            "applied": self.applied,
            "skipped": self.skipped,
            "promotions": self.promotions,
            "calls": self.engine.calls,
            "architectural": total.architectural(),
            "rates": total.rates(),
        }
