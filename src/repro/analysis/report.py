"""Experiment harness behind EXPERIMENTS.md.

The paper publishes no measurements; its quantitative claim is
architectural: with hardware rings, "downward calls and upward returns
[are] no more complex than calls and returns in the same ring" (p. 40),
whereas the 645's software rings trap to the supervisor on every
crossing.  :func:`crossing_cost_experiment` measures exactly that on
both simulated machines, in simulated cycles per call-return pair,
using two run lengths so constant setup cost (demand initiation and the
like) cancels out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.acl import AclEntry, RingBracketSpec
from ..sim.machine import Machine

#: Caller template: performs A := N, then N call/return pairs.
CALLER_SOURCE = """
        .seg    caller
main::  lda     =COUNT
loop:   eap4    back
        call    l_target,*
back:   sba     =1
        tnz     loop
        halt
l_target: .its  TARGET$entry
"""

#: Callee: one gate, returns immediately, preserves A.
TARGET_SOURCE = """
        .seg    NAME
        .gates  1
entry:: return  pr4|0
"""


def _build_machine(
    hardware_rings: bool,
    target_name: str,
    target_spec: RingBracketSpec,
    count: int,
) -> Machine:
    machine = Machine(hardware_rings=hardware_rings, services=False)
    user = machine.add_user("bench")
    machine.store_program(
        f">bench>{target_name}",
        TARGET_SOURCE.replace("NAME", target_name),
        acl=[AclEntry("*", target_spec)],
    )
    machine.store_program(
        ">bench>caller",
        CALLER_SOURCE.replace("COUNT", str(count)).replace("TARGET", target_name),
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    process = machine.login(user)
    machine.initiate(process, ">bench>caller")
    machine._bench_process = process  # type: ignore[attr-defined]
    return machine


def _cycles_for(machine: Machine, count_hint: int) -> int:
    process = machine._bench_process  # type: ignore[attr-defined]
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted and result.a == 0
    return result.cycles


def measure_cycles_per_call(
    hardware_rings: bool,
    target_spec: RingBracketSpec,
    target_name: str,
    n_small: int = 8,
    n_large: int = 40,
) -> float:
    """Marginal cycles per call/return pair for one scenario.

    Two runs of different lengths; the difference divided by the extra
    iterations removes every constant cost.
    """
    small = _cycles_for(
        _build_machine(hardware_rings, target_name, target_spec, n_small), n_small
    )
    large = _cycles_for(
        _build_machine(hardware_rings, target_name, target_spec, n_large), n_large
    )
    return (large - small) / (n_large - n_small)


@dataclass
class CrossingCostRow:
    """One row of the C1 experiment table."""

    scenario: str
    hardware_cycles: float
    software_cycles: float

    @property
    def ratio(self) -> float:
        """Software-ring cost relative to hardware-ring cost."""
        return self.software_cycles / self.hardware_cycles


def crossing_cost_experiment() -> List[CrossingCostRow]:
    """Experiment C1: call/return cost by crossing kind and machine.

    Scenarios:

    * same-ring — ring-4 caller, ring-4 gated callee (no crossing);
    * downward — ring-4 caller, ring-0 callee with gate extension to 5
      (crossing down on call, up on return).

    Expected shape (the paper's claim): the two machines agree on
    same-ring cost; the hardware machine's downward cost is within a few
    cycles of its same-ring cost; the software machine pays two traps
    plus handler work per downward pair.
    """
    same_spec = RingBracketSpec.procedure(4)
    down_spec = RingBracketSpec.procedure(0, callable_from=5)
    rows = []
    for scenario, spec, name in (
        ("same-ring call+return", same_spec, "tsame"),
        ("downward call+upward return", down_spec, "tzero"),
    ):
        hardware = measure_cycles_per_call(True, spec, name)
        software = measure_cycles_per_call(False, spec, name)
        rows.append(
            CrossingCostRow(
                scenario=scenario,
                hardware_cycles=hardware,
                software_cycles=software,
            )
        )
    return rows


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table (benchmarks print these)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def crossing_cost_table() -> str:
    """The C1 table, formatted."""
    rows = crossing_cost_experiment()
    return format_table(
        ["scenario", "hardware rings (cycles)", "software rings (cycles)", "ratio"],
        [
            [
                row.scenario,
                f"{row.hardware_cycles:.1f}",
                f"{row.software_cycles:.1f}",
                f"{row.ratio:.2f}x",
            ]
            for row in rows
        ],
        title="Experiment C1 — cost of one call/return pair (simulated cycles)",
    )
