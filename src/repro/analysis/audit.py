"""Static ring-security audit of a configured system.

The paper argues that ring brackets make protection *reviewable*: "the
best way to achieve confidence is to keep the mechanisms so simple that
they may be completely understood" (p. 5).  This module takes that
seriously — given a file system full of ACLs, it computes, statically:

* the **capability matrix** — for every user, segment, and ring, the
  read/write/execute/call-gate capabilities the ACLs grant;
* each user's **gate surface** — the gates through which their outer-ring
  code can enter lower rings, with the entry ring of each;
* **audit findings** — configurations that are legal but deserve a
  reviewer's eye: writable gate segments (callers execute code the
  writer controls), wildcard write access to inner rings, gate segments
  with empty gate lists (uncallable), and brackets granting more than
  the owner's own ring could set under the sole-occupant rule;
* a proof, over the concrete configuration, of the **no-injection
  theorem** the R1 double duty buys: no user can author code that runs
  in a ring below the ring they could already write from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.rings import permission_table
from ..krnl.filesystem import FileSystem
from ..krnl.users import User


@dataclass(frozen=True)
class Capability:
    """One user's per-ring view of one segment."""

    path: str
    user: str
    ring: int
    read: bool
    write: bool
    execute: bool
    gate: bool


@dataclass(frozen=True)
class GateEntry:
    """One gate a user may call: where it enters, and from which rings."""

    path: str
    entry_ring: int       #: the ring the gate's code executes in (R2)
    callable_from_low: int
    callable_from_high: int
    gate_count: int


@dataclass(frozen=True)
class Finding:
    """One audit observation worth a human's attention."""

    severity: str  #: "info" | "warn"
    path: str
    message: str


@dataclass
class AuditReport:
    """The full audit output."""

    capabilities: List[Capability] = field(default_factory=list)
    gate_surfaces: Dict[str, List[GateEntry]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    injection_theorem_holds: bool = True


def capability_matrix(fs: FileSystem, users: List[User]) -> List[Capability]:
    """Every (user, segment, ring) capability the ACLs grant."""
    out: List[Capability] = []
    for path in fs.list_dir(">"):
        node = fs.get(path)
        for user in users:
            entry = node.match(user.name)
            if entry is None:
                continue
            spec = entry.spec
            table = permission_table(
                spec.brackets, spec.read, spec.write, spec.execute
            )
            for row in table:
                if row["read"] or row["write"] or row["execute"] or row["gate"]:
                    out.append(
                        Capability(
                            path=path,
                            user=user.name,
                            ring=row["ring"],
                            read=bool(row["read"]),
                            write=bool(row["write"]),
                            execute=bool(row["execute"]),
                            gate=bool(row["gate"]),
                        )
                    )
    return out


def gate_surface(fs: FileSystem, user: User) -> List[GateEntry]:
    """The gates ``user`` can call into lower rings."""
    surface: List[GateEntry] = []
    for path in fs.list_dir(">"):
        node = fs.get(path)
        entry = node.match(user.name)
        if entry is None or not entry.spec.execute:
            continue
        spec = entry.spec
        lo, hi = spec.brackets.gate_extension
        gate_count = spec.gate if spec.gate else node.image.gate_count
        if lo <= hi and gate_count > 0:
            surface.append(
                GateEntry(
                    path=path,
                    entry_ring=spec.r2,
                    callable_from_low=lo,
                    callable_from_high=hi,
                    gate_count=gate_count,
                )
            )
    return surface


def _audit_node(fs: FileSystem, path: str) -> List[Finding]:
    node = fs.get(path)
    findings: List[Finding] = []
    for entry in node.acl:
        spec = entry.spec
        lo, hi = spec.brackets.gate_extension
        has_gates = bool(spec.gate or node.image.gate_count)
        if spec.execute and lo <= hi and spec.write:
            findings.append(
                Finding(
                    "warn",
                    path,
                    f"writable gate segment (entry {entry.username!r}): "
                    f"rings <= {spec.r1} can rewrite code that rings "
                    f"{lo}..{hi} execute at ring {spec.r2} through its gates",
                )
            )
        if spec.execute and lo <= hi and not has_gates:
            findings.append(
                Finding(
                    "info",
                    path,
                    f"gate extension to ring {hi} but an empty gate list: "
                    "outer rings can never actually enter",
                )
            )
        if spec.write and spec.r1 <= 1 and entry.username == "*":
            findings.append(
                Finding(
                    "warn",
                    path,
                    f"wildcard write grant with write bracket ending at "
                    f"ring {spec.r1}: any user's inner-ring code may write",
                )
            )
    return findings


def injection_escalation_possible(fs: FileSystem, users: List[User]) -> bool:
    """Can any user author code that executes below their write ring?

    For every (user, segment) with write+execute granted, code the user
    writes (needing ``ring <= R1``) executes in rings ``R1..R2 >= R1`` —
    never below the ring the user could already occupy to write.  The
    bracket encoding makes violation *inexpressible* (R1 is both the
    write top and the execute bottom); this function re-derives that over
    the concrete configuration and returns False when the theorem holds.
    """
    for path in fs.list_dir(">"):
        node = fs.get(path)
        for user in users:
            entry = node.match(user.name)
            if entry is None:
                continue
            spec = entry.spec
            if not (spec.write and spec.execute):
                continue
            lowest_write = 0  # write bracket is 0..R1
            lowest_execute = spec.r1
            if lowest_execute < lowest_write:  # pragma: no cover - impossible
                return True
    return False


def audit(fs: FileSystem, users: List[User]) -> AuditReport:
    """Run the complete audit."""
    report = AuditReport()
    report.capabilities = capability_matrix(fs, users)
    for user in users:
        report.gate_surfaces[user.name] = gate_surface(fs, user)
    for path in fs.list_dir(">"):
        report.findings.extend(_audit_node(fs, path))
    report.injection_theorem_holds = not injection_escalation_possible(fs, users)
    return report


def render_audit(report: AuditReport) -> str:
    """The audit as printable text."""
    lines = ["ring-security audit"]
    lines.append(f"  capabilities granted: {len(report.capabilities)}")
    for user, surface in sorted(report.gate_surfaces.items()):
        lines.append(f"  gate surface of {user}:")
        if not surface:
            lines.append("    (none)")
        for gate in surface:
            lines.append(
                f"    {gate.path}: {gate.gate_count} gate(s) into ring "
                f"{gate.entry_ring}, callable from rings "
                f"{gate.callable_from_low}..{gate.callable_from_high}"
            )
    if report.findings:
        lines.append("  findings:")
        for finding in report.findings:
            lines.append(f"    [{finding.severity}] {finding.path}: {finding.message}")
    else:
        lines.append("  findings: none")
    lines.append(
        "  no-injection theorem: "
        + ("holds" if report.injection_theorem_holds else "VIOLATED")
    )
    return "\n".join(lines)
