"""Printable reproductions of Figures 1–9.

The originals are drawings; the reproductions here are their exact
informational content as text: bracket diagrams (Figures 1–2), bit
layouts straight from the authoritative :class:`repro.words.Layout`
objects (Figure 3), and the validation flowcharts as pseudocode plus an
exhaustive outcome census (Figures 4–9).  ``render_all_figures`` is
what EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.rings import RingBrackets, permission_table
from ..formats.indirect import INDIRECT
from ..formats.instruction import INSTRUCTION
from ..formats.pointerfmt import IPR_FORMAT, POINTER
from ..formats.sdw import SDW_W0, SDW_W1
from ..words import Layout, MAX_RINGS
from .decision_tables import (
    call_decision_table,
    fetch_decision_table,
    read_write_decision_table,
    return_decision_table,
    summarize_outcomes,
    transfer_decision_table,
)

#: Example of Figure 1: a writable data segment.  Write bracket rings
#: 0-4, read bracket rings 0-6, not executable.
FIGURE1_EXAMPLE = dict(
    brackets=RingBrackets(4, 6, 6), read=True, write=True, execute=False
)

#: Example of Figure 2: a gated pure procedure.  Executes in rings 3-4,
#: gates callable from rings 5-6, never writable (pure), readable.
FIGURE2_EXAMPLE = dict(
    brackets=RingBrackets(3, 4, 6), read=True, write=False, execute=True
)


def _bracket_diagram(
    title: str, brackets: RingBrackets, read: bool, write: bool, execute: bool
) -> str:
    table = permission_table(brackets, read, write, execute)
    lines = [
        title,
        f"  flags: R={int(read)} W={int(write)} E={int(execute)}   "
        f"brackets: R1={brackets.r1} R2={brackets.r2} R3={brackets.r3}",
        "  ring      " + "   ".join(str(r) for r in range(MAX_RINGS)),
    ]
    for kind, mark in (("write", "W"), ("read", "R"), ("execute", "E"), ("gate", "G")):
        cells = "   ".join(mark if row[kind] else "." for row in table)
        lines.append(f"  {kind:<8}  {cells}")
    lines.append(
        f"  write bracket  rings 0..{brackets.r1}"
        + ("" if write else "   (flag off: no ring may write)")
    )
    lines.append(
        f"  read bracket   rings 0..{brackets.r2}"
        + ("" if read else "   (flag off: no ring may read)")
    )
    lines.append(
        f"  execute bracket rings {brackets.r1}..{brackets.r2}"
        + ("" if execute else "   (flag off: no ring may execute)")
    )
    lo, hi = brackets.gate_extension
    if execute and lo <= hi:
        lines.append(f"  gate extension rings {lo}..{hi}")
    return "\n".join(lines)


def render_figure1() -> str:
    """Figure 1: access indicators for a writable data segment."""
    return _bracket_diagram(
        "Figure 1 — example access indicators for a writable data segment",
        FIGURE1_EXAMPLE["brackets"],
        FIGURE1_EXAMPLE["read"],
        FIGURE1_EXAMPLE["write"],
        FIGURE1_EXAMPLE["execute"],
    )


def render_figure2() -> str:
    """Figure 2: access indicators for a gated pure procedure segment."""
    return _bracket_diagram(
        "Figure 2 — example access indicators for a pure procedure "
        "segment which contains gates",
        FIGURE2_EXAMPLE["brackets"],
        FIGURE2_EXAMPLE["read"],
        FIGURE2_EXAMPLE["write"],
        FIGURE2_EXAMPLE["execute"],
    )


def _layout_diagram(layout: Layout) -> List[str]:
    lines = [f"  {layout.name}:"]
    for field in layout.fields:
        if field.name == "SPARE":
            continue
        hi = field.pos + field.width - 1
        lines.append(
            f"    bits {field.pos:2d}-{hi:2d}  {field.name:<8} ({field.width} bits)"
        )
    return lines


def render_figure3() -> str:
    """Figure 3: storage formats and processor registers."""
    lines = ["Figure 3 — storage formats and processor registers"]
    for layout in (SDW_W0, SDW_W1, INSTRUCTION, INDIRECT, POINTER, IPR_FORMAT):
        lines.extend(_layout_diagram(layout))
    lines.append(
        "  registers: DBR(ADDR,BOUND,STACK)  IPR(RING,SEGNO,WORDNO)  "
        "PR0-PR7(SEGNO,WORDNO,RING)  TPR(RING,SEGNO,WORDNO)  A  Q  CRR"
    )
    return "\n".join(lines)


def _census(rows: Iterable[dict], key: str = "outcome") -> str:
    histogram = summarize_outcomes(list(rows), key)
    total = sum(histogram.values())
    lines = [f"  exhaustive census over {total} cases:"]
    for outcome, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {outcome:<28} {count:6d}")
    return "\n".join(lines)


def render_figure4() -> str:
    """Figure 4: retrieval of the next instruction."""
    text = """Figure 4 — retrieval of next instruction to be executed
  TPR := IPR
  fetch SDW[TPR.SEGNO]            (trap if segno >= DBR.BOUND or not present)
  if not SDW.E:                    trap ACV_NO_EXECUTE
  if not SDW.R1 <= TPR.RING <= SDW.R2:  trap ACV_EXECUTE_BRACKET
  if TPR.WORDNO >= SDW.BOUND:      trap ACV_OUT_OF_BOUNDS
  read instruction word; decode    (trap ILLEGAL_OPCODE if unassigned)"""
    rows = [r for r in fetch_decision_table()]
    return text + "\n" + _census(rows)


def render_figure5() -> str:
    """Figure 5: formation of the effective address in the TPR."""
    return """Figure 5 — formation in TPR of effective address of instruction operand
  TPR.RING := IPR.RING
  if INST.PRFLAG:
      TPR.SEGNO  := PR[INST.PRNUM].SEGNO
      TPR.WORDNO := PR[INST.PRNUM].WORDNO + offset
      TPR.RING   := max(TPR.RING, PR[INST.PRNUM].RING)
  else:
      TPR.SEGNO  := IPR.SEGNO
      TPR.WORDNO := offset
  while indirect:
      fetch SDW[TPR.SEGNO]
      validate READ at TPR.RING              (Figure 6, left)
      IND := memory[TPR.SEGNO, TPR.WORDNO]
      TPR.RING   := max(TPR.RING, IND.RING, SDW.R1)   <- the influence rule
      TPR.SEGNO  := IND.SEGNO;  TPR.WORDNO := IND.WORDNO
      indirect   := IND.I
  invariant: TPR.RING >= IPR.RING, monotone along the chain"""


def render_figure6() -> str:
    """Figure 6: read/write operand validation."""
    text = """Figure 6 — access validation for instructions which read or write operands
  READ:  permitted iff SDW.R and TPR.RING <= SDW.R2 and WORDNO < BOUND
  WRITE: permitted iff SDW.W and TPR.RING <= SDW.R1 and WORDNO < BOUND"""
    rows = read_write_decision_table()
    read_ok = sum(1 for r in rows if r["read_allowed"])
    write_ok = sum(1 for r in rows if r["write_allowed"])
    return (
        text
        + f"\n  exhaustive census over {len(rows)} cases: "
        + f"read allowed {read_ok}, write allowed {write_ok}"
    )


def render_figure7() -> str:
    """Figure 7: instructions which do not reference their operands."""
    text = """Figure 7 — access validation for instructions which do not reference operands
  EAP-type: PRn.(SEGNO,WORDNO,RING) := TPR.(SEGNO,WORDNO,RING); no validation
  transfers (except CALL/RETURN):
    if TPR.RING != IPR.RING:   trap ACV_TRANSFER_RING  (no ring change allowed)
    advance check = Figure 4 fetch validation of the target at IPR.RING"""
    return text + "\n" + _census(transfer_decision_table())


def render_figure8() -> str:
    """Figure 8: validation and performance of CALL."""
    text = """Figure 8 — access validation and performance of the CALL instruction
  fetch SDW[TPR.SEGNO]; bound check
  if not SDW.E:                        trap ACV_NO_EXECUTE
  if TPR.RING > IPR.RING:              trap ACV_RING_RAISED   (p. 30 decision)
  if TPR.RING > SDW.R3:                trap ACV_OUTSIDE_CALL_BRACKET
  if inter-segment and TPR.WORDNO >= SDW.GATE:  trap ACV_NOT_GATE
  if TPR.RING > SDW.R2:   new ring := SDW.R2     (downward call via gate)
  elif TPR.RING >= SDW.R1: new ring := TPR.RING  (same-ring call)
  else:                    trap TRAP_UPWARD_CALL (software completes)
  perform: PR0 := (stack segment for new ring, 0, new ring)
           CRR := old ring     IPR := (new ring, TPR.SEGNO, TPR.WORDNO)"""
    return text + "\n" + _census(call_decision_table())


def render_figure9() -> str:
    """Figure 9: validation and performance of RETURN."""
    text = """Figure 9 — access validation and performance of the RETURN instruction
  fetch SDW[TPR.SEGNO]; bound check
  if not SDW.E:                          trap ACV_NO_EXECUTE
  if not SDW.R1 <= TPR.RING <= SDW.R2:   trap ACV_EXECUTE_BRACKET
  if TPR.RING < IPR.RING:                trap TRAP_DOWNWARD_RETURN (software)
  if TPR.RING > IPR.RING:  every PRn.RING := max(PRn.RING, TPR.RING)
  IPR := (TPR.RING, TPR.SEGNO, TPR.WORDNO)"""
    return text + "\n" + _census(return_decision_table())


def render_all_figures() -> str:
    """Every figure, in order, separated by blank lines."""
    renderers = [
        render_figure1,
        render_figure2,
        render_figure3,
        render_figure4,
        render_figure5,
        render_figure6,
        render_figure7,
        render_figure8,
        render_figure9,
    ]
    return "\n\n".join(render() for render in renderers)
