"""Exhaustive decision tables for Figures 4–9.

Each function enumerates the *entire* input space of one of the paper's
validation flowcharts and records the outcome, producing the figure's
content as data.  The tables serve three purposes:

* they are rendered by :mod:`repro.analysis.figures` as the textual
  reproduction of the flowcharts;
* the test suite compares them row by row against the live hardware
  path (build an SDW, poke the processor, observe the fault) so the
  policy functions and the machine can never drift apart;
* the benchmarks replay them as validation workloads.

Ring variables range over 0..7 and bracket triples over all ordered
triples, so the tables are complete, not sampled.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from ..core.gates import decide_call, decide_return
from ..core.rings import RingBrackets, check_execute, check_read, check_write
from ..words import MAX_RINGS

#: All ordered bracket triples (R1 <= R2 <= R3): C(8+2,3) = 120 of them.
ALL_BRACKETS: Tuple[RingBrackets, ...] = tuple(
    RingBrackets(r1, r2, r3)
    for r1, r2, r3 in itertools.combinations_with_replacement(range(MAX_RINGS), 3)
)

Row = Dict[str, object]


def _rings() -> Iterator[int]:
    return iter(range(MAX_RINGS))


def fetch_decision_table() -> List[Row]:
    """Figure 4: instruction fetch, over (brackets, E flag, ring).

    The bound check is orthogonal (a plain comparison) and is tested
    separately; the table covers the access-control decision.
    """
    rows: List[Row] = []
    for brackets in ALL_BRACKETS:
        for flag in (False, True):
            for ring in _rings():
                allowed = check_execute(ring, brackets, flag)
                reason = (
                    "fetch"
                    if allowed
                    else ("no-execute-flag" if not flag else "outside-execute-bracket")
                )
                rows.append(
                    {
                        "r1": brackets.r1,
                        "r2": brackets.r2,
                        "r3": brackets.r3,
                        "execute_flag": flag,
                        "ring": ring,
                        "allowed": allowed,
                        "outcome": reason,
                    }
                )
    return rows


def read_write_decision_table() -> List[Row]:
    """Figure 6: operand read and write, over (brackets, flags, ring)."""
    rows: List[Row] = []
    for brackets in ALL_BRACKETS:
        for rflag, wflag in itertools.product((False, True), repeat=2):
            for ring in _rings():
                rows.append(
                    {
                        "r1": brackets.r1,
                        "r2": brackets.r2,
                        "r3": brackets.r3,
                        "read_flag": rflag,
                        "write_flag": wflag,
                        "ring": ring,
                        "read_allowed": check_read(ring, brackets, rflag),
                        "write_allowed": check_write(ring, brackets, wflag),
                    }
                )
    return rows


def transfer_decision_table() -> List[Row]:
    """Figure 7: plain-transfer advance check, over (brackets, E, rings).

    ``eff_ring`` and ``cur_ring`` range independently; the table records
    the constraint that a plain transfer must not change the ring.
    """
    rows: List[Row] = []
    for brackets in ALL_BRACKETS:
        for flag in (False, True):
            for cur_ring in _rings():
                for eff_ring in range(cur_ring, MAX_RINGS):
                    if eff_ring != cur_ring:
                        outcome = "ring-change-refused"
                        allowed = False
                    elif not flag:
                        outcome = "no-execute-flag"
                        allowed = False
                    elif not brackets.execute_allowed(cur_ring):
                        outcome = "outside-execute-bracket"
                        allowed = False
                    else:
                        outcome = "transfer"
                        allowed = True
                    rows.append(
                        {
                            "r1": brackets.r1,
                            "r2": brackets.r2,
                            "r3": brackets.r3,
                            "execute_flag": flag,
                            "cur_ring": cur_ring,
                            "eff_ring": eff_ring,
                            "allowed": allowed,
                            "outcome": outcome,
                        }
                    )
    return rows


def call_decision_table(
    gate_count: int = 2,
    wordnos: Tuple[int, ...] = (0, 5),
    same_segment_values: Tuple[bool, ...] = (False, True),
) -> List[Row]:
    """Figure 8: the complete CALL decision.

    ``wordnos`` defaults to one gate word (0 < gate_count) and one
    non-gate word (5 >= gate_count) so both gate-check branches appear;
    effective and current rings range over every pair with
    ``eff >= cur`` (the only ones hardware address formation can
    produce) plus ``eff < cur`` rows marked unreachable.
    """
    rows: List[Row] = []
    for brackets in ALL_BRACKETS:
        for flag in (False, True):
            for cur_ring in _rings():
                for eff_ring in _rings():
                    for wordno in wordnos:
                        for same_segment in same_segment_values:
                            decision = decide_call(
                                eff_ring,
                                cur_ring,
                                brackets,
                                flag,
                                wordno,
                                gate_count,
                                same_segment,
                            )
                            rows.append(
                                {
                                    "r1": brackets.r1,
                                    "r2": brackets.r2,
                                    "r3": brackets.r3,
                                    "execute_flag": flag,
                                    "cur_ring": cur_ring,
                                    "eff_ring": eff_ring,
                                    "wordno": wordno,
                                    "gate_count": gate_count,
                                    "same_segment": same_segment,
                                    "reachable": eff_ring >= cur_ring,
                                    "outcome": decision.outcome.name,
                                    "new_ring": decision.new_ring,
                                }
                            )
    return rows


def return_decision_table() -> List[Row]:
    """Figure 9: the complete RETURN decision."""
    rows: List[Row] = []
    for brackets in ALL_BRACKETS:
        for flag in (False, True):
            for cur_ring in _rings():
                for eff_ring in _rings():
                    decision = decide_return(eff_ring, cur_ring, brackets, flag)
                    rows.append(
                        {
                            "r1": brackets.r1,
                            "r2": brackets.r2,
                            "r3": brackets.r3,
                            "execute_flag": flag,
                            "cur_ring": cur_ring,
                            "eff_ring": eff_ring,
                            "reachable": eff_ring >= cur_ring,
                            "outcome": decision.outcome.name,
                            "new_ring": decision.new_ring,
                        }
                    )
    return rows


def summarize_outcomes(rows: List[Row], key: str = "outcome") -> Dict[str, int]:
    """Histogram of a table's outcome column (used in reports/tests)."""
    histogram: Dict[str, int] = {}
    for row in rows:
        outcome = str(row[key])
        histogram[outcome] = histogram.get(outcome, 0) + 1
    return histogram
