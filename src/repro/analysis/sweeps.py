"""Cost-model sensitivity sweeps (experiment S1).

The simulator's cost model has two free parameters that shape the C1
comparison: the hardware trap overhead and the software ring-crossing
handler's work.  The paper's qualitative claim must not depend on the
particular constants chosen, so this module sweeps them and reports the
downward-call penalty ratio across the space.  The crossover question —
"how cheap would software crossing have to be to match the hardware?" —
gets a numeric answer: only at (near) zero, because the hardware's
marginal crossing cost is a couple of register operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.acl import AclEntry, RingBracketSpec
from ..cpu.processor import CostModel
from ..sim.machine import Machine
from .report import CALLER_SOURCE, TARGET_SOURCE


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the sensitivity sweep and its outcome."""

    trap_overhead: int
    handler_cycles: int
    hardware_cycles: float
    software_cycles: float

    @property
    def ratio(self) -> float:
        return self.software_cycles / self.hardware_cycles


def _cycles_per_pair(
    hardware_rings: bool,
    trap_overhead: int,
    handler_cycles: int,
    n_small: int = 8,
    n_large: int = 24,
) -> float:
    """Marginal downward call/return cost under a custom cost model."""
    import repro.krnl.baseline645 as baseline

    original = baseline.SOFT_CROSSING_CYCLES
    baseline.SOFT_CROSSING_CYCLES = handler_cycles
    try:
        results = []
        for count in (n_small, n_large):
            machine = Machine(
                hardware_rings=hardware_rings,
                services=False,
                cost=CostModel(trap_overhead=trap_overhead),
            )
            user = machine.add_user("s")
            machine.store_program(
                ">s>tzero",
                TARGET_SOURCE.replace("NAME", "tzero"),
                acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
            )
            machine.store_program(
                ">s>caller",
                CALLER_SOURCE.replace("COUNT", str(count)).replace(
                    "TARGET", "tzero"
                ),
                acl=[AclEntry("*", RingBracketSpec.procedure(4))],
            )
            process = machine.login(user)
            machine.initiate(process, ">s>caller")
            result = machine.run(process, "caller$main", ring=4)
            assert result.halted
            results.append(result.cycles)
        return (results[1] - results[0]) / (n_large - n_small)
    finally:
        baseline.SOFT_CROSSING_CYCLES = original


def sweep_crossing_costs(
    trap_overheads: Sequence[int] = (10, 30, 100),
    handler_cycles: Sequence[int] = (50, 150, 500),
) -> List[SweepPoint]:
    """The full S1 sweep: every (trap, handler) combination."""
    points = []
    for trap in trap_overheads:
        hardware = _cycles_per_pair(True, trap, 0)
        for handler in handler_cycles:
            software = _cycles_per_pair(False, trap, handler)
            points.append(
                SweepPoint(
                    trap_overhead=trap,
                    handler_cycles=handler,
                    hardware_cycles=hardware,
                    software_cycles=software,
                )
            )
    return points


def crossover_handler_cycles(trap_overhead: int = 30) -> int:
    """Smallest software handler cost at which software rings match the
    hardware — the answer is effectively zero, which *is* the paper's
    point: the hardware's crossing is nearly free."""
    hardware = _cycles_per_pair(True, trap_overhead, 0)
    for handler in range(0, 200, 5):
        software = _cycles_per_pair(False, trap_overhead, handler)
        if software <= hardware:
            return handler
    return -1


def render_sweep(points: List[SweepPoint]) -> str:
    """The sweep as a printable table."""
    from .report import format_table

    return format_table(
        ["trap overhead", "handler cycles", "hardware", "software", "ratio"],
        [
            [
                p.trap_overhead,
                p.handler_cycles,
                f"{p.hardware_cycles:.1f}",
                f"{p.software_cycles:.1f}",
                f"{p.ratio:.1f}x",
            ]
            for p in points
        ],
        title="S1 — downward call/return cost across the cost-model space",
    )
