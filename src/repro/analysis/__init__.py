"""Reproduction of the paper's figures.

The paper's evaluation artifacts are its nine figures: two bracket
examples, the storage formats, and six access-validation flowcharts.
This package regenerates each as data (decision tables) and as text
(ASCII renderings), and cross-checks the hardware path against
independently enumerated oracles:

* :mod:`repro.analysis.decision_tables` — exhaustive enumeration of the
  decision procedures of Figures 4–9 over the full input space;
* :mod:`repro.analysis.figures` — printable reproductions of every
  figure;
* :mod:`repro.analysis.report` — the experiment harness behind
  EXPERIMENTS.md: runs the crossing-cost and argument-passing scenarios
  and formats result tables.
"""

from .decision_tables import (
    call_decision_table,
    fetch_decision_table,
    read_write_decision_table,
    return_decision_table,
    transfer_decision_table,
)
from .figures import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_all_figures,
)
from .report import (
    crossing_cost_experiment,
    format_table,
)
from .sweeps import SweepPoint, crossover_handler_cycles, sweep_crossing_costs
from .verify import CheckResult, render_report, verify_all
from .audit import AuditReport, Finding, audit, render_audit

__all__ = [
    "call_decision_table",
    "fetch_decision_table",
    "read_write_decision_table",
    "return_decision_table",
    "transfer_decision_table",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_all_figures",
    "crossing_cost_experiment",
    "format_table",
    "SweepPoint",
    "crossover_handler_cycles",
    "sweep_crossing_costs",
    "CheckResult",
    "render_report",
    "verify_all",
    "AuditReport",
    "Finding",
    "audit",
    "render_audit",
]
