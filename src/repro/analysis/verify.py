"""Programmatic self-verification.

``verify_all()`` runs the reproduction's load-bearing checks — encoding
bijections, the nested-subset property, CALL/RETURN decision invariants,
effective-ring monotonicity, live-machine-vs-oracle agreement, and the
crossing-cost claim — and returns a structured report.  The CLI exposes
it as ``python -m repro verify``; CI-style consumers can gate on the
boolean.  Everything here is also covered (more deeply) by the pytest
suite; this module exists so a *user* of the library can convince
themselves the installed copy behaves, in seconds, without the test
infrastructure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List

from ..core.effective import effective_ring_of_chain
from ..core.gates import decide_call, decide_return
from ..core.rings import nested_subset_holds
from ..formats.indirect import IndirectWord
from ..formats.instruction import Instruction
from ..formats.sdw import SDW
from .decision_tables import ALL_BRACKETS
from .report import crossing_cost_experiment


@dataclass
class CheckResult:
    """Outcome of one verification check."""

    name: str
    ok: bool
    detail: str


def check_encodings() -> CheckResult:
    """Sampled round-trips through every Figure 3 format."""
    count = 0
    for addr in (0, 0o1234567, (1 << 24) - 1):
        for r1, r2, r3 in ((0, 0, 0), (1, 3, 5), (7, 7, 7)):
            sdw = SDW(addr=addr, bound=100, r1=r1, r2=r2, r3=r3, read=True)
            if SDW.unpack(*sdw.pack()) != sdw:
                return CheckResult("encodings", False, f"SDW mismatch {sdw}")
            count += 1
    for opcode in (0, 0o60, 0o511 & 0o777):
        inst = Instruction(opcode=opcode, offset=0o123, indirect=True, prnum=5, prflag=True)
        if Instruction.unpack(inst.pack()) != inst:
            return CheckResult("encodings", False, f"INS mismatch {inst}")
        count += 1
    ind = IndirectWord(segno=100, wordno=200, ring=6, indirect=True)
    if IndirectWord.unpack(ind.pack()) != ind:
        return CheckResult("encodings", False, "IND mismatch")
    return CheckResult("encodings", True, f"{count + 1} round-trips exact")


def check_nested_subset() -> CheckResult:
    """The nested-subset property over every bracket triple and flags."""
    for brackets in ALL_BRACKETS:
        for rflag, wflag in itertools.product((False, True), repeat=2):
            if not nested_subset_holds(brackets, rflag, wflag, True):
                return CheckResult(
                    "nested-subset", False, f"violated at {brackets}"
                )
    return CheckResult(
        "nested-subset", True, f"holds over {len(ALL_BRACKETS) * 4} combinations"
    )


def check_call_invariants() -> CheckResult:
    """A completed CALL never raises the ring and lands in the bracket."""
    cases = 0
    for brackets in ALL_BRACKETS:
        for eff in range(8):
            decision = decide_call(eff, eff, brackets, True, 0, 1, False)
            cases += 1
            if decision.proceeds:
                if decision.new_ring > eff:
                    return CheckResult(
                        "call-invariants", False, f"ring raised at {brackets}, {eff}"
                    )
                if not brackets.execute_allowed(decision.new_ring):
                    return CheckResult(
                        "call-invariants",
                        False,
                        f"outside bracket at {brackets}, {eff}",
                    )
    return CheckResult("call-invariants", True, f"{cases} decisions checked")


def check_return_invariants() -> CheckResult:
    """A completed RETURN never drops below the caller's ring."""
    cases = 0
    for brackets in ALL_BRACKETS:
        for cur in range(8):
            for eff in range(cur, 8):
                decision = decide_return(eff, cur, brackets, True)
                cases += 1
                if decision.proceeds and decision.new_ring < cur:
                    return CheckResult(
                        "return-invariants",
                        False,
                        f"dropped below caller at {brackets}, {cur}->{eff}",
                    )
    return CheckResult("return-invariants", True, f"{cases} decisions checked")


def check_effective_ring() -> CheckResult:
    """Monotonicity and the max law on a grid of chains."""
    for cur in range(8):
        for pr in (None, 0, 3, 7):
            for chain in ((), ((2, 1),), ((0, 5), (7, 0))):
                ring = effective_ring_of_chain(cur, pr, chain)
                influences = [cur] + ([pr] if pr is not None else [])
                influences += [v for pair in chain for v in pair]
                if ring != max(influences) or ring < cur:
                    return CheckResult(
                        "effective-ring", False, f"law broken at {cur},{pr},{chain}"
                    )
    return CheckResult("effective-ring", True, "max law holds on grid")


def check_live_machine() -> CheckResult:
    """A real cross-ring call/return on the live machine."""
    from ..core.acl import AclEntry, RingBracketSpec
    from ..sim.machine import Machine

    machine = Machine()
    user = machine.add_user("verify")
    machine.store_program(
        ">v>prog",
        """
        .seg    prog
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    process = machine.login(user)
    machine.initiate(process, ">v>prog")
    result = machine.run(process, "prog$main", ring=4)
    ok = (
        result.halted
        and result.console == [42]
        and result.ring == 4
        and result.ring_crossings == 2
    )
    return CheckResult(
        "live-machine",
        ok,
        f"gate call: console={result.console}, crossings={result.ring_crossings}",
    )


def check_crossing_claim() -> CheckResult:
    """The paper's headline cost claim, end to end."""
    rows = crossing_cost_experiment()
    by_name = {row.scenario: row for row in rows}
    same = by_name["same-ring call+return"]
    down = by_name["downward call+upward return"]
    ok = (
        same.hardware_cycles == same.software_cycles
        and down.hardware_cycles <= same.hardware_cycles + 5
        and down.ratio > 5
    )
    return CheckResult(
        "crossing-claim",
        ok,
        f"downward: hw {down.hardware_cycles:.1f} vs sw "
        f"{down.software_cycles:.1f} cycles ({down.ratio:.1f}x)",
    )


#: Every check, in execution order.
ALL_CHECKS: List[Callable[[], CheckResult]] = [
    check_encodings,
    check_nested_subset,
    check_call_invariants,
    check_return_invariants,
    check_effective_ring,
    check_live_machine,
    check_crossing_claim,
]


def verify_all() -> List[CheckResult]:
    """Run every check; never raises (failures are reported)."""
    results = []
    for check in ALL_CHECKS:
        try:
            results.append(check())
        except Exception as exc:  # a crash is a failed check, with context
            results.append(CheckResult(check.__name__, False, f"crashed: {exc}"))
    return results


def render_report(results: List[CheckResult]) -> str:
    """Printable verification report."""
    lines = ["repro self-verification"]
    for result in results:
        mark = "ok  " if result.ok else "FAIL"
        lines.append(f"  [{mark}] {result.name:<20} {result.detail}")
    passed = sum(1 for r in results if r.ok)
    lines.append(f"  {passed}/{len(results)} checks passed")
    return "\n".join(lines)
