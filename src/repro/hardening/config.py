"""Configuration for the hardening extensions.

The three extensions are the modern descendants of the paper's rings,
each off by default and individually ablatable:

``auth_return_stack``
    a PACStack-style MAC chain over the return points the supervisor
    save-stack convention records on downward calls, verified on every
    upward return (:mod:`repro.hardening.authstack`);
``ring_domains``
    LOTRx86-style intra-ring privilege domains layered on the bracket
    checks (:mod:`repro.hardening.domains`);
``nx_brackets``
    an execute-bracket NX mode: a segment that is both writable and
    executable hard-faults on execution (W^X, enforced in
    ``Processor.validate_access``).

A :class:`HardeningConfig` is immutable and travels with the machine:
it is serialized into snapshots and restored bit-identically, so a
restored machine enforces exactly what the snapshotted one did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..errors import ConfigurationError

#: the three ablatable extension flags, in canonical order
HARDENING_FLAGS = ("auth_return_stack", "ring_domains", "nx_brackets")

#: default seed for the per-machine MAC key (deterministic on purpose:
#: snapshots must restore to the same chain, and the adversary harness
#: compares machines bit-for-bit — a random key would break both)
DEFAULT_AUTH_KEY_SEED = 1971


@dataclass(frozen=True)
class HardeningConfig:
    """Which hardening extensions a machine runs, and their parameters.

    ``domains`` maps segment *names* to domain names; segments acquire
    their domain when the supervisor initiates them (name-based so the
    table can be written before any segment numbers exist).  A
    non-empty table requires ``ring_domains`` — a silently ignored
    table is exactly the misconfiguration this class exists to reject.
    """

    auth_return_stack: bool = False
    ring_domains: bool = False
    nx_brackets: bool = False
    auth_key_seed: int = DEFAULT_AUTH_KEY_SEED
    domains: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.auth_key_seed, int) or self.auth_key_seed < 0:
            raise ConfigurationError(
                "auth_key_seed must be a non-negative integer"
            )
        if self.domains and not self.ring_domains:
            raise ConfigurationError(
                "a domain table requires ring_domains=True — a table on "
                "a machine that never checks it would silently protect "
                "nothing"
            )
        for entry in self.domains:
            if (
                not isinstance(entry, tuple)
                or len(entry) != 2
                or not all(isinstance(part, str) and part for part in entry)
            ):
                raise ConfigurationError(
                    "domains must be (segment_name, domain_name) string "
                    f"pairs, got {entry!r}"
                )

    @property
    def enabled(self) -> bool:
        """True when any extension is on."""
        return self.auth_return_stack or self.ring_domains or self.nx_brackets

    def enabled_flags(self) -> Tuple[str, ...]:
        """The names of the enabled extensions, in canonical order."""
        return tuple(
            flag for flag in HARDENING_FLAGS if getattr(self, flag)
        )

    def domain_table(self) -> Dict[str, str]:
        """The segment-name -> domain-name table as a dict."""
        return dict(self.domains)

    def as_dict(self) -> Dict[str, object]:
        """JSON-shaped form for machine snapshots."""
        return {
            "auth_return_stack": self.auth_return_stack,
            "ring_domains": self.ring_domains,
            "nx_brackets": self.nx_brackets,
            "auth_key_seed": self.auth_key_seed,
            "domains": [list(pair) for pair in self.domains],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HardeningConfig":
        """The inverse of :meth:`as_dict` (snapshot restore)."""
        return cls(
            auth_return_stack=bool(data.get("auth_return_stack", False)),
            ring_domains=bool(data.get("ring_domains", False)),
            nx_brackets=bool(data.get("nx_brackets", False)),
            auth_key_seed=int(data.get("auth_key_seed", DEFAULT_AUTH_KEY_SEED)),
            domains=tuple(
                (str(name), str(domain))
                for name, domain in data.get("domains", [])
            ),
        )

    @classmethod
    def from_flags(
        cls,
        flags: Iterable[str],
        domains: Tuple[Tuple[str, str], ...] = (),
        auth_key_seed: int = DEFAULT_AUTH_KEY_SEED,
    ) -> "HardeningConfig":
        """Build a config from flag names (CLI / gateway surface)."""
        chosen = []
        for flag in flags:
            if flag not in HARDENING_FLAGS:
                raise ConfigurationError(
                    f"unknown hardening flag {flag!r}; expected one of "
                    f"{HARDENING_FLAGS}"
                )
            chosen.append(flag)
        return cls(
            auth_return_stack="auth_return_stack" in chosen,
            ring_domains="ring_domains" in chosen,
            nx_brackets="nx_brackets" in chosen,
            auth_key_seed=auth_key_seed,
            domains=tuple(domains),
        )
