"""Intra-ring privilege domains layered on the ring brackets.

Rings order privilege totally: everything in ring 3 can read anything
ring 3 can read.  Lord of the x86 Rings (Lee et al.) shows the unused
middle rings can host *domains* — mutually distrusting compartments at
the same privilege level.  We model the domain table as machine
configuration: segment names map to domain names, segments acquire
their domain when the supervisor initiates them, and the processor
refuses any operand reference from a procedure in one domain to a
segment in another.  Transfers of control between domains must go
through CALL — and every inter-segment CALL already requires a gate
word (Figure 8), so the existing gate descriptors double as the
domain-gate descriptors: a domain exposes exactly its gate list.

Segments with no assigned domain are *common*: reachable from every
domain, like the shared supervisor and library segments.  The check is
therefore purely additive — a machine whose table is empty behaves
exactly like one with the flag off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class DomainMap:
    """Segment-to-domain assignments for one machine.

    ``by_name`` holds the configured (and runtime-assigned) table keyed
    by segment name; ``by_segno`` is the processor-facing projection,
    populated as the supervisor initiates segments.
    """

    def __init__(self, table: Iterable[Tuple[str, str]] = ()):
        self.by_name: Dict[str, str] = dict(table)
        self.by_segno: Dict[int, str] = {}

    def assign(self, name: str, domain: str) -> None:
        """Bind a segment name to a domain (before or after initiation).

        Late assignment matters for serving: program images declare
        their domains and the worker assigns them as it installs the
        image, possibly after some segments are already known.
        """
        self.by_name[name] = domain

    def register(self, segno: int, name: str) -> None:
        """Called by the supervisor when a segment becomes known."""
        domain = self.by_name.get(name)
        if domain is not None:
            self.by_segno[segno] = domain

    def domain_of(self, segno: int) -> Optional[str]:
        """The domain of a segment number, or None for common segments."""
        return self.by_segno.get(segno)

    def snapshot(self) -> Dict[str, List]:
        """Snapshot-serializable form of the runtime state."""
        return {
            "by_name": [[name, dom] for name, dom in sorted(self.by_name.items())],
            "by_segno": [
                [segno, dom] for segno, dom in sorted(self.by_segno.items())
            ],
        }

    def restore(self, data: Dict[str, List]) -> None:
        """Replace runtime state with snapshotted state."""
        self.by_name = {str(n): str(d) for n, d in data.get("by_name", [])}
        self.by_segno = {int(s): str(d) for s, d in data.get("by_segno", [])}
