"""Hardening extensions: what modern hardware added to the 1971 rings.

Three individually ablatable machine-config extensions, each closing a
gap the paper's mechanism leaves open and each traceable to a modern
hardware cousin:

- :class:`~repro.hardening.authstack.AuthReturnStack`
  (``auth_return_stack``) — PACStack-style MAC chain over downward-call
  return points, verified on every upward return;
- :class:`~repro.hardening.domains.DomainMap` (``ring_domains``) —
  LOTRx86-style intra-ring privilege domains on the unused middle
  rings;
- ``nx_brackets`` — W^X for segments: writable+executable overlap and
  data-segment execution become hard faults.

See :class:`~repro.hardening.config.HardeningConfig` for the flag
surface and ``docs/architecture.md`` for the ablation table.
"""

from .authstack import AuthReturnStack, GENESIS_MAC, MAC_BITS, RETURN_PTR_PR
from .config import DEFAULT_AUTH_KEY_SEED, HARDENING_FLAGS, HardeningConfig
from .domains import DomainMap

__all__ = [
    "AuthReturnStack",
    "DomainMap",
    "HardeningConfig",
    "HARDENING_FLAGS",
    "DEFAULT_AUTH_KEY_SEED",
    "GENESIS_MAC",
    "MAC_BITS",
    "RETURN_PTR_PR",
]
