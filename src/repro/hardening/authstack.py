"""Authenticated return stack: a MAC chain over downward-call returns.

The paper's gate discipline checks *where* control enters a ring, but
an upward RETURN trusts whatever pointer the returning procedure
presents — PR4 by the save-stack convention.  A callee (or anything
that can influence the caller-supplied return pointer) can therefore
redirect an upward return to an arbitrary word in the caller's ring
without violating a single bracket rule.  PACStack (Liljestrand et
al.) closes this on ARM by chaining pointer-authentication MACs so
each return address is authenticated against the whole stack below it.

This module models that as machine state: on every downward CALL the
processor pushes ``mac(key, prev_mac, ring, segno, wordno)`` over the
return point it is committing to; on every upward RETURN it recomputes
the MAC for the point actually being returned to and compares.  A
mismatch — forged pointer, skipped frame, replayed frame — raises
``ACV_AUTH_RETURN`` before any architectural state changes.

The chain is architectural when the flag is on: it snapshots and
restores bit-identically (``snapshot``/``restore``), and the key is
derived from a deterministic per-machine seed so a restored machine
verifies exactly the frames the snapshotted one pushed.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

#: MACs are truncated to 64 bits, mirroring the pointer-sized
#: authentication codes of the modeled hardware.
MAC_BITS = 64
_MAC_MASK = (1 << MAC_BITS) - 1

#: MAC of the empty chain (no frames pushed).
GENESIS_MAC = 0

#: The save-stack convention's return-pointer register: a caller loads
#: PR4 with its return point before CALL, and RETURN goes through it.
#: The MAC chain authenticates exactly that commitment.
RETURN_PTR_PR = 4


def _derive_key(seed: int) -> bytes:
    """Per-machine MAC key from the deterministic seed."""
    return hashlib.sha256(f"repro-auth-return-stack:{seed}".encode()).digest()


class AuthReturnStack:
    """The chained-MAC return stack for one machine."""

    def __init__(self, seed: int):
        self._key = _derive_key(seed)
        #: chain[i] authenticates frame i against all frames below it
        self._chain: List[int] = []

    def __len__(self) -> int:
        return len(self._chain)

    def _mac(self, prev: int, ring: int, segno: int, wordno: int) -> int:
        digest = hashlib.sha256(
            self._key
            + prev.to_bytes(8, "big")
            + ring.to_bytes(2, "big")
            + segno.to_bytes(4, "big")
            + wordno.to_bytes(4, "big")
        ).digest()
        return int.from_bytes(digest[:8], "big") & _MAC_MASK

    def push(self, ring: int, segno: int, wordno: int) -> int:
        """Record the return point a downward CALL commits to."""
        prev = self._chain[-1] if self._chain else GENESIS_MAC
        mac = self._mac(prev, ring, segno, wordno)
        self._chain.append(mac)
        return mac

    def verify(self, ring: int, segno: int, wordno: int) -> bool:
        """Check an upward return target against the top frame.

        Returns False on an empty chain (an upward return with no
        matching downward call is itself a forgery) or when the
        recomputed MAC disagrees with the pushed one.  Does not pop:
        the caller pops only after deciding the return may proceed.
        """
        if not self._chain:
            return False
        prev = self._chain[-2] if len(self._chain) > 1 else GENESIS_MAC
        return self._mac(prev, ring, segno, wordno) == self._chain[-1]

    def pop(self) -> int:
        """Drop the top frame (after a verified upward return)."""
        return self._chain.pop()

    def clear(self) -> None:
        """Reset the chain (machine start / process attach)."""
        self._chain.clear()

    def snapshot(self) -> List[int]:
        """The chain as snapshot-serializable state."""
        return list(self._chain)

    def restore(self, chain: List[int]) -> None:
        """Replace the chain with snapshotted state."""
        self._chain = [int(mac) & _MAC_MASK for mac in chain]

    def peek(self) -> Tuple[int, ...]:
        """Read-only view of the chain (tests, diagnostics)."""
        return tuple(self._chain)
