"""User identities.

"A process with a new virtual memory is created for each user when he
logs in to the system, and the name of the user is associated with the
process" (paper p. 7).  Users here are just names plus an administrator
flag — enough to drive the ACL machinery and the paper's example of a
registration gate "available only from the processes of system
administrators" (p. 36).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from ..errors import ConfigurationError


@dataclass(frozen=True)
class User:
    """One registered user of the simulated utility."""

    name: str
    administrator: bool = False

    def __post_init__(self) -> None:
        if not self.name or "$" in self.name or ">" in self.name:
            raise ConfigurationError(f"bad user name {self.name!r}")


class UserRegistry:
    """The system's user list."""

    def __init__(self) -> None:
        self._users: Dict[str, User] = {}

    def register(self, name: str, administrator: bool = False) -> User:
        """Add a user; re-registering the same name is an error."""
        if name in self._users:
            raise ConfigurationError(f"user {name!r} already registered")
        user = User(name=name, administrator=administrator)
        self._users[name] = user
        return user

    def lookup(self, name: str) -> User:
        """Find a user by name."""
        try:
            return self._users[name]
        except KeyError:
            raise ConfigurationError(f"no user {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._users

    def __iter__(self) -> Iterator[User]:
        return iter(self._users.values())
