"""The ring-0 supervisor.

This is the software the paper assumes around its hardware: the trap
handler, the segment-activation machinery (file system -> virtual
memory), and the I/O hook behind the privileged CIOC instruction.

It is implemented as host-Python "firmware" invoked by the processor's
trap machinery rather than as simulated ring-0 assembly; the cost model
charges the trap overhead and per-service work so that timing-shaped
experiments remain meaningful, and the *gate services* user programs
call explicitly (see :mod:`repro.krnl.services`) are genuine ring-0
machine code reached through genuine hardware gates — the part the
paper is about is never short-circuited.

Segment numbering: active segments receive globally unique segment
numbers (shared across processes).  Real Multics allows per-process
numbering and pays with per-process linkage sections; the global scheme
is a documented simplification (DESIGN.md) that affects no ring
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cpu.faults import Fault, FaultCode
from ..cpu.processor import (
    HANDLER_ABORT,
    HANDLER_CONTINUE,
    HANDLER_RETRY,
    Processor,
)
from ..errors import AccessDenied, ConfigurationError, LinkError
from ..formats.sdw import SDW
from ..mem.physical import PhysicalMemory
from ..mem.segment import SegmentImage
from .baseline645 import SoftwareRingAssist
from .callret import UpwardCallAssist
from .filesystem import FileSystem
from .loader import Loader, PlacedSegment
from .process import FIRST_FREE_SEGNO, Process
from .users import User, UserRegistry

#: Cycles charged for servicing a missing page in software.
PAGE_SERVICE_CYCLES = 40

#: Cycles charged for demand-initiating a missing segment.
SEGMENT_SERVICE_CYCLES = 80

#: Instructions between starting an asynchronous I/O and its completion.
IO_LATENCY = 25

#: Cycles charged for fielding one I/O-completion event.
IO_COMPLETION_CYCLES = 15

#: Most recent aborted faults retained for post-mortems.  Long-lived
#: serving machines field an unbounded stream of (expected) attack
#: faults; the diagnostic log must not grow with them.
ABORT_LOG_LIMIT = 64


@dataclass
class ActiveSegment:
    """A file-system segment currently placed in physical memory."""

    path: str
    segno: int
    placed: PlacedSegment
    image: SegmentImage
    links_resolved: bool = False


@dataclass
class ConsoleRecord:
    """One CIOC console transmission."""

    word: int
    ring: int


class Supervisor:
    """Owns the shared system state and fields all traps."""

    def __init__(
        self,
        memory: PhysicalMemory,
        filesystem: Optional[FileSystem] = None,
        users: Optional[UserRegistry] = None,
    ):
        self.memory = memory
        self.fs = filesystem or FileSystem()
        self.users = users or UserRegistry()
        self.loader = Loader(memory)
        self.active: Dict[str, ActiveSegment] = {}
        self.active_by_name: Dict[str, ActiveSegment] = {}
        self.active_by_segno: Dict[int, ActiveSegment] = {}
        self._next_segno = FIRST_FREE_SEGNO
        self.processes: List[Process] = []
        self.console: List[ConsoleRecord] = []
        self.console_chars: List[str] = []
        self._io_in_flight: List[ConsoleRecord] = []
        self._assists: Dict[int, UpwardCallAssist] = {}
        self._soft_rings: Dict[int, SoftwareRingAssist] = {}
        #: faults the supervisor refused to handle, for post-mortems
        #: (bounded: only the most recent ABORT_LOG_LIMIT are retained)
        self.aborted_faults: List[Fault] = []
        #: use paged storage for newly activated segments
        self.paged = False
        #: defer inter-segment link resolution to linkage faults
        self.lazy_linking = False
        #: arm the interval timer with this count at attach time
        self.timer_quantum: Optional[int] = None
        #: abort a process after this many timer runouts (None = never)
        self.timer_limit: Optional[int] = None
        self._timer_counts: Dict[int, int] = {}
        #: segment numbers pinned by deactivation for later reactivation
        self._reserved_segnos: Dict[str, int] = {}
        #: sole-occupant registry: (process id, ring) -> owner name
        self._ring_occupants: Dict[tuple, str] = {}
        #: rings subject to the sole-occupant rule (the protected
        #: subsystem rings of the paper's layering, p. 36)
        self.subsystem_rings = (2, 3)
        #: the process most recently attached to a processor (what a
        #: machine snapshot must re-attach so fault/io handlers exist)
        self.attached_process: Optional[Process] = None
        #: the processor's DomainMap when ring_domains is on (set by
        #: Machine): initiation binds segment numbers to their
        #: configured domains as segments become known
        self.domains = None
        from .linkage import LinkageManager

        self.linkage = LinkageManager(self.loader)

    # ------------------------------------------------------------------
    # segment numbering
    # ------------------------------------------------------------------

    def next_segno(self) -> int:
        """Allocate a fresh global segment number."""
        segno = self._next_segno
        self._next_segno += 1
        return segno

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def create_process(
        self,
        user: User,
        descriptor_bound: int = 128,
        stack_base_segno: int = 0,
    ) -> Process:
        """Log a user in: build their process and virtual memory.

        ``stack_base_segno`` relocates the eight per-ring stacks (only
        meaningful with the DBR stack-selection rule; see experiment A1).
        """
        # Relocated stacks occupy segment numbers the global allocator
        # must never hand out.
        from .process import STACK_SEGMENTS

        if stack_base_segno + STACK_SEGMENTS > self._next_segno:
            self._next_segno = stack_base_segno + STACK_SEGMENTS
        process = Process.create(
            self.memory,
            user,
            descriptor_bound=descriptor_bound,
            stack_base_segno=stack_base_segno,
        )
        self.processes.append(process)
        self._assists[id(process)] = UpwardCallAssist(
            process, gate_segno=self.next_segno()
        )
        self._soft_rings[id(process)] = SoftwareRingAssist(process)
        return process

    def assist_for(self, process: Process) -> UpwardCallAssist:
        """The upward-call machinery of one process."""
        return self._assists[id(process)]

    # ------------------------------------------------------------------
    # activation: file system -> physical memory
    # ------------------------------------------------------------------

    def activate(self, path: str) -> ActiveSegment:
        """Place a stored segment in memory (idempotent) and link it.

        Link targets are activated recursively; mutual references are
        broken by assigning the segment number before resolving.
        """
        if path in self.active:
            return self.active[path]
        node = self.fs.get(path)
        placed = self.loader.place(node.image, paged=self.paged)
        segno = self._reserved_segnos.pop(path, None)
        if segno is None:
            segno = self.next_segno()
        active = ActiveSegment(
            path=path,
            segno=segno,
            placed=placed,
            image=node.image,
        )
        self.active[path] = active
        if node.image.name in self.active_by_name:
            raise ConfigurationError(
                f"segment name {node.image.name!r} already active "
                f"(from {self.active_by_name[node.image.name].path!r})"
            )
        self.active_by_name[node.image.name] = active
        self.active_by_segno[active.segno] = active

        if self.lazy_linking:
            self.linkage.place_unresolved(placed, active.segno)
        else:
            self.loader.resolve(placed, active.segno, self._name_resolver)
            active.links_resolved = True
        return active

    def _name_resolver(self, name: str):
        """Loader-facing resolver: name -> (segno, entries), activating."""
        target = self.resolve_name(name)
        return target.segno, target.image.entries

    def resolve_name(self, name: str) -> ActiveSegment:
        """Segment *name* -> active segment, activating from the store.

        The search rule is simple: an already active segment wins;
        otherwise the file system is scanned for a unique basename
        match.
        """
        if name in self.active_by_name:
            return self.active_by_name[name]
        matches = [
            path for path in self.fs.list_dir(">") if path.split(">")[-1] == name
        ]
        if not matches:
            raise LinkError(f"no stored segment named {name!r}")
        if len(matches) > 1:
            raise LinkError(
                f"segment name {name!r} is ambiguous: {matches}"
            )
        return self.activate(matches[0])

    # ------------------------------------------------------------------
    # initiation: memory -> a process's virtual memory
    # ------------------------------------------------------------------

    def initiate(
        self,
        process: Process,
        path: str,
        name: Optional[str] = None,
    ) -> int:
        """Add a stored segment to a process's virtual memory.

        The ACL of the segment is consulted with the process's user
        name; the matching entry supplies every access field of the SDW
        (paper p. 16).  Raises :class:`repro.errors.AccessDenied` when
        no entry matches.
        """
        entry = self.fs.check_access(path, process.user)
        spec = entry.spec
        self._check_sole_occupant(process, path, spec)
        active = self.activate(path)
        gate = spec.gate if spec.gate else active.image.gate_count
        sdw = SDW(
            addr=active.placed.addr,
            bound=active.placed.bound,
            paged=active.placed.paged,
            r1=spec.r1,
            r2=spec.r2,
            r3=spec.r3,
            read=spec.read,
            write=spec.write,
            execute=spec.execute,
            gate=gate,
        )
        known_name = name or active.image.name
        process.make_known(
            known_name,
            active.segno,
            sdw,
            entries=active.image.entries,
            path=path,
            gate_count=gate,
        )
        if self.domains is not None:
            # ring_domains: the segment acquires its configured domain
            # the moment it becomes known (demand initiation included).
            self.domains.register(active.segno, known_name)
        return active.segno

    def deactivate(
        self,
        path: str,
        processors: Optional[List[Processor]] = None,
    ) -> bool:
        """Evict an active segment from physical memory.

        Every process's SDW for the segment is marked missing and the
        storage freed; the *known-segment table entries stay*, so the
        next reference takes a missing-segment trap and the supervisor
        transparently re-activates from the backing store — the
        segment-level virtual-memory cycle.  Returns False when the
        segment was not active.

        Paged segments are not evicted here (their unit of residence is
        the page, handled by the page-fault path).
        """
        active = self.active.get(path)
        if active is None or active.placed.paged:
            return False
        if self.linkage.has_pending_for(active.placed):
            # unsnapped links would later patch freed storage
            return False
        # write the current contents back to the image (dirty data!)
        words = self.memory.peek_block(active.placed.addr, active.placed.bound)
        active.image.words[: len(words)] = words
        for process in self.processes:
            if active.segno in process.by_segno:
                process.dseg.clear(active.segno)
                # drop the stale known entry so demand initiation re-adds
                known = process.by_segno.pop(active.segno)
                del process.known[known.name]
        if active.placed.allocation is not None:
            self.memory.free(active.placed.allocation)
        del self.active[path]
        del self.active_by_name[active.image.name]
        del self.active_by_segno[active.segno]
        # Global numbering: reactivation must reuse the same segment
        # number, or link words elsewhere would dangle.
        self._reserved_segnos[path] = active.segno
        for proc in processors or []:
            proc.invalidate_sdw(active.segno)
        return True

    def update_access(
        self,
        path: str,
        requester: User,
        entries: List,
        requester_ring: int = 0,
        processors: Optional[List[Processor]] = None,
    ) -> int:
        """Change a segment's ACL and make it *immediately* effective.

        The paper (p. 9): changing the finer constraints recorded in the
        SDW is expected to be immediately effective.  This service
        rewrites the ACL, then rebuilds the SDW in every process that
        has the segment initiated (revoking it outright where no entry
        matches any more) and invalidates the affected associative-memory
        entries on the given processors.  Returns the number of
        processes whose SDW changed.
        """
        self.fs.set_acl(path, requester, entries, requester_ring)
        active = self.active.get(path)
        if active is None:
            return 0
        changed = 0
        for process in self.processes:
            known = process.by_segno.get(active.segno)
            if known is None:
                continue
            entry = self.fs.get(path).match(process.user.name)
            if entry is None:
                process.dseg.clear(active.segno)
            else:
                spec = entry.spec
                gate = spec.gate if spec.gate else active.image.gate_count
                process.dseg.set(
                    active.segno,
                    SDW(
                        addr=active.placed.addr,
                        bound=active.placed.bound,
                        paged=active.placed.paged,
                        r1=spec.r1,
                        r2=spec.r2,
                        r3=spec.r3,
                        read=spec.read,
                        write=spec.write,
                        execute=spec.execute,
                        gate=gate,
                    ),
                )
            changed += 1
        for proc in processors or []:
            proc.invalidate_sdw(active.segno)
        return changed

    def _check_sole_occupant(self, process: Process, path: str, spec) -> None:
        """Enforce the sole-occupant property (paper pp. 37-38).

        "Although a given ring may simultaneously protect different
        subsystems in different processes, each ring of each process can
        protect only one subsystem at a time."  A subsystem is
        identified by its owner: initiating executable segments whose
        execute bracket begins in a protected-subsystem ring records the
        owner as that ring's occupant for this process; a different
        owner claiming the same ring of the same process is refused.
        """
        if not spec.execute or spec.r1 not in self.subsystem_rings:
            return
        owner = self.fs.get(path).owner.name
        key = (id(process), spec.r1)
        occupant = self._ring_occupants.get(key)
        if occupant is None:
            self._ring_occupants[key] = owner
        elif occupant != owner:
            raise AccessDenied(
                f"ring {spec.r1} of {process.user.name}'s process already "
                f"protects a subsystem of {occupant!r}; {owner!r} cannot "
                "co-occupy it (sole-occupant rule)"
            )

    def ring_occupant(self, process: Process, ring: int) -> Optional[str]:
        """The subsystem owner occupying ``ring`` of ``process``, if any."""
        return self._ring_occupants.get((id(process), ring))

    # ------------------------------------------------------------------
    # attaching a processor
    # ------------------------------------------------------------------

    def attach(self, processor: Processor, process: Process) -> None:
        """Point a processor at a process and install trap handling."""
        self.attached_process = process
        processor.set_dbr(process.dbr)
        processor.fault_handler = self._make_fault_handler(process)
        processor.io_handler = self._io_handler
        if self.timer_quantum is not None:
            processor.set_timer(self.timer_quantum)

    def _io_handler(self, proc: Processor, word: int) -> None:
        """CIOC dispatch.

        Channel 1: console — transmit the A register.
        Channel 3: calendar clock — load A with the cycle counter's low
        half (the ring-0 ``clock`` gate service exposes this to users).
        """
        channel = word & 0o777
        if channel == 1:
            self.console.append(
                ConsoleRecord(word=proc.registers.a, ring=proc.registers.ipr.ring)
            )
        elif channel == 2:
            self.console_chars.append(chr(proc.registers.a & 0o177))
        elif channel == 3:
            proc.registers.set_a(proc.cycles & ((1 << 18) - 1))
        elif channel == 4:
            # asynchronous console write: the word is latched now, the
            # transfer completes IO_LATENCY instructions later and is
            # announced by an I/O-completion event (paper p. 31 lists
            # I/O completions among the trap sources)
            self._io_in_flight.append(
                ConsoleRecord(word=proc.registers.a, ring=proc.registers.ipr.ring)
            )
            proc.schedule_event(
                IO_LATENCY, FaultCode.IO_COMPLETION, detail="console channel"
            )

    def console_values(self) -> List[int]:
        """The words written to the console so far."""
        return [record.word for record in self.console]

    def console_text(self) -> str:
        """The character stream written via the character channel."""
        return "".join(self.console_chars)

    # ------------------------------------------------------------------
    # trap handling
    # ------------------------------------------------------------------

    def _record_abort(self, fault: Fault) -> None:
        """Log a fault the supervisor refused to handle, keeping only
        the most recent ``ABORT_LOG_LIMIT`` entries."""
        self.aborted_faults.append(fault)
        if len(self.aborted_faults) > ABORT_LOG_LIMIT:
            del self.aborted_faults[: -ABORT_LOG_LIMIT]

    def _make_fault_handler(self, process: Process):
        def handler(proc: Processor, fault: Fault) -> str:
            return self.handle_fault(proc, process, fault)

        return handler

    def handle_fault(
        self, proc: Processor, process: Process, fault: Fault
    ) -> str:
        """Dispatch one trap; returns the handler action."""
        assist = self._assists[id(process)]
        soft = self._soft_rings[id(process)]

        if fault.code is FaultCode.TRAP_UPWARD_CALL:
            return assist.perform_upward_call(proc, fault)

        if assist.matches_downward_return(fault):
            action = assist.perform_downward_return(proc, fault)
            if action == "abort":
                self._record_abort(fault)
            return action

        if soft.handles(fault):
            return soft.perform(proc, fault)

        if fault.code is FaultCode.MISSING_PAGE:
            return self._service_missing_page(proc, fault)

        if fault.code is FaultCode.MISSING_SEGMENT:
            return self._service_missing_segment(proc, process, fault)

        if self.linkage.matches(fault):
            action = self.linkage.snap(proc, fault, self._name_resolver)
            if action == "abort":
                self._record_abort(fault)
            return action

        if fault.code is FaultCode.TIMER:
            return self._service_timer(proc, process, fault)

        if fault.code is FaultCode.IO_COMPLETION:
            if self._io_in_flight:
                self.console.append(self._io_in_flight.pop(0))
            proc.charge(IO_COMPLETION_CYCLES)
            return HANDLER_CONTINUE

        self._record_abort(fault)
        return HANDLER_ABORT

    def _service_missing_segment(
        self, proc: Processor, process: Process, fault: Fault
    ) -> str:
        """Demand initiation: a known-to-the-system segment was touched.

        Link words may point at segments the process has not initiated
        yet; the first reference traps here, the supervisor performs the
        ACL check and builds the SDW, and the instruction is retried —
        the classic segment-fault path.  An ACL mismatch leaves the
        fault unhandled: the reference really is illegal for this user.
        """
        assert fault.segno is not None
        active = self.active_by_segno.get(fault.segno)
        if active is None:
            # a deactivated segment keeps its number reserved; touch it
            # and it transparently comes back from the backing store
            for path, segno in self._reserved_segnos.items():
                if segno == fault.segno:
                    active = self.activate(path)
                    break
        if active is None or fault.segno in process.by_segno:
            self._record_abort(fault)
            return HANDLER_ABORT
        try:
            self.initiate(process, active.path)
        except AccessDenied:
            self._record_abort(fault)
            return HANDLER_ABORT
        proc.charge(SEGMENT_SERVICE_CYCLES)
        proc.invalidate_sdw(fault.segno)
        return HANDLER_RETRY

    def _service_timer(
        self, proc: Processor, process: Process, fault: Fault
    ) -> str:
        """Interval-timer runout: runaway control.

        Each runout is counted against the process.  Within its budget
        the timer is simply re-armed and execution continues (the
        interrupted computation resumes exactly where it stopped); past
        the budget the fault is left unhandled — the runaway program is
        stopped, the utility's other users protected.
        """
        key = id(process)
        self._timer_counts[key] = self._timer_counts.get(key, 0) + 1
        if (
            self.timer_limit is not None
            and self._timer_counts[key] > self.timer_limit
        ):
            self._record_abort(fault)
            return HANDLER_ABORT
        if self.timer_quantum is not None:
            proc.set_timer(self.timer_quantum)
        return HANDLER_CONTINUE

    def timer_runouts(self, process: Process) -> int:
        """How many timer runouts a process has accumulated."""
        return self._timer_counts.get(id(process), 0)

    def _service_missing_page(self, proc: Processor, fault: Fault) -> str:
        """Allocate and map a frame for a missing page, then retry."""
        assert fault.segno is not None and fault.wordno is not None
        active = self.active_by_segno.get(fault.segno)
        if active is None or active.placed.page_table is None:
            self._record_abort(fault)
            return HANDLER_ABORT
        from ..mem.paging import PAGE_BITS, PAGE_WORDS

        table = active.placed.page_table
        page_index = fault.wordno >> PAGE_BITS
        frame = self.memory.allocate(PAGE_WORDS)
        table.map_page(page_index, frame.addr)
        # Page the content back in from the backing store (the image).
        start = page_index << PAGE_BITS
        content = active.image.words[start : start + PAGE_WORDS]
        if content:
            self.memory.load_image(frame.addr, content)
        proc.charge(PAGE_SERVICE_CYCLES)
        proc.invalidate_sdw(fault.segno)
        return HANDLER_RETRY
