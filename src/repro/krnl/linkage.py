"""Dynamic linking: linkage faults and link snapping.

Multics — the system this paper's hardware was built for — resolved
inter-segment references *lazily*: a link word starts out in a faulting
state, the first reference through it traps, the supervisor locates the
target segment (activating it if necessary), patches ("snaps") the link,
and retries the instruction.  Subsequent references pay nothing.

The reproduction models the faulting state with a reserved segment
number: an unresolved link is an indirect word naming
:data:`LINKAGE_FAULT_SEGNO` (the highest encodable segment number, far
above any descriptor bound), with the word-number field carrying a
globally unique link id.  Following such a pointer produces an
``ACV_SEGNO_BOUND`` trap that the supervisor recognises and services.

Lazy linking composes with everything else: the ring fields of link
words are preserved across snapping, demand initiation still applies to
the *target* segment, and a CALL through an unsnapped link simply takes
one extra trap the first time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, TYPE_CHECKING

from ..cpu.faults import Fault, FaultCode
from ..formats.indirect import IndirectWord
from ..mem.segment import LinkRequest
from ..words import SEGNO_MASK

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.processor import Processor
    from .loader import Loader, PlacedSegment

#: The reserved segment number unresolved links point at.
LINKAGE_FAULT_SEGNO = SEGNO_MASK  # 16383, above any realistic bound

#: Supervisor work charged for snapping one link.
LINK_SNAP_CYCLES = 45


@dataclass
class PendingLink:
    """One unsnapped link: where it lives and what it names."""

    link_id: int
    placed: "PlacedSegment"
    self_segno: int
    request: LinkRequest
    snapped: bool = False


class LinkageManager:
    """Owns the link registry and performs lazy placement and snapping."""

    def __init__(self, loader: "Loader"):
        self.loader = loader
        self._pending: Dict[int, PendingLink] = {}
        self._next_id = 0
        self.snaps = 0

    # ------------------------------------------------------------------

    def place_unresolved(
        self, placed: "PlacedSegment", self_segno: int
    ) -> int:
        """Rewrite a placed segment's links into the faulting state.

        ``.ptr`` (self-segment) links are resolved immediately — the
        segment number is already known; only inter-segment ``pointer``
        links are deferred.  Returns the number of links deferred.
        """
        deferred = 0
        for request in placed.image.links:
            if request.field == "segno":
                self.loader.resolve_one(placed, self_segno, request, None)
                continue
            link_id = self._next_id
            self._next_id += 1
            pending = PendingLink(
                link_id=link_id,
                placed=placed,
                self_segno=self_segno,
                request=request,
            )
            self._pending[link_id] = pending
            addr = self.loader.word_addr(placed, request.wordno)
            original = IndirectWord.unpack(self.loader.memory.peek_block(addr, 1)[0])
            faulting = IndirectWord(
                segno=LINKAGE_FAULT_SEGNO,
                wordno=link_id,
                ring=original.ring,
                indirect=False,
            )
            self.loader.memory.load_image(addr, [faulting.pack()])
            placed.image.set_word(request.wordno, faulting.pack())
            deferred += 1
        return deferred

    # ------------------------------------------------------------------

    def matches(self, fault: Fault) -> bool:
        """Is this fault a linkage fault?"""
        return (
            fault.code is FaultCode.ACV_SEGNO_BOUND
            and fault.segno == LINKAGE_FAULT_SEGNO
        )

    def snap(self, proc: "Processor", fault: Fault, resolver) -> str:
        """Service one linkage fault: resolve, patch, retry.

        ``resolver`` maps a segment name to ``(segno, entry table)`` and
        may activate the target on demand (the supervisor supplies the
        same resolver it uses for eager linking).
        """
        from ..errors import LinkError

        link_id = fault.wordno
        pending = self._pending.get(link_id)
        if pending is None or pending.snapped:
            return "abort"
        try:
            self.loader.resolve_one(
                pending.placed, pending.self_segno, pending.request, resolver
            )
        except LinkError:
            # The name does not resolve; the reference stays faulting.
            return "abort"
        pending.snapped = True
        self.snaps += 1
        proc.charge(LINK_SNAP_CYCLES)
        return "retry"

    @property
    def pending_count(self) -> int:
        """Links placed but not yet snapped."""
        return sum(1 for p in self._pending.values() if not p.snapped)

    def has_pending_for(self, placed: "PlacedSegment") -> bool:
        """Does ``placed`` still contain unsnapped links?

        The supervisor refuses to evict such a segment: a later snap
        would patch the freed storage.  (Snapped links are fine — their
        resolution lives in the image and survives eviction.)
        """
        return any(
            p.placed is placed and not p.snapped for p in self._pending.values()
        )
