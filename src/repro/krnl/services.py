"""Standard supervisor gate services.

A small ring-0 service segment, written in the simulated machine's own
assembly and reached through genuine hardware gates — a user program
calling the supervisor really is "identical to a call to a companion
user procedure" (the paper's abstract), which is the whole point.

Gates (words 0..5 of the segment, per the compressed gate-list rule):

=============  ==========================================================
``write``      transmit the A register to the console (privileged CIOC)
``getring``    return the *caller's* ring number in A, read from the
               caller-ring register the CALL instruction maintains
               (paper p. 19); a classic supervisor enquiry
``bump``       add one to the supervisor's call counter (a ring-0 data
               segment) and return the new value in A — demonstrates a
               ring-0 datum user rings can only reach through the gate
``clock``      load A from the calendar clock (the cycle counter)
``writec``     transmit A's low 7 bits as a console character
``awrite``     start an asynchronous console write; the transfer
               completes via an I/O-completion event
=============  ==========================================================

Calling convention (used across all examples and tests): the caller
loads PR4 with the return point (an EAP4 of a local label) and issues
``call`` through a ``.its`` link; the callee returns with
``return pr4|0``.  The gate extension of the service segment's ACL
controls which rings may call (rings above R3 get ACV faults — the
paper's "procedures executing in rings 6 and 7 are not given access to
supervisor gates", p. 35, is reproduced by setting R3 = 5).
"""

from __future__ import annotations

from typing import List, Optional

from ..asm import assemble
from ..core.acl import AclEntry, RingBracketSpec
from ..mem.segment import SegmentImage
from .filesystem import FileSystem
from .users import User

#: Path at which the service segment is stored.
SVC_PATH = ">sys>svc"

#: Counter data segment used by the ``bump`` service.
SVCDATA_PATH = ">sys>svcdata"

#: Source of the ring-0 service segment.
SVC_SOURCE = """
; svc - ring-0 supervisor services, entered only through gates
        .seg    svc
        .gates  6
write::  tra    do_write        ; gate 0
getring:: tra   do_getring      ; gate 1
bump::   tra    do_bump         ; gate 2
clock::  tra    do_clock        ; gate 3
writec:: tra    do_writec       ; gate 4
awrite:: tra    do_awrite       ; gate 5

do_awrite:
        cioc    =4              ; channel 4: asynchronous console write
        return  pr4|0

do_write:
        cioc    =1              ; channel 1: console, transmits A
        return  pr4|0

do_writec:
        cioc    =2              ; channel 2: console character (A low 7)
        return  pr4|0

do_clock:
        cioc    =3              ; channel 3: calendar clock -> A
        return  pr4|0

do_getring:
        ldcr                    ; A := ring of the caller (set by CALL)
        return  pr4|0

do_bump:
        aos     l_counter,*     ; add one to the ring-0 counter
        lda     l_counter,*     ; and return the new value
        return  pr4|0

l_counter: .its  svcdata$counter, 0
"""

#: Source of the ring-0 counter segment.
SVCDATA_SOURCE = """
; svcdata - supervisor-private data; read/write bracket ends at ring 0
        .seg    svcdata
counter:: .word 0
"""

#: Default ACL: everyone may call the gates from rings 1..5.
def default_svc_acl() -> List[AclEntry]:
    """Gate segment ACL: execute bracket [0,0], gates callable to ring 5."""
    return [
        AclEntry(
            "*",
            RingBracketSpec(r1=0, r2=0, r3=5, read=True, execute=True, gate=6),
        )
    ]


def default_svcdata_acl() -> List[AclEntry]:
    """Counter ACL: readable/writable only in ring 0."""
    return [
        AclEntry("*", RingBracketSpec(r1=0, r2=0, r3=0, read=True, write=True))
    ]


def install_services(
    fs: FileSystem,
    owner: User,
    svc_acl: Optional[List[AclEntry]] = None,
) -> SegmentImage:
    """Store the service segments in the file system.

    Returns the assembled service image (useful for listings).
    """
    svc = assemble(SVC_SOURCE, name="svc")
    data = assemble(SVCDATA_SOURCE, name="svcdata")
    fs.create(SVC_PATH, svc, owner=owner, acl=svc_acl or default_svc_acl())
    fs.create(SVCDATA_PATH, data, owner=owner, acl=default_svcdata_acl())
    return svc
