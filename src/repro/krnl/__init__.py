"""The software substrate around the ring hardware.

The paper's hardware is only half the story: segments arrive in a
virtual memory via supervisor software consulting access control lists,
upward calls and downward returns are completed by software, and the
Honeywell-645 comparison point implements *all* ring crossings in
software.  This package provides that world:

* :mod:`repro.krnl.users` — user identities;
* :mod:`repro.krnl.filesystem` — a hierarchical segment store with
  per-segment access control lists;
* :mod:`repro.krnl.process` — per-user processes, each with its own
  descriptor segment, per-ring stack segments, and known-segment table;
* :mod:`repro.krnl.loader` — placing assembled segments into a process's
  virtual memory and resolving inter-segment links;
* :mod:`repro.krnl.callret` — the stacked return gates that complete
  upward calls and downward returns in software (paper pp. 21–22);
* :mod:`repro.krnl.supervisor` — the ring-0 trap handler tying it all
  together;
* :mod:`repro.krnl.baseline645` — the software-rings crossing handler
  that turns the machine into the "before" system of the comparison.
"""

from .users import User, UserRegistry
from .filesystem import FileSystem, SegmentNode
from .process import Process, STACK_SEGMENTS, STACK_SIZE
from .loader import Loader
from .callret import ReturnGateStack, UpwardCallAssist
from .supervisor import Supervisor
from .linkage import LINKAGE_FAULT_SEGNO, LinkageManager
from .scheduler import Job, RoundRobinScheduler, CONTEXT_SWITCH_CYCLES
from .baseline645 import SoftwareRingAssist, SOFT_CROSSING_CYCLES

__all__ = [
    "User",
    "UserRegistry",
    "FileSystem",
    "SegmentNode",
    "Process",
    "STACK_SEGMENTS",
    "STACK_SIZE",
    "Loader",
    "ReturnGateStack",
    "UpwardCallAssist",
    "Supervisor",
    "LinkageManager",
    "LINKAGE_FAULT_SEGNO",
    "Job",
    "RoundRobinScheduler",
    "CONTEXT_SWITCH_CYCLES",
    "SoftwareRingAssist",
    "SOFT_CROSSING_CYCLES",
]
