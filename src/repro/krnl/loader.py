"""Placing segment images into memory and resolving links.

The loader performs the two storage-level halves of making a segment
usable:

* **placement** — allocate physical memory (or a page table plus page
  frames) and copy the image in;
* **link resolution** — patch the ``.its`` / ``.ptr`` indirect words the
  assembler emitted, once the segment numbers of the referenced
  segments are known.

Link resolution deliberately patches only the SEGNO/WORDNO fields of an
indirect word, preserving the RING and further-indirection bits the
programmer wrote: the RING field of a link is a *policy* statement (it
forces validation at that ring or higher) and must survive loading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import LinkError
from ..formats.indirect import IndirectWord
from ..mem.paging import PageTable
from ..mem.physical import Allocation, PhysicalMemory
from ..mem.segment import LinkRequest, SegmentImage

#: Resolver signature: segment name -> (segno, entry table).
NameResolver = Callable[[str], Tuple[int, dict]]


def _resolve_symbol(
    symbol: str, resolver: NameResolver, holder: str, at_wordno: int
) -> Tuple[str, int]:
    """Parse ``name[$entry][±n]`` into ``(name, wordno)``.

    The addend applies to the entry's word number (or to word 0 when no
    entry is named), so ``secrets+3`` and ``audit$read+1`` both work.
    """
    addend = 0
    body = symbol
    for sep in ("+", "-"):
        head, found, tail = symbol.partition(sep)
        if found:
            body = head.strip()
            try:
                addend = int(tail.strip(), 0)
            except ValueError:
                raise LinkError(
                    f"bad link addend in {symbol!r} "
                    f"({holder!r} word {at_wordno})"
                ) from None
            if sep == "-":
                addend = -addend
            break
    name, _, entry = body.partition("$")
    _, entries = resolver(name)
    if entry:
        if entry not in entries:
            raise LinkError(
                f"segment {name!r} exports no entry {entry!r} "
                f"(needed by {holder!r} word {at_wordno})"
            )
        base = entries[entry]
    else:
        base = 0
    return name, base + addend


@dataclass
class PlacedSegment:
    """An image placed in memory, before or after link resolution."""

    image: SegmentImage
    addr: int            #: SDW.ADDR value (segment base or page table)
    bound: int
    paged: bool = False
    allocation: Optional[Allocation] = None
    page_table: Optional[PageTable] = None


class Loader:
    """Places images and resolves their links."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory

    # ------------------------------------------------------------------

    def place(self, image: SegmentImage, paged: bool = False) -> PlacedSegment:
        """Copy an image into freshly allocated storage."""
        if paged:
            table = PageTable.build(self.memory, max(1, image.bound))
            table.load_words(image.words)
            return PlacedSegment(
                image=image,
                addr=table.addr,
                bound=image.bound,
                paged=True,
                page_table=table,
            )
        block = self.memory.allocate(max(1, image.bound))
        self.memory.load_image(block.addr, image.words)
        return PlacedSegment(
            image=image,
            addr=block.addr,
            bound=image.bound,
            allocation=block,
        )

    # ------------------------------------------------------------------

    def word_addr(self, placed: PlacedSegment, wordno: int) -> int:
        """Absolute address of one word of a placed segment."""
        if not placed.paged:
            return placed.addr + wordno
        assert placed.page_table is not None
        # Resolution happens at load time; pages are all present then.
        from ..mem.paging import translate_paged

        return translate_paged(self.memory, placed.addr, wordno)

    def resolve_one(
        self,
        placed: PlacedSegment,
        self_segno: int,
        link: LinkRequest,
        resolver: Optional[NameResolver],
    ) -> None:
        """Patch one link request (eagerly, or when a linkage fault snaps).

        The patched word keeps the assembled RING and chain bits; the
        backing-store image is kept in sync so page-ins cannot resurrect
        an unresolved word (with global segment numbering, resolution is
        one-time).
        """
        addr = self.word_addr(placed, link.wordno)
        word = self.memory.peek_block(addr, 1)[0]
        ind = IndirectWord.unpack(word)

        if link.field == "segno":
            # .ptr: local pointer; only the segment number is patched.
            patched = IndirectWord(
                segno=self_segno,
                wordno=ind.wordno,
                ring=ind.ring,
                indirect=ind.indirect,
            )
        elif link.field == "pointer":
            if resolver is None:
                raise LinkError(
                    f"pointer link {link.symbol!r} needs a name resolver"
                )
            name, wordno = _resolve_symbol(
                link.symbol, resolver, placed.image.name, link.wordno
            )
            segno, _ = resolver(name)
            ring = link.ring if link.ring is not None else ind.ring
            patched = IndirectWord(
                segno=segno,
                wordno=wordno,
                ring=ring,
                indirect=ind.indirect,
            )
        else:
            raise LinkError(
                f"unknown link field {link.field!r} in {placed.image.name!r}"
            )

        self.memory.load_image(addr, [patched.pack()])
        placed.image.set_word(link.wordno, patched.pack())

    def resolve(
        self,
        placed: PlacedSegment,
        self_segno: int,
        resolver: NameResolver,
    ) -> None:
        """Patch every link request of a placed segment (eager linking).

        ``resolver`` maps a segment *name* to its segment number and
        entry table; the supervisor supplies one backed by the active
        segment table (activating referenced segments on demand).
        """
        for link in placed.image.links:
            self.resolve_one(placed, self_segno, link, resolver)
