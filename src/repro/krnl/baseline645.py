"""The Honeywell-645 software-rings baseline.

"Because the Honeywell 645 was designed around the usual
supervisor/user protection method, the version of Multics for this
machine implements rings by trapping to a supervisor procedure when
downward calls and upward returns are performed" (paper p. 18).  This
module is that supervisor procedure.

A processor built with ``hardware_rings=False`` raises
``TRAP_RING_CROSS_CALL`` / ``TRAP_RING_CROSS_RETURN`` whenever a CALL
or RETURN would change the ring; this assist then performs exactly what
the 6180 hardware would have done — after charging the software cost of
getting into and around the supervisor.  Same-ring calls never trap on
either machine, which is precisely the asymmetry the crossing-cost
experiment (C1) measures.

The charged cost models the 645 ring-crossing path: validating the gate
and brackets in software, locating and switching stacks, saving and
restoring the machine state.  It is a deterministic constant so the
benchmark's *shape* (crossing ≫ same-ring on the 645; crossing ≈
same-ring on the new hardware) is reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.gates import decide_call, decide_return
from ..cpu.faults import Fault, FaultCode
from ..cpu.registers import STACK_BASE_PR
from ..cpu.validate import brackets_of
from ..hardening.authstack import RETURN_PTR_PR

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.processor import Processor
    from .process import Process

#: Software work per ring crossing on the 645 model, in cycles, on top
#: of the generic trap overhead.  Chosen to be of the order of the
#: several-hundred-instruction crossing path of the real software
#: implementation, scaled to this simulator's ~2-cycle instructions.
SOFT_CROSSING_CYCLES = 150


class SoftwareRingAssist:
    """Completes ring crossings in software for the 645 baseline."""

    def __init__(self, process: "Process"):
        self.process = process
        self.crossings_handled = 0

    def handles(self, fault: Fault) -> bool:
        """Is this one of the 645 software-ring crossing traps?"""
        return fault.code in (
            FaultCode.TRAP_RING_CROSS_CALL,
            FaultCode.TRAP_RING_CROSS_RETURN,
        )

    def perform(self, proc: "Processor", fault: Fault) -> str:
        """Re-derive the hardware decision and apply it, charging cost."""
        assert fault.segno is not None and fault.wordno is not None
        regs = proc.registers
        sdw = self.process.dseg.get(fault.segno)
        self.crossings_handled += 1
        proc.charge(SOFT_CROSSING_CYCLES)

        if fault.code is FaultCode.TRAP_RING_CROSS_CALL:
            decision = decide_call(
                eff_ring=fault.ring,
                cur_ring=fault.cur_ring,
                brackets=brackets_of(sdw),
                execute_flag=sdw.execute,
                wordno=fault.wordno,
                gate_count=sdw.gate,
                same_segment=fault.segno == fault.at_segno,
            )
            if not decision.proceeds or decision.new_ring is None:
                return "abort"
            old_ring = fault.cur_ring
            assert old_ring is not None
            auth = proc.auth_stack
            if auth is not None and decision.new_ring != old_ring:
                # The 645-path push site: with hardware rings the push
                # happens inside op_call's performance half, which this
                # profile never reaches.  The matching verification
                # runs in op_return *before* the crossing trap, so no
                # pop is needed here on the RETURN branch.
                proc.charge(proc.cost.auth_mac_cycles)
                rp = regs.pr(RETURN_PTR_PR)
                auth.push(old_ring, rp.segno, rp.wordno)
            stack_segno = proc.stack_segno_for_call(decision.new_ring, old_ring)
            regs.pr(STACK_BASE_PR).load(stack_segno, 0, decision.new_ring)
            regs.crr = old_ring
            regs.ipr.set(decision.new_ring, fault.segno, fault.wordno)
            return "continue"

        decision = decide_return(
            eff_ring=fault.ring,
            cur_ring=fault.cur_ring,
            brackets=brackets_of(sdw),
            execute_flag=sdw.execute,
        )
        if not decision.proceeds or decision.new_ring is None:
            return "abort"
        if decision.new_ring > regs.ipr.ring:
            regs.raise_pr_rings(decision.new_ring)
        regs.ipr.set(decision.new_ring, fault.segno, fault.wordno)
        return "continue"
