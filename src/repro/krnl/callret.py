"""Software completion of upward calls and downward returns.

The hardware refuses to perform upward calls and downward returns
(paper pp. 20–22): argument passing cannot rely on the nested-subset
property, and the downward return needs a *gate that exists only for
the duration of the call* — "this gate must behave as though it were
stored in a push-down stack".  The paper assigns both to software; this
module is that software.

The mechanism:

* On an **upward-call trap** the supervisor saves the caller's pointer
  registers and return point, substitutes the callee's return pointer
  (PR4 by convention) with a pointer into a per-process *return-gate
  segment* — a segment that is deliberately not executable — raises the
  PR rings to the new ring (maintaining the ``PRn.RING >= IPR.RING``
  invariant), builds the new ring's stack-base pointer in PR0, and
  transfers to the target in its execute-bracket-bottom ring.
* When the callee eventually executes RETURN through that pointer, the
  advance check of Figure 9 faults (the return-gate segment is not
  executable).  The supervisor recognises the faulting address as the
  *top* of the return-gate stack — any other slot is a protection
  violation, which is exactly the stacked-gate discipline the paper
  asks for — pops it, verifies and restores the caller's saved
  environment, and resumes the caller in its original ring.

Arguments: the assist implements the paper's first listed solution —
the caller must pass arguments accessible from the called (higher)
ring; nothing is copied.  The paper's discussion of why no solution is
hardware-friendly is DESIGN.md material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from ..cpu.faults import Fault, FaultCode
from ..cpu.registers import PointerRegister, STACK_BASE_PR
from ..errors import ConfigurationError
from ..formats.sdw import SDW

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.processor import Processor
    from .process import Process

#: The PR software convention designates for the return pointer.
RETURN_PTR_PR = 4

#: Maximum nesting of upward calls per process.
MAX_UPWARD_DEPTH = 32

#: Handler work charged for completing an upward call in software.
UPWARD_CALL_CYCLES = 60

#: Handler work charged for completing a downward return in software.
DOWNWARD_RETURN_CYCLES = 50


@dataclass
class ReturnGateRecord:
    """Everything needed to undo one upward call."""

    slot: int
    caller_ring: int
    callee_ring: int
    return_segno: int
    return_wordno: int
    saved_prs: List[PointerRegister]


class ReturnGateStack:
    """The per-process push-down stack of active return gates."""

    def __init__(self) -> None:
        self._records: List[ReturnGateRecord] = []

    def push(self, record: ReturnGateRecord) -> None:
        """Stack a new return gate (one per live upward call)."""
        if len(self._records) >= MAX_UPWARD_DEPTH:
            raise ConfigurationError("upward-call nesting too deep")
        self._records.append(record)

    def top(self) -> Optional[ReturnGateRecord]:
        """The only usable gate — returns through any other are refused."""
        return self._records[-1] if self._records else None

    def pop(self) -> ReturnGateRecord:
        """Consume the top gate as its downward return completes."""
        return self._records.pop()

    @property
    def depth(self) -> int:
        return len(self._records)


class UpwardCallAssist:
    """The supervisor's upward-call / downward-return machinery.

    One instance serves one process; the return-gate segment is created
    lazily in that process's virtual memory at the supplied segment
    number.
    """

    def __init__(self, process: "Process", gate_segno: int):
        self.process = process
        self.gate_segno = gate_segno
        self.stack = ReturnGateStack()
        self._installed = False

    def _ensure_gate_segment(self) -> None:
        """Create the non-executable return-gate segment on first use."""
        if self._installed:
            return
        block = self.process.memory.allocate(MAX_UPWARD_DEPTH)
        sdw = SDW(
            addr=block.addr,
            bound=MAX_UPWARD_DEPTH,
            r1=0,
            r2=0,
            r3=0,
            read=False,
            write=False,
            execute=False,
        )
        self.process.dseg.set(self.gate_segno, sdw)
        self._installed = True

    # ------------------------------------------------------------------

    def perform_upward_call(self, proc: "Processor", fault: Fault) -> str:
        """Complete an upward call the hardware trapped on.

        Returns the handler action (always ``"continue"``: the registers
        are rewritten to resume at the call target).
        """
        assert fault.code is FaultCode.TRAP_UPWARD_CALL
        assert fault.segno is not None and fault.wordno is not None
        self._ensure_gate_segment()

        sdw = self.process.dseg.get(fault.segno)
        callee_ring = sdw.r1  # the execute-bracket bottom (paper p. 20)
        caller_ring = fault.cur_ring
        assert caller_ring is not None and caller_ring < callee_ring

        regs = proc.registers
        return_ptr = regs.pr(RETURN_PTR_PR)
        record = ReturnGateRecord(
            slot=self.stack.depth,
            caller_ring=caller_ring,
            callee_ring=callee_ring,
            return_segno=return_ptr.segno,
            return_wordno=return_ptr.wordno,
            saved_prs=[pr.copy() for pr in regs.prs],
        )
        self.stack.push(record)

        # The callee's return pointer now names the dynamic return gate.
        regs.pr(RETURN_PTR_PR).load(self.gate_segno, record.slot, callee_ring)
        # Entering a higher ring: no PR may keep a ring below it.
        for n, pr in enumerate(regs.prs):
            if n != RETURN_PTR_PR:
                pr.raise_ring(callee_ring)
        # Build the new ring's stack base and record the caller's ring,
        # as hardware CALL would.
        stack_segno = proc.stack_segno_for_call(callee_ring, caller_ring)
        regs.pr(STACK_BASE_PR).load(stack_segno, 0, callee_ring)
        regs.crr = caller_ring

        regs.ipr.set(callee_ring, fault.segno, fault.wordno)
        proc.charge(UPWARD_CALL_CYCLES)
        return "continue"

    # ------------------------------------------------------------------

    def matches_downward_return(self, fault: Fault) -> bool:
        """Is this fault a RETURN through our return-gate segment?"""
        return (
            self._installed
            and fault.segno == self.gate_segno
            and fault.code is FaultCode.ACV_NO_EXECUTE
            and fault.detail == "RETURN"
        )

    def perform_downward_return(self, proc: "Processor", fault: Fault) -> str:
        """Complete a downward return through the stacked gate.

        Only the top gate of the stack is usable; a RETURN naming any
        other slot is treated as the protection violation it is.
        """
        record = self.stack.top()
        if record is None or fault.wordno != record.slot:
            return "abort"
        self.stack.pop()

        regs = proc.registers
        # Restore the caller's environment: the paper requires the
        # intervening software to verify the restored stack pointer; we
        # restore the caller's entire pointer-register file, which
        # subsumes that verification.
        for pr, saved in zip(regs.prs, record.saved_prs):
            pr.load(saved.segno, saved.wordno, saved.ring)
        regs.ipr.set(
            record.caller_ring, record.return_segno, record.return_wordno
        )
        proc.charge(DOWNWARD_RETURN_CYCLES)
        return "continue"
