"""A hierarchical segment store with per-segment access control lists.

"On-line storage is organized as a collection of segments of
information ... the users that are permitted to access each segment are
named by an access control list associated with each segment"
(paper p. 8).  Paths are Multics-style, ``>`` separated::

    >sys>svc            a supervisor gate segment
    >udd>alice>audit    user alice's audit subsystem

Each leaf holds a :class:`repro.mem.segment.SegmentImage` plus its ACL.
The supervisor's *initiate* operation matches the requesting process's
user against the ACL and projects the matching entry onto the SDW —
this module performs the match; SDW construction happens in
:mod:`repro.krnl.process`.

The *sole occupant* rule (paper p. 37) is enforced on every ACL
mutation: a caller executing in ring ``n`` cannot grant brackets below
``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.acl import AclEntry, RingBracketSpec
from ..errors import AccessDenied, FileSystemError
from ..mem.segment import SegmentImage
from .users import User


def split_path(path: str) -> List[str]:
    """Split and validate a ``>``-separated absolute path."""
    if not path.startswith(">"):
        raise FileSystemError(f"path {path!r} must be absolute (start with '>')")
    parts = [part for part in path.split(">") if part]
    if not parts:
        raise FileSystemError("the root itself is not a segment")
    for part in parts:
        if "$" in part:
            raise FileSystemError(f"bad path component {part!r}")
    return parts


@dataclass
class SegmentNode:
    """One stored segment: its image, its ACL, and who owns it."""

    path: str
    image: SegmentImage
    owner: User
    acl: List[AclEntry] = field(default_factory=list)

    def match(self, username: str) -> Optional[AclEntry]:
        """First ACL entry applying to ``username`` (order is priority)."""
        for entry in self.acl:
            if entry.matches(username):
                return entry
        return None


class FileSystem:
    """The directory tree.  Directories are implicit (created on demand)."""

    def __init__(self) -> None:
        self._segments: Dict[Tuple[str, ...], SegmentNode] = {}

    # ------------------------------------------------------------------
    # creation and lookup
    # ------------------------------------------------------------------

    def create(
        self,
        path: str,
        image: SegmentImage,
        owner: User,
        acl: Optional[List[AclEntry]] = None,
    ) -> SegmentNode:
        """Store a segment at ``path`` with an initial ACL.

        With no ACL given, the owner receives read/write access with
        brackets wide open to their own use (a conservative default the
        caller normally overrides).
        """
        key = tuple(split_path(path))
        if key in self._segments:
            raise FileSystemError(f"segment {path!r} already exists")
        node = SegmentNode(path=path, image=image, owner=owner, acl=list(acl or []))
        if not node.acl:
            node.acl.append(
                AclEntry(
                    owner.name,
                    RingBracketSpec(r1=7, r2=7, r3=7, read=True, write=True),
                )
            )
        self._segments[key] = node
        return node

    def get(self, path: str) -> SegmentNode:
        """Look a segment up by absolute path."""
        key = tuple(split_path(path))
        try:
            return self._segments[key]
        except KeyError:
            raise FileSystemError(f"no segment {path!r}") from None

    def exists(self, path: str) -> bool:
        """True when ``path`` names a stored segment."""
        return tuple(split_path(path)) in self._segments

    def delete(self, path: str, requester: User) -> None:
        """Remove a segment; only its owner (or an administrator) may."""
        node = self.get(path)
        if node.owner != requester and not requester.administrator:
            raise AccessDenied(
                f"{requester.name} is not the owner of {path!r}"
            )
        del self._segments[tuple(split_path(path))]

    def list_dir(self, prefix: str) -> Iterator[str]:
        """Iterate paths under ``prefix`` (">" lists everything)."""
        want = tuple(part for part in prefix.split(">") if part)
        for key in sorted(self._segments):
            if key[: len(want)] == want:
                yield ">" + ">".join(key)

    # ------------------------------------------------------------------
    # access control
    # ------------------------------------------------------------------

    def check_access(self, path: str, user: User) -> AclEntry:
        """The initiate-time ACL check (paper p. 8).

        Raises :class:`repro.errors.AccessDenied` when no entry matches —
        the segment then simply cannot enter the process's virtual
        memory.
        """
        node = self.get(path)
        entry = node.match(user.name)
        if entry is None:
            raise AccessDenied(
                f"user {user.name!r} matches no ACL entry of {path!r}"
            )
        return entry

    def set_acl(
        self,
        path: str,
        requester: User,
        entries: List[AclEntry],
        requester_ring: int = 0,
    ) -> None:
        """Replace a segment's ACL.

        Only the owner or an administrator may change an ACL, and the
        sole-occupant rule applies: a requester whose process executes
        in ring ``n`` cannot specify brackets below ``n``.
        """
        node = self.get(path)
        if node.owner != requester and not requester.administrator:
            raise AccessDenied(
                f"{requester.name} may not change the ACL of {path!r}"
            )
        for entry in entries:
            entry.spec.check_settable_from(requester_ring)
        node.acl = list(entries)

    def add_acl_entry(
        self,
        path: str,
        requester: User,
        entry: AclEntry,
        requester_ring: int = 0,
    ) -> None:
        """Prepend one ACL entry (earlier entries take priority)."""
        node = self.get(path)
        if node.owner != requester and not requester.administrator:
            raise AccessDenied(
                f"{requester.name} may not change the ACL of {path!r}"
            )
        entry.spec.check_settable_from(requester_ring)
        node.acl.insert(0, entry)
