"""Processes and their virtual memories.

Each process owns a descriptor segment (hence a complete virtual
memory), the eight per-ring stack segments, and a known-segment table
mapping names to segment numbers.

Layout decisions, and where they come from:

* **Segment numbers 0–7 are the stack segments for rings 0–7** — the
  body-text stack selection rule ("the segment number of the
  appropriate stack segment is the same as the new ring number",
  p. 30).  The DBR's ``stack`` field defaults to 0 so the refined
  footnote rule coincides; the ablation benchmark moves it.
* **The stack segment for ring n has read and write brackets ending at
  ring n** (p. 17): ``R1 = R2 = R3 = n``, read and write on, execute
  off — so no higher ring can see or touch a lower ring's stack.
* **Word 0 of each stack segment points to the next available stack
  area** (p. 19): it is initialised to 1 (the first free word after the
  pointer itself) at process creation.
* **Shared segments occupy the same segment number in every process.**
  Real Multics lets each process pick its own numbers and pays for it
  with per-process linkage sections; global numbering is a documented
  simplification (see DESIGN.md) that preserves every ring-mechanism
  behaviour while letting one resolved segment image be shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..formats.sdw import SDW
from ..core.acl import RingBracketSpec, build_sdw
from ..mem.descriptor import DBR, DescriptorSegment
from ..mem.physical import PhysicalMemory
from ..words import MAX_RINGS
from .users import User

#: Number of per-ring stack segments (segment numbers 0..7).
STACK_SEGMENTS = MAX_RINGS

#: Words per stack segment.
STACK_SIZE = 256

#: First segment number available for non-stack segments.
FIRST_FREE_SEGNO = STACK_SEGMENTS


@dataclass
class KnownSegment:
    """One entry of a process's known-segment table."""

    name: str
    segno: int
    path: Optional[str] = None
    entries: Dict[str, int] = field(default_factory=dict)
    gate_count: int = 0


class Process:
    """One user's process: a virtual memory plus bookkeeping."""

    def __init__(
        self,
        user: User,
        memory: PhysicalMemory,
        dseg: DescriptorSegment,
        dbr: DBR,
    ):
        self.user = user
        self.memory = memory
        self.dseg = dseg
        self.dbr = dbr
        self.known: Dict[str, KnownSegment] = {}
        self.by_segno: Dict[int, KnownSegment] = {}

    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        memory: PhysicalMemory,
        user: User,
        descriptor_bound: int = 128,
        stack_base_segno: int = 0,
        stack_size: int = STACK_SIZE,
    ) -> "Process":
        """Build a fresh process: descriptor segment plus ring stacks.

        ``stack_base_segno`` places the eight stacks at segment numbers
        ``base .. base+7`` and is stored in ``DBR.STACK`` so the
        hardware's refined stack-selection rule finds them; 0 reproduces
        the simple rule.
        """
        if descriptor_bound < stack_base_segno + STACK_SEGMENTS:
            raise ConfigurationError(
                "descriptor bound too small for the stack segments"
            )
        dseg, dbr = DescriptorSegment.allocate(
            memory, bound=descriptor_bound, stack=stack_base_segno
        )
        process = cls(user=user, memory=memory, dseg=dseg, dbr=dbr)
        for ring in range(STACK_SEGMENTS):
            process._install_stack(stack_base_segno + ring, ring, stack_size)
        return process

    def _install_stack(self, segno: int, ring: int, stack_size: int) -> None:
        block = self.memory.allocate(stack_size)
        # Word 0 holds the word number of the next available stack area.
        self.memory.load_image(block.addr, [1] + [0] * (stack_size - 1))
        sdw = SDW(
            addr=block.addr,
            bound=stack_size,
            r1=ring,
            r2=ring,
            r3=ring,
            read=True,
            write=True,
            execute=False,
        )
        self.dseg.set(segno, sdw)
        known = KnownSegment(name=f"stack_{ring}", segno=segno)
        self.known[known.name] = known
        self.by_segno[segno] = known

    # ------------------------------------------------------------------
    # known-segment table
    # ------------------------------------------------------------------

    def stack_segno(self, ring: int) -> int:
        """Segment number of the stack for ``ring``."""
        return self.dbr.stack_segno(ring)

    def segno_of(self, name: str) -> int:
        """Look a segment number up by name."""
        try:
            return self.known[name].segno
        except KeyError:
            raise ConfigurationError(
                f"segment {name!r} is not known to {self.user.name}'s process"
            ) from None

    def entry_of(self, ref: str) -> "tuple[int, int]":
        """Resolve ``name$entry`` (or ``name``) to ``(segno, wordno)``."""
        name, _, entry = ref.partition("$")
        known = self.known.get(name)
        if known is None:
            raise ConfigurationError(
                f"segment {name!r} is not known to {self.user.name}'s process"
            )
        if not entry:
            return known.segno, 0
        if entry not in known.entries:
            raise ConfigurationError(
                f"segment {name!r} has no entry {entry!r} "
                f"(has {sorted(known.entries)})"
            )
        return known.segno, known.entries[entry]

    def make_known(
        self,
        name: str,
        segno: int,
        sdw: SDW,
        entries: Optional[Dict[str, int]] = None,
        path: Optional[str] = None,
        gate_count: int = 0,
    ) -> KnownSegment:
        """Install an SDW and record the segment in the known table."""
        if name in self.known:
            raise ConfigurationError(f"segment name {name!r} already known")
        self.dseg.set(segno, sdw)
        known = KnownSegment(
            name=name,
            segno=segno,
            path=path,
            entries=dict(entries or {}),
            gate_count=gate_count,
        )
        self.known[name] = known
        self.by_segno[segno] = known
        return known

    def install_data(
        self,
        name: str,
        segno: int,
        spec: RingBracketSpec,
        size: int,
        values: Optional[list] = None,
    ) -> KnownSegment:
        """Create a private data segment directly (no file system).

        A convenience for tests and benchmarks; real user data normally
        arrives via the file system and the supervisor's initiate.
        """
        block = self.memory.allocate(size)
        if values:
            self.memory.load_image(block.addr, list(values[:size]))
        sdw = build_sdw(spec, addr=block.addr, bound=size)
        return self.make_known(name, segno, sdw)
