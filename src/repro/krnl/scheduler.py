"""Processor multiplexing.

"Changing the absolute address in the DBR of a processor will cause the
address translation logic to interpret two-part addresses relative to a
different descriptor segment.  This facility can be used to provide each
user of the system with a separate virtual memory" (paper p. 7) — and,
with one processor and many processes, to time-share it.

The scheduler is a deliberately simple round-robin: each job runs for a
quantum of instructions, its registers are saved, the DBR is switched
(flushing the SDW associative memory, as LDBR does), and the next job's
registers are restored.  Processor multiplexing is a ring-0 supervisor
function in the paper's layering (p. 34); here it lives beside the other
supervisor machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cpu.processor import Processor
from ..cpu.registers import RegisterFile
from ..errors import ConfigurationError, MachineHalted
from .process import Process
from .supervisor import Supervisor

#: Cycles charged per context switch (state save + DBR load + restore).
CONTEXT_SWITCH_CYCLES = 20


@dataclass
class Job:
    """One schedulable computation: a process plus its saved registers."""

    process: Process
    ref: str
    ring: int
    saved: Optional[RegisterFile] = None
    started: bool = False
    halted: bool = False
    instructions: int = 0
    quanta: int = 0
    #: simulated cycles consumed by this job (the paper's "accounting",
    #: a ring-1 supervisor function, p. 35)
    cycles: int = 0


class RoundRobinScheduler:
    """Multiplex one processor over many processes."""

    def __init__(
        self,
        processor: Processor,
        supervisor: Supervisor,
        quantum: int = 50,
    ):
        if quantum <= 0:
            raise ConfigurationError(f"quantum must be positive, got {quantum}")
        self.processor = processor
        self.supervisor = supervisor
        self.quantum = quantum
        self.jobs: List[Job] = []
        self.context_switches = 0

    def add(self, process: Process, ref: str, ring: int = 4) -> Job:
        """Enqueue a computation (``ref`` is ``segment$entry``)."""
        job = Job(process=process, ref=ref, ring=ring)
        self.jobs.append(job)
        return job

    # ------------------------------------------------------------------

    def _dispatch(self, job: Job) -> None:
        """Switch the processor to ``job``: DBR, trap handling, registers."""
        self.supervisor.attach(self.processor, job.process)
        self.processor.charge(CONTEXT_SWITCH_CYCLES)
        self.context_switches += 1
        if job.saved is not None:
            self.processor.registers.restore(job.saved)
            return
        # first dispatch: build the initial register state
        job.started = True
        segno, wordno = job.process.entry_of(job.ref)
        regs = self.processor.registers
        stack_segno = job.process.stack_segno(job.ring)
        for pr in regs.prs:
            pr.load(stack_segno, 0, job.ring)
        regs.crr = job.ring
        regs.set_a(0)
        regs.set_q(0)
        regs.ipr.set(job.ring, segno, wordno)

    def _preempt(self, job: Job) -> None:
        """Save the running job's state for its next quantum."""
        job.saved = self.processor.registers.snapshot()

    def run(self, max_quanta: int = 10_000) -> int:
        """Run every job to completion; returns total instructions.

        Unhandled faults in one job propagate to the caller — a crashed
        job is a crashed run, as with :meth:`Machine.run` (callers who
        want crash isolation run each job under its own try/except).
        """
        total = 0
        for _ in range(max_quanta):
            runnable = [job for job in self.jobs if not job.halted]
            if not runnable:
                return total
            for job in runnable:
                self._dispatch(job)
                job.quanta += 1
                cycles_before = self.processor.cycles
                executed = 0
                while executed < self.quantum:
                    try:
                        self.processor.step()
                    except MachineHalted:
                        job.halted = True
                        break
                    executed += 1
                job.instructions += executed
                job.cycles += self.processor.cycles - cycles_before
                total += executed
                if not job.halted:
                    self._preempt(job)
        raise ConfigurationError(
            f"jobs did not finish within {max_quanta} quanta"
        )

    @property
    def all_halted(self) -> bool:
        """True when every job has run to completion."""
        return all(job.halted for job in self.jobs)
