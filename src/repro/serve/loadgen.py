"""Load generator for the ring gateway.

Opens many concurrent sessions against a running gateway, drives a
burst of gate calls through each, honours backpressure (a rejection's
``retry_after`` is slept, then the call is retried up to
``max_retries`` times), and reports client-side figures next to the
gateway's own ``stats`` so the two can be cross-checked:

* every request must terminate in exactly one of OK / rejected-and-
  retried-to-OK / timed out / errored — nothing silently dropped;
* the gateway's merged architectural counters must equal the sum of the
  per-worker snapshots it reports (``consistent``), and the sum of the
  per-call metrics this client saw must match the merged figures.

``run_load`` is the library entry point (the benchmark uses it
in-process); ``repro loadgen`` wraps it on the CLI.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .protocol import ErrorCode, MAX_LINE_BYTES, decode_line, encode


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, round(fraction * len(ordered) + 0.5)))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """What one load-generation run observed, client side."""

    sessions: int
    calls_per_session: int
    sent: int = 0
    ok: int = 0
    rejected: int = 0  # rejections seen (each is retried)
    retries_exhausted: int = 0
    timed_out: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    #: session-mode split: calls the serving pool ran against a cold
    #: (just created or just hydrated) machine vs a warm live slot
    cold_calls: int = 0
    warm_calls: int = 0
    hydrated: int = 0
    created: int = 0
    prefetch_hits: int = 0
    cold_latencies_ms: List[float] = field(default_factory=list)
    warm_latencies_ms: List[float] = field(default_factory=list)
    #: client-side sum of the per-call architectural metrics
    client_metrics: Dict[str, int] = field(default_factory=dict)
    #: the first few non-retryable error responses, for diagnosis
    error_details: List[Dict[str, Any]] = field(default_factory=list)
    #: the gateway's (or router's) final ``stats`` response
    stats: Optional[Dict[str, Any]] = None
    #: adversarial mode: the fault-code name every call is REQUIRED to
    #: come back with (``None`` = normal load, faults are errors)
    expect_fault: Optional[str] = None
    #: adversarial mode: machine_fault responses carrying the expected
    #: code — the *success* count of an attack run
    expected_faults: int = 0
    #: adversarial mode: calls that came back OK (the attack "won") —
    #: any non-zero value is a protection failure
    unexpected_ok: int = 0
    #: machine profile the gateway is REQUIRED to be serving with
    #: (``None`` = don't check)
    expect_profile: Optional[str] = None
    #: hardening flags the gateway is REQUIRED to be serving with, in
    #: any order (``None`` = don't check; ``()`` = require none)
    expect_hardening: Optional[Sequence[str]] = None

    @property
    def throughput(self) -> float:
        """Completed-OK calls per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.ok / self.elapsed_seconds

    @property
    def dropped(self) -> int:
        """Requests that ended without an OK and without an explicit,
        honoured rejection: timeouts, errors, exhausted retries."""
        return self.timed_out + self.errors + self.retries_exhausted

    def percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile in milliseconds (0 if empty)."""
        return percentile(self.latencies_ms, fraction)

    def check(self) -> List[str]:
        """Self-consistency violations (empty list == all good)."""
        problems: List[str] = []
        if self.expect_fault is not None:
            if self.unexpected_ok:
                problems.append(
                    f"{self.unexpected_ok} attack call(s) SUCCEEDED — "
                    f"expected every call to fault with {self.expect_fault}"
                )
            if self.errors:
                problems.append(
                    f"{self.errors} call(s) failed with something other "
                    f"than the expected {self.expect_fault} fault"
                )
        if self.dropped:
            problems.append(
                f"{self.dropped} dropped request(s): "
                f"{self.timed_out} timed out, {self.errors} errored, "
                f"{self.retries_exhausted} exhausted retries"
            )
        if self.stats is None:
            problems.append("no final stats response")
            return problems
        if not self.stats.get("consistent"):
            problems.append(
                "gateway reports merged != sum of per-worker snapshots"
            )
        if self.expect_profile is not None:
            served = self.stats.get("workers", {}).get("machine_profile")
            if served != self.expect_profile:
                problems.append(
                    f"gateway serves machine profile {served!r}, "
                    f"expected {self.expect_profile!r}"
                )
        if self.expect_hardening is not None:
            served_flags = self.stats.get("workers", {}).get("hardening")
            if sorted(served_flags or []) != sorted(self.expect_hardening):
                problems.append(
                    f"gateway serves hardening {served_flags!r}, "
                    f"expected {sorted(self.expect_hardening)!r}"
                )
        routed = "router" in self.stats
        if routed:
            # Router payload: no single "gateway" block — completed is
            # summed over the backends, and the router's own per-call
            # growth accounting must agree with every backend.
            completed = sum(
                entry.get("completed", 0)
                for entry in self.stats.get("per_gateway", {}).values()
            )
            if not self.stats.get("router_consistent"):
                problems.append(
                    "router per-call sums disagree with backend counters"
                )
        else:
            completed = self.stats.get("gateway", {}).get("completed", -1)
        if completed < self.ok:
            problems.append(
                f"gateway completed {completed} < client OK count {self.ok}"
            )
        # Only meaningful when this client was the gateway's sole
        # traffic, nothing timed out (timed-out calls are counted
        # server side but invisible here), and no worker crashed: a
        # call answered from a recovered worker's journal reaches this
        # client but is part of the replayed history the gateway's
        # baselines absorb, so the two sums legitimately differ.
        gateway = self.stats.get("gateway", {})
        crash_free = not gateway.get("recoveries", 0)
        gateway_arch = self.stats.get("architectural", {})
        if (
            not routed
            and not self.dropped
            and crash_free
            and self.client_metrics
            and gateway_arch != self.client_metrics
        ):
            problems.append(
                "client-side metric sums disagree with the gateway's "
                "merged architectural counters"
            )
        return problems

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable report, as written by ``repro loadgen --json``."""
        return {
            "sessions": self.sessions,
            "calls_per_session": self.calls_per_session,
            "sent": self.sent,
            "ok": self.ok,
            "rejected": self.rejected,
            "retries_exhausted": self.retries_exhausted,
            "timed_out": self.timed_out,
            "errors": self.errors,
            "dropped": self.dropped,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "throughput_calls_per_second": round(self.throughput, 1),
            "latency_mean_ms": round(
                sum(self.latencies_ms) / len(self.latencies_ms), 3
            )
            if self.latencies_ms
            else 0.0,
            "latency_p50_ms": round(self.percentile(0.50), 3),
            "latency_p95_ms": round(self.percentile(0.95), 3),
            "latency_p99_ms": round(self.percentile(0.99), 3),
            "cold_calls": self.cold_calls,
            "warm_calls": self.warm_calls,
            "hydrated": self.hydrated,
            "created": self.created,
            "prefetch_hits": self.prefetch_hits,
            "cold_latency_p99_ms": round(
                percentile(self.cold_latencies_ms, 0.99), 3
            ),
            "warm_latency_p50_ms": round(
                percentile(self.warm_latencies_ms, 0.50), 3
            ),
            "expect_fault": self.expect_fault,
            "expected_faults": self.expected_faults,
            "unexpected_ok": self.unexpected_ok,
            "expect_hardening": (
                None
                if self.expect_hardening is None
                else sorted(self.expect_hardening)
            ),
            "client_metrics": dict(self.client_metrics),
            "error_details": list(self.error_details),
            "stats": self.stats,
            "problems": self.check(),
        }


class _Connection:
    """One JSON-lines client connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "_Connection":
        reader, writer = await asyncio.open_connection(
            host, port, limit=2 * MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.writer.write(encode(message))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("gateway closed the connection")
        return decode_line(line.strip())

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _merge_counts(total: Dict[str, int], delta: Dict[str, int]) -> None:
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value


async def _drive_session(
    host: str,
    port: int,
    user: str,
    ring: int,
    calls: int,
    program: str,
    args: Dict[str, Any],
    max_retries: int,
    report: LoadReport,
    expect_fault: Optional[str] = None,
) -> None:
    conn = await _Connection.open(host, port)
    try:
        hello = await conn.request({"verb": "hello", "user": user, "ring": ring})
        if not hello.get("ok"):
            raise ConfigurationError(f"hello rejected: {hello}")
        for seq in range(calls):
            message = {
                "verb": "call",
                "id": seq,
                "program": program,
                "args": args,
            }
            attempts = 0
            started = time.perf_counter()
            # All sessions share one event loop, and none of the
            # report mutations below spans an await: plain writes are
            # race-free.
            while True:
                report.sent += 1
                response = await conn.request(message)
                if response.get("ok"):
                    report.ok += 1
                    if expect_fault is not None:
                        report.unexpected_ok += 1
                    latency_ms = (time.perf_counter() - started) * 1e3
                    report.latencies_ms.append(latency_ms)
                    _merge_counts(report.client_metrics, response["metrics"])
                    session_info = response.get("session")
                    if session_info and not response.get("deduplicated"):
                        if session_info.get("cold"):
                            report.cold_calls += 1
                            report.cold_latencies_ms.append(latency_ms)
                        else:
                            report.warm_calls += 1
                            report.warm_latencies_ms.append(latency_ms)
                        admitted = session_info.get("admitted")
                        if admitted == "hydrated":
                            report.hydrated += 1
                        elif admitted == "created":
                            report.created += 1
                        if session_info.get("prefetch_hit"):
                            report.prefetch_hits += 1
                    break
                code = response.get("error")
                if code in ErrorCode.RETRYABLE:
                    report.rejected += 1
                    attempts += 1
                    if attempts > max_retries:
                        report.retries_exhausted += 1
                        break
                    await asyncio.sleep(
                        max(0.001, float(response.get("retry_after", 0.01)))
                    )
                    continue
                if (
                    expect_fault is not None
                    and code == ErrorCode.MACHINE_FAULT
                    and str(response.get("detail", "")).startswith(
                        expect_fault
                    )
                ):
                    # the attack was caught with exactly the fault the
                    # oracle demands: that IS the success path here
                    report.expected_faults += 1
                    report.latencies_ms.append(
                        (time.perf_counter() - started) * 1e3
                    )
                    break
                if code == ErrorCode.TIMEOUT:
                    report.timed_out += 1
                else:
                    report.errors += 1
                if len(report.error_details) < 8:
                    report.error_details.append(
                        {"user": user, "call": seq, "response": response}
                    )
                break
        await conn.request({"verb": "bye"})
    finally:
        await conn.close()


async def run_load(
    host: str,
    port: int,
    sessions: int = 8,
    calls: int = 50,
    program: str = "call_loop",
    args: Optional[Dict[str, Any]] = None,
    rings: Sequence[int] = (4,),
    user_prefix: str = "load",
    user_offset: int = 0,
    max_retries: int = 50,
    fetch_stats: bool = True,
    concurrency: Optional[int] = None,
    expect_fault: Optional[str] = None,
    expect_profile: Optional[str] = None,
    expect_hardening: Optional[Sequence[str]] = None,
) -> LoadReport:
    """Drive ``sessions`` concurrent sessions of ``calls`` calls each.

    Session ``i`` authenticates as ``{user_prefix}{user_offset + i}``
    bound to ``rings[i % len(rings)]`` — pass several rings for
    mixed-ring traffic, or an offset to address a different slice of
    an established user population.  ``concurrency`` caps how many sessions are in flight at
    once (default: all of them) so very large user populations can be
    streamed through a bounded connection pool.  Returns the
    consolidated :class:`LoadReport`; call :meth:`LoadReport.check`
    for the self-consistency verdict.

    ``expect_fault`` flips the run into adversarial mode: every call is
    *required* to come back as a ``machine_fault`` whose detail starts
    with that fault-code name — matching faults count as
    ``expected_faults``, an OK response is a protection failure.
    ``expect_profile`` asserts the gateway's worker machine profile
    (``ringed`` / ``baseline645``) in the final stats;
    ``expect_hardening`` likewise asserts the exact set of hardening
    flags the workers were built with (order-insensitive).
    """
    if sessions <= 0 or calls <= 0:
        raise ConfigurationError("sessions and calls must be positive")
    if not rings:
        raise ConfigurationError("rings must be non-empty")
    if concurrency is not None and concurrency <= 0:
        raise ConfigurationError("concurrency must be positive")
    args = dict(args or {})
    report = LoadReport(
        sessions=sessions,
        calls_per_session=calls,
        expect_fault=expect_fault,
        expect_profile=expect_profile,
        expect_hardening=expect_hardening,
    )
    started = time.perf_counter()

    async def _drive(index: int) -> None:
        await _drive_session(
            host,
            port,
            f"{user_prefix}{user_offset + index}",
            rings[index % len(rings)],
            calls,
            program,
            args,
            max_retries,
            report,
            expect_fault=expect_fault,
        )

    workers = min(concurrency or sessions, sessions)
    if workers >= sessions:
        await asyncio.gather(*(_drive(index) for index in range(sessions)))
    else:
        pending = iter(range(sessions))

        async def _worker() -> None:
            for index in pending:
                await _drive(index)

        await asyncio.gather(*(_worker() for _ in range(workers)))
    report.elapsed_seconds = time.perf_counter() - started
    if fetch_stats:
        conn = await _Connection.open(host, port)
        try:
            report.stats = await conn.request({"verb": "stats"})
            await conn.request({"verb": "bye"})
        finally:
            await conn.close()
    return report
