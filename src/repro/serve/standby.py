"""Warm standbys: the network half of the replication subsystem.

Three pieces, layered over :mod:`repro.state.replication`:

* :class:`StandbyServer` — an asyncio JSON-lines TCP service (the same
  wire format as the gateway, :mod:`repro.serve.protocol`) that hosts
  one :class:`~repro.state.replication.ReplicaApplier` per primary
  slot.  Verbs: ``ship`` (apply a batch of CRC-checked frames, ack
  with the applied seq), ``stats``/``audit`` (read-only health and
  architectural figures answered locally, without touching the
  primary), ``promote`` (tail replay + promotion snapshot into the
  slot directory), ``lookup`` (call_id -> journaled result), ``bye``.
* :class:`ReplicaClient` — a minimal client for one standby, used by
  the shippers and anything driving a standalone ``repro standby``.
* :class:`ReplicaSet` — the gateway-side half: spawns in-process
  standbys (``--replicas N``) and/or connects to external ones
  (``--replica-endpoint``), runs one shipper task per (follower,
  slot) that tails the slot journal live and streams record batches
  (``--ship-every`` records per frame, at most ``ack-window`` frames
  in flight), tracks shipped/acked seq lag, and on pool death
  promotes the lowest-lag follower per slot before the gateway
  rebuilds its pool.

Shipping is deliberately at-least-once: a reconnect or a promotion
re-ships from the follower's last acked position, and the applier
skips already-applied seqs idempotently.  Ordering and integrity come
from the journal's own framing (seq chain + CRC, re-verified on
arrival); the standby never needs to trust the shipper.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, JournalError, ReproError
from ..state.recover import JOURNAL_NAME
from ..state.replication import (
    Frame,
    JournalTailer,
    ReplicaApplier,
    decode_frame,
    encode_frame,
)
from .protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    GatewayProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)

#: how long a shipper sleeps between polls of an idle journal
POLL_INTERVAL = 0.02

#: backoff before a shipper retries a failed standby connection
RECONNECT_BACKOFF = 0.2

#: how long :meth:`ReplicaSet.stop` waits for the shippers' final
#: round before cancelling them — a stalled follower (connected but
#: not acking) must not hold up gateway drain indefinitely
STOP_GRACE = 5.0

#: sanity bound on slot indices a ship/promote message may name
MAX_SLOTS = 4096


@dataclass(frozen=True)
class StandbyConfig:
    """Where a standby listens and whose slot directories it mirrors.

    ``dir`` is the *primary's* durability directory (shared
    filesystem): promotion replays the journal tail from it and writes
    the promotion snapshot into it, which is what lets the successor
    worker recover in place.
    """

    dir: str
    host: str = "127.0.0.1"
    port: int = 0

    def slot_dir(self, slot: int) -> str:
        """Where this standby keeps (and promotes) the slot's replica."""
        return os.path.join(self.dir, "slots", f"slot-{slot}")


class StandbyServer:
    """A standby process: warm replica appliers behind a TCP verb set."""

    def __init__(self, config: StandbyConfig):
        self.config = config
        self._appliers: Dict[int, ReplicaApplier] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None

    def applier_for(self, slot: int) -> ReplicaApplier:
        """The slot's applier, created warm-empty on first reference."""
        if not (isinstance(slot, int) and 0 <= slot < MAX_SLOTS):
            raise ConfigurationError(f"bad slot index {slot!r}")
        applier = self._appliers.get(slot)
        if applier is None:
            applier = self._appliers[slot] = ReplicaApplier()
            self._locks[slot] = asyncio.Lock()
        return applier

    async def start(self) -> None:
        """Bind and serve; ``self.port`` holds the bound port after."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener; appliers stay warm for inspection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    message = decode_line(line)
                except GatewayProtocolError as exc:
                    response = error_response(
                        ErrorCode.BAD_REQUEST, detail=str(exc)
                    )
                else:
                    response = await self._dispatch(message)
                    if response is None:  # bye
                        break
                writer.write(encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, message: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        verb = message.get("verb")
        request_id = message.get("id")
        try:
            if verb == "ship":
                return await self._verb_ship(message, request_id)
            if verb == "stats":
                return self._verb_stats(request_id)
            if verb == "audit":
                return self._verb_audit(message, request_id)
            if verb == "promote":
                return await self._verb_promote(message, request_id)
            if verb == "lookup":
                return self._verb_lookup(message, request_id)
            if verb == "bye":
                return None
        except (JournalError, ReproError) as exc:
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"{type(exc).__name__}: {exc}",
            )
        return error_response(
            ErrorCode.BAD_REQUEST,
            request_id,
            detail=f"unknown standby verb {verb!r}",
        )

    async def _verb_ship(
        self, message: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        slot = message.get("slot")
        entries = message.get("frames")
        if not isinstance(entries, list):
            return error_response(
                ErrorCode.BAD_REQUEST, request_id, detail="ship needs frames"
            )
        applier = self.applier_for(slot)
        loop = asyncio.get_running_loop()

        def apply_batch() -> Tuple[int, int]:
            applied = skipped = 0
            for entry in entries:
                frame = decode_frame(entry)
                if applier.apply(frame):
                    applied += 1
                else:
                    skipped += 1
            return applied, skipped

        # Applying executes real gate calls — run off the event loop,
        # serialized per slot (the seq chain admits no concurrency).
        async with self._locks[slot]:
            applied, skipped = await loop.run_in_executor(None, apply_batch)
        return ok_response(
            request_id,
            verb="ship",
            slot=slot,
            applied_seq=applier.applied_seq,
            applied=applied,
            skipped=skipped,
        )

    def _verb_stats(self, request_id: Any) -> Dict[str, Any]:
        return ok_response(
            request_id,
            verb="stats",
            slots={
                str(slot): applier.stats()
                for slot, applier in sorted(self._appliers.items())
            },
        )

    def _verb_audit(
        self, message: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        slot = message.get("slot")
        applier = self.applier_for(slot)
        payload = applier.stats()
        payload["recent_call_ids"] = list(applier.recent)[-16:]
        payload["installed_programs"] = sorted(applier.engine.installed)
        payload["users"] = sorted(applier.engine.processes)
        return ok_response(request_id, verb="audit", slot=slot, **payload)

    async def _verb_promote(
        self, message: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        slot = message.get("slot")
        applier = self.applier_for(slot)
        slot_dir = self.config.slot_dir(slot)
        os.makedirs(slot_dir, exist_ok=True)
        loop = asyncio.get_running_loop()
        async with self._locks[slot]:
            report = await loop.run_in_executor(
                None, applier.promote, slot_dir
            )
        return ok_response(request_id, verb="promote", slot=slot, **report)

    def _verb_lookup(
        self, message: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        call_id = message.get("call_id")
        for slot, applier in sorted(self._appliers.items()):
            result = applier.lookup(call_id)
            if result is not None:
                return ok_response(
                    request_id,
                    verb="lookup",
                    found=True,
                    slot=slot,
                    result=result,
                )
        return ok_response(request_id, verb="lookup", found=False)


class ReplicaClient:
    """One JSON-lines connection to a standby.

    ``request`` is the serialized ask/answer path (internally locked,
    safe to share across tasks); ``send``/``recv`` are the pipelined
    halves the shippers use to keep an ack window open.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def open(cls, host: str, port: int) -> "ReplicaClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES * 4
        )
        return cls(reader, writer)

    async def send(self, message: Dict[str, Any]) -> None:
        """Write one JSON line to the standby."""
        self._writer.write(encode(message))
        await self._writer.drain()

    async def recv(self) -> Dict[str, Any]:
        """Read one JSON-line response; EOF is a ConnectionError."""
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("standby closed the connection")
        return decode_line(line)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One serialized send/recv round trip."""
        async with self._lock:
            await self.send(message)
            return await self.recv()

    async def close(self) -> None:
        """Close the connection, swallowing teardown races."""
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass(frozen=True)
class ReplicationConfig:
    """How a gateway replicates its slots (see module docstring)."""

    dir: str
    slots: int
    replicas: int = 1
    ship_every: int = 8
    ack_window: int = 4
    endpoints: Tuple[str, ...] = ()
    poll_interval: float = POLL_INTERVAL

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ConfigurationError("replication needs at least one slot")
        if self.replicas < 0:
            raise ConfigurationError("replicas must be non-negative")
        if self.replicas == 0 and not self.endpoints:
            raise ConfigurationError(
                "replication needs --replicas >= 1 or a --replica-endpoint"
            )
        if self.ship_every <= 0:
            raise ConfigurationError("ship_every must be positive")
        if self.ack_window <= 0:
            raise ConfigurationError("ack_window must be positive")


@dataclass
class _SlotShipState:
    """One shipper's view of one (follower, slot) stream."""

    shipped_seq: int = 0
    acked_seq: int = 0
    journal_seq: int = 0
    last_ack: Optional[float] = None
    error: Optional[str] = None


class _Follower:
    """One standby (in-process or external) and its per-slot streams."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        server: Optional[StandbyServer] = None,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.server = server  # owned, when spawned in-process
        self.control: Optional[ReplicaClient] = None
        self.slots: Dict[int, _SlotShipState] = {}


def _parse_endpoint(endpoint: str) -> Tuple[str, int]:
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"replica endpoint {endpoint!r} is not HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"replica endpoint {endpoint!r} has a non-numeric port"
        ) from None


class ReplicaSet:
    """The gateway's followers: shippers, lag tracking, promotion."""

    def __init__(self, config: ReplicationConfig):
        self.config = config
        self._followers: List[_Follower] = []
        self._tasks: List[asyncio.Task] = []
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Spawn in-process standbys, connect followers, start shippers."""
        for index in range(self.config.replicas):
            server = StandbyServer(
                StandbyConfig(dir=self.config.dir, host="127.0.0.1", port=0)
            )
            await server.start()
            self._followers.append(
                _Follower(
                    f"replica{index}", "127.0.0.1", server.port, server=server
                )
            )
        for endpoint in self.config.endpoints:
            host, port = _parse_endpoint(endpoint)
            self._followers.append(
                _Follower(f"standby@{endpoint}", host, port)
            )
        for follower in self._followers:
            follower.control = await ReplicaClient.open(
                follower.host, follower.port
            )
            for slot in range(self.config.slots):
                follower.slots[slot] = _SlotShipState()
                self._tasks.append(
                    asyncio.create_task(self._ship_loop(follower, slot))
                )

    async def stop(self) -> None:
        """Final-ship whatever the journals gained, then shut down.

        Call after the worker pool has drained: each shipper does one
        last poll/ship round (so followers end current, and stats read
        zero lag after a clean drain) before exiting.  A follower that
        has stopped acking gets :data:`STOP_GRACE` seconds, then its
        shipper is cancelled — drain must not hang on a dead replica.
        """
        self._stopping.set()
        deadline = asyncio.get_running_loop().time() + STOP_GRACE
        for task in self._tasks:
            remaining = deadline - asyncio.get_running_loop().time()
            try:
                if remaining > 0:
                    await asyncio.wait_for(asyncio.shield(task), remaining)
                else:
                    task.cancel()
                    await task
            except (asyncio.CancelledError, asyncio.TimeoutError):
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        for follower in self._followers:
            if follower.control is not None:
                await follower.control.close()
            if follower.server is not None:
                await follower.server.stop()

    # -- shipping -----------------------------------------------------

    def _journal_path(self, slot: int) -> str:
        return os.path.join(
            self.config.dir, "slots", f"slot-{slot}", JOURNAL_NAME
        )

    async def _ship_loop(self, follower: _Follower, slot: int) -> None:
        state = follower.slots[slot]
        tailer = JournalTailer(self._journal_path(slot))
        backlog: List[Frame] = []
        conn: Optional[ReplicaClient] = None
        try:
            while True:
                try:
                    frames = tailer.poll()
                except JournalError as exc:
                    state.error = str(exc)
                    return
                state.journal_seq = tailer.last_seq
                backlog.extend(frames)
                while backlog and backlog[0].seq <= state.acked_seq:
                    backlog.pop(0)
                to_send = [
                    frame
                    for frame in backlog
                    if frame.seq > state.shipped_seq
                ]
                if to_send:
                    if conn is None:
                        conn = await ReplicaClient.open(
                            follower.host, follower.port
                        )
                    await self._ship_frames(conn, slot, state, to_send)
                    continue  # poll again immediately: there may be more
                if self._stopping.is_set():
                    return
                await asyncio.sleep(self.config.poll_interval)
        except (ConnectionError, OSError, GatewayProtocolError) as exc:
            if self._stopping.is_set():
                return
            state.error = f"{type(exc).__name__}: {exc}"
            if conn is not None:
                await conn.close()
            # at-least-once: resume from the acked position; the
            # applier skips anything it already has
            state.shipped_seq = state.acked_seq
            await asyncio.sleep(RECONNECT_BACKOFF)
            self._tasks.append(
                asyncio.create_task(self._ship_loop(follower, slot))
            )
        finally:
            if conn is not None:
                await conn.close()

    async def _ship_frames(
        self,
        conn: ReplicaClient,
        slot: int,
        state: _SlotShipState,
        frames: List[Frame],
    ) -> None:
        pending = 0
        for start in range(0, len(frames), self.config.ship_every):
            chunk = frames[start : start + self.config.ship_every]
            await conn.send(
                {
                    "verb": "ship",
                    "slot": slot,
                    "frames": [encode_frame(frame) for frame in chunk],
                }
            )
            state.shipped_seq = chunk[-1].seq
            pending += 1
            if pending >= self.config.ack_window:
                self._absorb_ack(state, await conn.recv())
                pending -= 1
        while pending:
            self._absorb_ack(state, await conn.recv())
            pending -= 1

    def _absorb_ack(
        self, state: _SlotShipState, ack: Dict[str, Any]
    ) -> None:
        if not ack.get("ok"):
            raise ConnectionError(
                f"standby refused a shipped batch: {ack.get('detail')}"
            )
        state.acked_seq = max(state.acked_seq, int(ack.get("applied_seq", 0)))
        state.last_ack = time.monotonic()
        state.error = None

    # -- failover -----------------------------------------------------

    async def promote_all(self) -> int:
        """Fail the dead pool's slots over onto their best followers.

        For each slot with a journal, pick the follower with the
        highest acked seq (the lowest-lag one) and have it promote:
        replay the unshipped tail from the journal file, then write the
        promotion snapshot the successor worker will recover from.
        Returns how many slots were promoted.
        """
        promoted = 0
        for slot in range(self.config.slots):
            if not os.path.exists(self._journal_path(slot)):
                continue
            candidates = [
                follower
                for follower in self._followers
                if follower.control is not None
            ]
            if not candidates:
                break
            best = max(
                candidates, key=lambda f: f.slots[slot].acked_seq
            )
            try:
                response = await best.control.request(
                    {"verb": "promote", "slot": slot}
                )
            except (ConnectionError, OSError, GatewayProtocolError):
                continue
            if response.get("ok"):
                promoted += 1
        return promoted

    async def lookup(
        self, call_id: Any
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The journaled result of ``call_id``, from any follower.

        The cross-slot dedup path: a retried call that was journaled by
        the dead pool may be resubmitted to a *different* slot's worker,
        whose own recent-calls cache has never seen it.  The followers
        collectively have — asking them closes the double-execution
        window that per-slot dedup alone leaves open.
        """
        for follower in self._followers:
            if follower.control is None:
                continue
            try:
                response = await follower.control.request(
                    {"verb": "lookup", "call_id": call_id}
                )
            except (ConnectionError, OSError, GatewayProtocolError):
                continue
            if response.get("ok") and response.get("found"):
                return response.get("slot"), response.get("result")
        return None

    # -- health -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Shipper-side replication health, cheap enough for every
        ``stats`` verb call."""
        now = time.monotonic()
        followers = []
        for follower in self._followers:
            for slot, state in sorted(follower.slots.items()):
                followers.append(
                    {
                        "follower": follower.name,
                        "slot": slot,
                        "shipped_seq": state.shipped_seq,
                        "applied_seq": state.acked_seq,
                        "journal_seq": state.journal_seq,
                        "lag_records": max(
                            0, state.journal_seq - state.acked_seq
                        ),
                        "last_ack_age_s": (
                            round(now - state.last_ack, 3)
                            if state.last_ack is not None
                            else None
                        ),
                        "error": state.error,
                    }
                )
        return {
            "enabled": True,
            "replicas": len(self._followers),
            "ship_every": self.config.ship_every,
            "ack_window": self.config.ack_window,
            "followers": followers,
        }
