"""The ring gateway: an asyncio gate-call service in front of the fleet.

``RingGateway`` accepts JSON-lines-over-TCP sessions
(:mod:`repro.serve.protocol`), binds each to a (user, ring) pair via the
``hello`` verb, and executes ``call`` requests on a pool of persistent
machine workers (:mod:`repro.serve.workers`) behind per-ring admission
control (:mod:`repro.serve.admission`).

Life of a request:

1. **validate** — verb shape and catalog arguments are checked before
   any shared resource is touched; bad requests cost nothing;
2. **admit** — the session ring's token bucket and pending bound decide;
   rejections are explicit (``rate_limited`` / ``queue_full`` with
   ``retry_after``), never silent drops;
3. **execute** — the job runs on whichever pool worker is free, guarded
   by ``call_timeout``.  A timeout answers the client immediately; the
   worker-side call is not interruptible (one machine step is atomic
   host Python), so its slot is released — and its metrics counted —
   when it actually finishes, keeping the accounting exact;
4. **account** — per-worker metric sums, latency reservoir, and the
   counter set the ``stats`` verb reports.

Shutdown is a drain: stop accepting, reject new calls with
``shutting_down``, wait for in-flight calls (bounded by
``drain_timeout``), then close connections and the pool.

The ``stats`` verb returns the merged
:class:`~repro.sim.metrics.MetricsSnapshot` figures, per-worker
snapshots, and gateway counters; ``consistent`` is the fleet driver's
merge-exactness contract held across the network boundary — the
gateway's per-worker sums must equal the totals the workers themselves
counted.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import uuid
from collections import deque
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from math import ceil
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..hardening import HARDENING_FLAGS
from ..sim.fleet import stable_shard
from ..sim.metrics import MetricsSnapshot
from . import catalog
from .admission import AdmissionController, RingPolicy
from .protocol import (
    ErrorCode,
    GatewayProtocolError,
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from .sessions import (
    SessionConfig,
    TENANT_MEMORY_WORDS,
    execute_session_call,
    session_control,
)
from .standby import ReplicaSet, ReplicationConfig
from .workers import (
    MACHINE_PROFILES,
    DurabilityConfig,
    ShardedWorkerPool,
    WorkerPool,
    execute_gate_call,
)

#: retry hint handed to callers rejected because the gateway is draining
DRAIN_RETRY_AFTER = 1.0

#: submissions per admitted call: the original plus retries after a
#: worker-pool crash (each retry rebuilds the pool first)
CALL_ATTEMPTS = 3


@dataclass
class GatewayConfig:
    """Everything a gateway needs to start serving."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick (tests, benchmarks)
    workers: int = 4
    backend: str = "process"
    call_timeout: float = 10.0
    drain_timeout: float = 10.0
    default_policy: RingPolicy = field(
        default_factory=lambda: RingPolicy(
            rate=None, burst=64, max_pending=256
        )
    )
    ring_policies: Dict[int, RingPolicy] = field(default_factory=dict)
    #: latency reservoir size for the p50/p99 figures
    latency_samples: int = 8192
    #: directory for per-worker journals and snapshots; ``None`` keeps
    #: workers in-memory only (a crash loses their machines)
    durability_dir: Optional[str] = None
    #: snapshot each worker machine every this many executed calls
    checkpoint_interval: int = 64
    #: batch journal fsyncs (crash loses at most ``fsync_every - 1``
    #: journaled calls; the gateway's retry path absorbs that)
    fsync_every: int = 8
    #: session virtualization: total live tenant slots across all
    #: worker shards; ``None`` keeps the classic one-machine-per-worker
    #: layout.  With a value, every distinct user gets its own parked
    #: machine and the gateway serves arbitrarily many tenants over
    #: this many live machines.
    max_sessions: Optional[int] = None
    #: directory backing parked tenants and their WAL tails; ``None``
    #: parks in worker memory (lost on crash, no cross-gateway handoff)
    session_store_dir: Optional[str] = None
    #: zlib-compress parked deltas
    session_compress: bool = True
    #: memory size of session tenant machines (small: hydration cost
    #: scales with machine memory)
    session_memory_words: int = TENANT_MEMORY_WORDS
    #: idle-tick period of the warm-pool prefetcher; 0 disables it
    prefetch_interval: float = 0.05
    #: tenants hydrated per shard per idle tick
    prefetch_batch: int = 2
    #: warm standbys spawned in-process; each mirrors every slot by
    #: applying shipped journal records (requires ``durability_dir``)
    replicas: int = 0
    #: journal records per shipped frame
    ship_every: int = 8
    #: shipped frames in flight before the shipper waits for an ack
    ack_window: int = 4
    #: external ``repro standby`` endpoints (``HOST:PORT``) to ship to,
    #: in addition to any in-process replicas
    replica_endpoints: Tuple[str, ...] = ()
    #: worker machine profile: ``ringed`` (the paper's hardware) or
    #: ``baseline645`` (software-assisted crossings at 150 cycles each);
    #: protection verdicts are identical, crossing cost is not — the
    #: knob behind the live hardware-vs-software A/B
    machine_profile: str = "ringed"
    #: hardening extensions enabled on every worker machine, as a tuple
    #: of flag names from :data:`~repro.hardening.HARDENING_FLAGS`;
    #: advertised in ``stats`` and in every call result so clients can
    #: tell which machine answered them
    hardening: Tuple[str, ...] = ()

    def durability(self) -> Optional[DurabilityConfig]:
        """The worker-side durability config, or ``None`` if disabled."""
        if not self.durability_dir:
            return None
        return DurabilityConfig(
            dir=self.durability_dir,
            slots=self.workers,
            checkpoint_interval=self.checkpoint_interval,
            fsync_every=self.fsync_every,
        )

    def replication(self) -> Optional[ReplicationConfig]:
        """The replica-set config, or ``None`` if replication is off."""
        if not self.replicas and not self.replica_endpoints:
            return None
        if not self.durability_dir:
            raise ConfigurationError(
                "replication ships the gate-call journal, so --replicas / "
                "--replica-endpoint require --durability-dir"
            )
        return ReplicationConfig(
            dir=self.durability_dir,
            slots=self.workers,
            replicas=self.replicas,
            ship_every=self.ship_every,
            ack_window=self.ack_window,
            endpoints=tuple(self.replica_endpoints),
        )

    def sessions(self) -> Optional[SessionConfig]:
        """The shard-side session config, or ``None`` if disabled."""
        if not self.max_sessions:
            return None
        return SessionConfig(
            max_live=max(1, ceil(self.max_sessions / self.workers)),
            shards=self.workers,
            store_dir=self.session_store_dir,
            memory_words=self.session_memory_words,
            compress=self.session_compress,
            fsync_every=self.fsync_every,
            prefetch_batch=self.prefetch_batch,
            # distinct per gateway instance: in-process gateways on the
            # thread fallback share the worker module state and must
            # not see each other's shard pools
            namespace=uuid.uuid4().hex,
        )


@dataclass
class GatewayCounters:
    """Gateway-level event counters the ``stats`` verb reports."""

    accepted: int = 0
    completed: int = 0
    rejected_rate_limited: int = 0
    rejected_queue_full: int = 0
    rejected_shutting_down: int = 0
    timed_out: int = 0
    machine_faults: int = 0
    worker_errors: int = 0
    bad_requests: int = 0
    protocol_errors: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    #: worker-pool rebuilds after a crash
    recoveries: int = 0
    #: calls resubmitted to a rebuilt pool
    retried_calls: int = 0
    #: calls answered from a worker's journal instead of re-executing
    deduplicated_calls: int = 0
    #: slots failed over onto a warm follower instead of cold-restoring
    promotions: int = 0
    #: retried calls answered from a follower's shipped journal (the
    #: cross-slot dedup path; also counted in ``deduplicated_calls``)
    replica_answered_calls: int = 0
    #: session mode: tenants hydrated from a parked delta on demand
    session_hydrated: int = 0
    #: session mode: tenants built fresh (first call ever)
    session_created: int = 0
    #: session mode: executed calls that paid the cold-attach vector
    session_cold_calls: int = 0
    #: session mode: calls that found their tenant prefetched and live
    session_prefetch_hits: int = 0
    #: session mode: tenants hydrated ahead of demand by the prefetcher
    prefetch_hydrated: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict, for the ``stats`` payload."""
        return dict(self.__dict__)


class _Session:
    """Per-connection authentication state."""

    __slots__ = ("user", "ring")

    def __init__(self) -> None:
        self.user: Optional[str] = None
        self.ring: int = 0


def _percentile(samples: List[float], fraction: float) -> float:
    """The ``fraction`` quantile of ``samples`` (nearest-rank)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, ceil(fraction * len(ordered))))
    return ordered[rank - 1]


class RingGateway:
    """The asyncio gate-call server.  See the module docstring."""

    def __init__(self, config: Optional[GatewayConfig] = None):
        self.config = config or GatewayConfig()
        if self.config.max_sessions and self.config.durability_dir:
            raise ConfigurationError(
                "session mode has its own per-tenant durability (the "
                "session store); worker durability_dir does not compose "
                "with it — set session_store_dir instead"
            )
        if self.config.machine_profile not in MACHINE_PROFILES:
            raise ConfigurationError(
                f"unknown machine profile "
                f"{self.config.machine_profile!r}; expected one of "
                f"{MACHINE_PROFILES}"
            )
        if self.config.machine_profile != "ringed" and (
            self.config.max_sessions or self.config.replicas
            or self.config.replica_endpoints
        ):
            raise ConfigurationError(
                "machine_profile is an A/B measurement knob for the "
                "classic worker pool; it does not compose with session "
                "mode or replication"
            )
        for flag in self.config.hardening:
            if flag not in HARDENING_FLAGS:
                raise ConfigurationError(
                    f"unknown hardening flag {flag!r}; expected a subset "
                    f"of {HARDENING_FLAGS}"
                )
        if self.config.hardening and (
            self.config.max_sessions or self.config.replicas
            or self.config.replica_endpoints
        ):
            raise ConfigurationError(
                "hardening is an ablation knob for the classic worker "
                "pool; it does not compose with session mode or "
                "replication"
            )
        self._sessions = self.config.sessions()
        #: validated eagerly so a bad replication setup fails at
        #: construction, not mid-failover
        self._replication = self.config.replication()
        self._replicas: Optional[ReplicaSet] = None
        self._prefetch_task: Optional[asyncio.Task] = None
        self.counters = GatewayCounters()
        self.admission = AdmissionController(
            self.config.default_policy, self.config.ring_policies
        )
        self.pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._inflight: set = set()
        self._serving = 0  # requests between receive and response-sent
        self._writers: set = set()
        self._latencies_ms: deque = deque(maxlen=self.config.latency_samples)
        #: gateway-side per-worker sums of per-call metric deltas
        self._per_worker: Dict[str, MetricsSnapshot] = {}
        self._per_worker_calls: Dict[str, int] = {}
        #: the cumulative totals each worker last reported about itself
        self._worker_reported: Dict[str, Tuple[int, Dict[str, int]]] = {}
        #: the generation each worker last reported, and the baseline
        #: (calls, totals) offset sampled when that generation was first
        #: seen — a recovered worker's cumulative figures include
        #: journal-replayed history this gateway never routed, so the
        #: cross-check compares growth since first contact, not history
        self._worker_generation: Dict[str, int] = {}
        self._worker_baseline: Dict[str, Tuple[int, Dict[str, int]]] = {}
        #: identity details per worker (pid, slot) for the stats payload
        self._worker_info: Dict[str, Dict[str, Any]] = {}
        self._pool_epoch = 0
        self._recovery_lock = asyncio.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("gateway is not started")
        return self._server.sockets[0].getsockname()[1]

    def _build_pool(self):
        if self._sessions is not None:
            return ShardedWorkerPool(
                shards=self.config.workers,
                backend=self.config.backend,
                session=self._sessions,
            )
        return WorkerPool(
            workers=self.config.workers,
            backend=self.config.backend,
            durability=self.config.durability(),
            machine_profile=self.config.machine_profile,
            hardening=self.config.hardening,
        )

    async def start(self) -> None:
        """Create the worker pool and start accepting connections."""
        if self._server is not None:
            raise ConfigurationError("gateway is already started")
        self.pool = self._build_pool()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=2 * MAX_LINE_BYTES,
        )
        if self._sessions is not None and self.config.prefetch_interval > 0:
            self._prefetch_task = asyncio.create_task(self._prefetch_loop())
        if self._replication is not None:
            self._replicas = ReplicaSet(self._replication)
            await self._replicas.start()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Serve until ``stop_event`` fires, then drain and stop."""
        await stop_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful drain: no new work, finish in-flight, close up."""
        if self._server is None:
            return
        self._draining = True
        if self._prefetch_task is not None:
            self._prefetch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._prefetch_task
            self._prefetch_task = None
        self._server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        if self._inflight:
            await asyncio.wait(
                list(self._inflight), timeout=self.config.drain_timeout
            )
        # Let handlers flush the responses for the calls that just
        # finished before their connections are torn down.
        while self._serving and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for writer in list(self._writers):
            writer.close()
        with contextlib.suppress(asyncio.TimeoutError, OSError):
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        self._server = None
        if self.pool is not None:
            if self._sessions is not None and self._sessions.store_dir:
                # park every live tenant so the next incarnation (or
                # another gateway) can hydrate them from the store
                for shard in range(self.config.workers):
                    with contextlib.suppress(Exception):
                        self.pool.submit(
                            shard, session_control,
                            {
                                "op": "park_all",
                                "shard": shard,
                                "ns": self._sessions.namespace,
                            },
                        ).result(timeout=self.config.drain_timeout)
            self.pool.shutdown(wait=True)
            self.pool = None
        if self._replicas is not None:
            # after the pool drained: the shippers do one final
            # poll/ship round so followers end current
            await self._replicas.stop()
            self._replicas = None

    async def _ensure_pool(self, observed_epoch: int) -> None:
        """Replace a broken worker pool (at most once per epoch).

        Every in-flight call that saw the break converges here; the
        first one through the lock rebuilds, the rest observe the bumped
        epoch and return.  The old pool is shut down first — a broken
        process pool kills its remaining children on shutdown, which
        frees their durability slots for the replacement workers to
        claim, restore, and replay.
        """
        async with self._recovery_lock:
            if self._pool_epoch != observed_epoch or self._draining:
                return
            loop = asyncio.get_running_loop()
            old = self.pool
            if old is not None:
                await loop.run_in_executor(
                    None, functools.partial(old.shutdown, True)
                )
            if self._replicas is not None:
                # hot failover: each slot's lowest-lag follower replays
                # the unshipped journal tail and writes a promotion
                # snapshot *before* the replacement workers claim the
                # slots — the successors then recover with an empty
                # tail instead of cold-restoring and replaying
                self.counters.promotions += await self._replicas.promote_all()
            self.pool = await loop.run_in_executor(None, self._build_pool)
            self._pool_epoch += 1
            self.counters.recoveries += 1

    async def _prefetch_loop(self) -> None:
        """Idle-tick warm-pool prefetcher (session mode only).

        When the gateway has no in-flight calls, each shard hydrates up
        to ``prefetch_batch`` of its most-recently-parked tenants into
        free slots, so a returning tenant's next call finds its machine
        live instead of paying the hydrate miss.  Prefetch work shares
        each shard's single worker, so it only runs while idle and
        never delays a real call that is already queued.
        """
        loop = asyncio.get_running_loop()
        while not self._draining:
            await asyncio.sleep(self.config.prefetch_interval)
            if self._inflight or self._draining or self.pool is None:
                continue
            for shard in range(self.config.workers):
                if self._inflight or self._draining:
                    break
                try:
                    result = await loop.run_in_executor(
                        self.pool.executor_for(shard),
                        session_control,
                        {
                            "op": "prefetch",
                            "shard": shard,
                            "limit": self.config.prefetch_batch,
                            "ns": self._sessions.namespace,
                        },
                    )
                except (BrokenExecutor, RuntimeError, AttributeError):
                    break
                self.counters.prefetch_hydrated += result.get("hydrated", 0)

    # -- connection handling -----------------------------------------------

    async def _send(
        self, writer: asyncio.StreamWriter, message: Dict[str, Any]
    ) -> None:
        writer.write(encode(message))
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        self.counters.sessions_opened += 1
        session = _Session()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # reset, or a line beyond the stream limit: the
                    # framing is unrecoverable, drop the connection
                    self.counters.protocol_errors += 1
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line.strip())
                except GatewayProtocolError as exc:
                    self.counters.protocol_errors += 1
                    await self._send(
                        writer,
                        error_response(
                            ErrorCode.BAD_REQUEST, detail=str(exc)
                        ),
                    )
                    continue
                self._serving += 1
                try:
                    response = await self._handle_message(session, message)
                    await self._send(writer, response)
                finally:
                    self._serving -= 1
                if message.get("verb") == "bye":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            self.counters.sessions_closed += 1
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # -- verbs --------------------------------------------------------------

    async def _handle_message(
        self, session: _Session, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        verb = message.get("verb")
        request_id = message.get("id")
        if verb == "hello":
            return self._verb_hello(session, message)
        if verb == "call":
            return await self._verb_call(session, message)
        if verb == "stats":
            return await self._verb_stats(request_id)
        if verb == "park":
            return await self._verb_park(message)
        if verb == "bye":
            return ok_response(request_id, verb="bye")
        self.counters.bad_requests += 1
        return error_response(
            ErrorCode.BAD_REQUEST,
            request_id,
            detail=f"unknown verb {verb!r}",
        )

    def _verb_hello(
        self, session: _Session, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        request_id = message.get("id")
        user = message.get("user")
        ring = message.get("ring", 4)
        if not isinstance(user, str) or not 1 <= len(user) <= 64:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail="hello requires a user name (1..64 chars)",
            )
        if (
            not isinstance(ring, int)
            or isinstance(ring, bool)
            or not catalog.MIN_RING <= ring <= catalog.MAX_RING
        ):
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"ring must be an integer in "
                f"[{catalog.MIN_RING}, {catalog.MAX_RING}]",
            )
        session.user = user
        session.ring = ring
        return ok_response(request_id, verb="hello", user=user, ring=ring)

    async def _verb_call(
        self, session: _Session, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        request_id = message.get("id")
        if session.user is None:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.AUTH_REQUIRED,
                request_id,
                detail="send hello before call",
            )
        if self._draining:
            self.counters.rejected_shutting_down += 1
            return error_response(
                ErrorCode.SHUTTING_DOWN,
                request_id,
                retry_after=DRAIN_RETRY_AFTER,
            )
        program = message.get("program")
        args = message.get("args", {})
        try:
            catalog.build_program(program, args)
        except KeyError:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.UNKNOWN_PROGRAM,
                request_id,
                detail=f"unknown program {program!r}; catalog: "
                f"{sorted(catalog.CATALOG)}",
            )
        except (ConfigurationError, TypeError) as exc:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST, request_id, detail=str(exc)
            )

        decision = self.admission.admit(session.ring)
        if not decision.admitted:
            if decision.reason == ErrorCode.RATE_LIMITED:
                self.counters.rejected_rate_limited += 1
            else:
                self.counters.rejected_queue_full += 1
            return error_response(
                decision.reason,
                request_id,
                ring=session.ring,
                retry_after=decision.retry_after,
            )

        self.counters.accepted += 1
        job = {
            "user": session.user,
            "ring": session.ring,
            "program": program,
            "args": args,
            # lets a durable worker that journaled this call before a
            # crash answer the retry from its journal instead of
            # executing twice
            "call_id": uuid.uuid4().hex,
        }
        if self._sessions is not None:
            # worker affinity: the user's live machine (or parked
            # image) belongs to exactly one shard
            job["shard"] = stable_shard(session.user, self.config.workers)
            job["ns"] = self._sessions.namespace
        loop = asyncio.get_running_loop()
        started = loop.time()
        result: Optional[Dict[str, Any]] = None
        failure: Optional[BaseException] = None
        for attempt in range(CALL_ATTEMPTS):
            epoch = self._pool_epoch
            try:
                if self._sessions is not None:
                    job["epoch"] = epoch
                    future = loop.run_in_executor(
                        self.pool.executor_for(job["shard"]),
                        execute_session_call,
                        job,
                    )
                else:
                    future = loop.run_in_executor(
                        self.pool.executor, execute_gate_call, job
                    )
            except (BrokenExecutor, RuntimeError) as exc:
                # the submit itself failed: no future was created, so
                # this call still holds its admission slot
                failure = exc
            else:
                self._inflight.add(future)
                future.add_done_callback(
                    functools.partial(
                        self._call_finished, loop, session.ring, started
                    )
                )
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(future),
                        timeout=self.config.call_timeout,
                    )
                    failure = None
                    break
                except asyncio.TimeoutError:
                    # The response is a timeout; the worker-side call
                    # still runs to completion and is accounted by
                    # _call_finished, so the stats cross-check stays
                    # exact.
                    self.counters.timed_out += 1
                    return error_response(
                        ErrorCode.TIMEOUT,
                        request_id,
                        timeout=self.config.call_timeout,
                    )
                except BrokenExecutor as exc:
                    # the pool died under the call; _call_finished just
                    # released our slot — reclaim it for the retry
                    failure = exc
                    self.admission.readmit(session.ring)
                except Exception as exc:
                    return error_response(
                        ErrorCode.BAD_REQUEST,
                        request_id,
                        detail=f"worker failure: {exc}",
                    )
            if self._draining or attempt == CALL_ATTEMPTS - 1:
                break
            await self._ensure_pool(epoch)
            if self._replicas is not None:
                # Before resubmitting: the dead pool may have journaled
                # this call already, and the retry can land on a
                # *different* slot whose worker has never seen the
                # call_id — per-slot dedup cannot catch that.  The
                # followers collectively saw every shipped journal;
                # answering from them is what guarantees zero
                # double-execution across a failover.
                answered = await self._replicas.lookup(job["call_id"])
                if answered is not None:
                    self.admission.release(session.ring)
                    slot, journaled = answered
                    return self._replica_answer(
                        request_id, slot, journaled, loop.time() - started
                    )
            self.counters.retried_calls += 1
        if failure is not None:
            self.admission.release(session.ring)
            if self._draining:
                self.counters.rejected_shutting_down += 1
                return error_response(
                    ErrorCode.SHUTTING_DOWN,
                    request_id,
                    retry_after=DRAIN_RETRY_AFTER,
                )
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"worker failure: {failure}",
            )
        if "error" in result:
            return error_response(
                result["error"],
                request_id,
                detail=result.get("detail", ""),
                worker=result.get("worker"),
            )
        latency_ms = round((loop.time() - started) * 1e3, 3)
        metrics = MetricsSnapshot.from_dict(result["metrics"])
        response = ok_response(
            request_id,
            verb="call",
            result=result["payload"],
            metrics=metrics.architectural(),
            worker=result["worker"],
            latency_ms=latency_ms,
        )
        if "session" in result:
            response["session"] = result["session"]
        if result.get("deduplicated"):
            response["deduplicated"] = True
        return response

    def _replica_answer(
        self,
        request_id: Any,
        slot: Any,
        journaled: Dict[str, Any],
        elapsed: float,
    ) -> Dict[str, Any]:
        """Answer a retried call from a follower's journaled result.

        The dead pool executed (and journaled) the call; the machine
        state change is part of the replayed history the per-worker
        baseline absorbs, so the per-worker sums are *not* touched —
        exactly like a worker-side dedup hit.
        """
        self.counters.deduplicated_calls += 1
        self.counters.replica_answered_calls += 1
        worker = f"slot{slot}"
        if "error" in journaled:
            self.counters.machine_faults += 1
            return error_response(
                journaled["error"],
                request_id,
                detail=journaled.get("detail", ""),
                worker=worker,
                deduplicated=True,
            )
        self.counters.completed += 1
        self._latencies_ms.append(elapsed * 1e3)
        metrics = MetricsSnapshot.from_dict(journaled["metrics"])
        return ok_response(
            request_id,
            verb="call",
            result=journaled["payload"],
            metrics=metrics.architectural(),
            worker=worker,
            latency_ms=round(elapsed * 1e3, 3),
            deduplicated=True,
        )

    def _call_finished(
        self,
        loop: asyncio.AbstractEventLoop,
        ring: int,
        started: float,
        future: "asyncio.Future",
    ) -> None:
        """Always runs once per admitted call, however it ended."""
        self._inflight.discard(future)
        self.admission.release(ring)
        if future.cancelled() or future.exception() is not None:
            self.counters.worker_errors += 1
            return
        result = future.result()
        if "error" in result:
            self.counters.machine_faults += 1
            return
        self.counters.completed += 1
        self._latencies_ms.append((loop.time() - started) * 1e3)
        worker = result["worker"]
        deduplicated = bool(result.get("deduplicated"))
        session_info = result.get("session")
        if session_info is not None:
            if session_info.get("admitted") == "hydrated":
                self.counters.session_hydrated += 1
            elif session_info.get("admitted") == "created":
                self.counters.session_created += 1
            if session_info.get("prefetch_hit"):
                self.counters.session_prefetch_hits += 1
            if session_info.get("cold") and not deduplicated:
                self.counters.session_cold_calls += 1
        if deduplicated:
            # answered from the worker's journal: the machine executed
            # this call in a previous incarnation (it is part of the
            # replayed history the baseline absorbs), so summing its
            # delta again would double-count it
            self.counters.deduplicated_calls += 1
        else:
            delta = MetricsSnapshot.from_dict(result["metrics"])
            current = self._per_worker.get(worker, MetricsSnapshot.zero())
            self._per_worker[worker] = current.plus(delta)
            self._per_worker_calls[worker] = (
                self._per_worker_calls.get(worker, 0) + 1
            )
        self._worker_reported[worker] = (
            result["worker_calls"],
            result["worker_total"],
        )
        self._worker_info[worker] = {
            "generation": result.get("generation", 0),
            "pid": result.get("pid"),
            "slot": result.get("slot"),
            "machine_profile": result.get("machine_profile"),
            "hardening": result.get("hardening", []),
        }
        generation = result.get("generation", 0)
        if self._worker_generation.get(worker) != generation:
            # first result from this worker incarnation: its cumulative
            # figures may include journal-replayed calls (or a previous
            # gateway's traffic) this gateway never summed — sample the
            # offset so the cross-check compares growth, not history
            self._worker_generation[worker] = generation
            summed = self._per_worker.get(
                worker, MetricsSnapshot.zero()
            ).architectural()
            baseline_total = {
                name: result["worker_total"].get(name, 0) - summed[name]
                for name in summed
            }
            baseline_calls = result["worker_calls"] - self._per_worker_calls.get(
                worker, 0
            )
            self._worker_baseline[worker] = (baseline_calls, baseline_total)

    async def _verb_park(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Park one user's live tenant now (the migration handoff).

        The router calls this on a session's *old* owner before the new
        owner sees traffic for it: the park writes the tenant's current
        state into the shared session store, where the new owner's
        hydration picks it up.
        """
        request_id = message.get("id")
        if self._sessions is None:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail="park requires session mode (--max-sessions)",
            )
        user = message.get("user")
        if not isinstance(user, str) or not user:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail="park requires a user name",
            )
        shard = stable_shard(user, self.config.workers)
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self.pool.executor_for(shard),
                session_control,
                {
                    "op": "park",
                    "shard": shard,
                    "user": user,
                    "ns": self._sessions.namespace,
                },
            )
        except (BrokenExecutor, RuntimeError, AttributeError) as exc:
            return error_response(
                ErrorCode.SHUTTING_DOWN
                if self._draining
                else ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"park failed: {exc}",
            )
        return ok_response(
            request_id, verb="park", user=user,
            parked=bool(result.get("parked")),
        )

    # -- stats ---------------------------------------------------------------

    async def _verb_stats(
        self, request_id: Optional[Any] = None
    ) -> Dict[str, Any]:
        """The ``stats`` response, with per-shard session figures
        gathered from the workers in session mode."""
        payload = self.stats_payload(request_id)
        if self._sessions is None or self.pool is None:
            return payload
        loop = asyncio.get_running_loop()
        shards: List[Dict[str, Any]] = []
        for shard in range(self.config.workers):
            try:
                shards.append(
                    await asyncio.wait_for(
                        loop.run_in_executor(
                            self.pool.executor_for(shard),
                            session_control,
                            {
                                "op": "stats",
                                "shard": shard,
                                "ns": self._sessions.namespace,
                            },
                        ),
                        timeout=self.config.call_timeout,
                    )
                )
            except (
                BrokenExecutor,
                RuntimeError,
                AttributeError,
                asyncio.TimeoutError,
            ):
                continue
        summable = [
            "live", "parked", "created", "hydrated", "prefetch_hydrated",
            "prefetch_hits", "parks", "evictions", "cold_calls",
            "warm_calls", "deduplicated", "replayed_tail_calls",
            "park_delta_bytes", "park_full_bytes", "park_stored_bytes",
        ]
        totals = {
            name: sum(entry.get(name, 0) for entry in shards)
            for name in summable
        }
        full = totals["park_full_bytes"]
        payload["sessions"] = {
            "enabled": True,
            "max_sessions": self.config.max_sessions,
            "store_dir": self.config.session_store_dir,
            "park_size_ratio": (
                round(totals["park_delta_bytes"] / full, 6) if full else None
            ),
            **totals,
            "per_shard": shards,
        }
        return payload

    def stats_payload(self, request_id: Optional[Any] = None) -> Dict[str, Any]:
        """The ``stats`` response: counters, merged metrics, cross-check."""
        merged = MetricsSnapshot.sum_of(self._per_worker.values())
        per_worker: Dict[str, Dict[str, Any]] = {}
        consistent = True
        seen = set(self._per_worker) | set(self._worker_reported)
        for worker in sorted(seen):
            summed = self._per_worker.get(worker, MetricsSnapshot.zero())
            reported_calls, reported_total = self._worker_reported.get(
                worker, (0, {})
            )
            gateway_calls = self._per_worker_calls.get(worker, 0)
            baseline_calls, baseline_total = self._worker_baseline.get(
                worker, (0, {})
            )
            architectural = summed.architectural()
            # the worker's own totals must equal what this gateway
            # summed plus the baseline sampled at first contact with
            # the worker's current incarnation (replayed history)
            expected_total = {
                name: architectural[name] + baseline_total.get(name, 0)
                for name in architectural
            }
            agrees = (
                expected_total == reported_total
                and gateway_calls + baseline_calls == reported_calls
            )
            consistent = consistent and agrees
            per_worker[worker] = {
                "calls": gateway_calls,
                "worker_reported_calls": reported_calls,
                "baseline_calls": baseline_calls,
                "architectural": architectural,
                "consistent": agrees,
                **self._worker_info.get(worker, {}),
            }
        samples = list(self._latencies_ms)
        latency = {
            "count": len(samples),
            "p50_ms": round(_percentile(samples, 0.50), 3),
            "p95_ms": round(_percentile(samples, 0.95), 3),
            "p99_ms": round(_percentile(samples, 0.99), 3),
        }
        replication: Dict[str, Any] = {"enabled": False}
        if self._replicas is not None:
            replication = self._replicas.stats()
            replication["promotions"] = self.counters.promotions
            replication["replica_answered_calls"] = (
                self.counters.replica_answered_calls
            )
        return ok_response(
            request_id,
            verb="stats",
            gateway={
                **self.counters.as_dict(),
                "in_flight": len(self._inflight),
                "pending_by_ring": {
                    str(ring): count
                    for ring, count in self.admission.pending_by_ring().items()
                },
                "latency": latency,
                "draining": self._draining,
            },
            workers={
                "backend": self.pool.backend if self.pool else "stopped",
                "configured": self.config.workers,
                "machine_profile": self.config.machine_profile,
                "hardening": list(self.config.hardening),
                "pool_epoch": self._pool_epoch,
                "durability": {
                    "enabled": bool(self.config.durability_dir),
                    "dir": self.config.durability_dir,
                    "checkpoint_interval": self.config.checkpoint_interval,
                    "fsync_every": self.config.fsync_every,
                },
                "per_worker": per_worker,
            },
            replication=replication,
            merged=merged.as_dict(),
            architectural=merged.architectural(),
            rates=merged.rates(),
            consistent=consistent,
        )
