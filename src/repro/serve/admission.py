"""Per-ring admission control for the gateway.

The paper's boundary hardware checks every gate transfer before any
callee code runs; the gateway applies the same discipline to network
callers, per ring, before any worker is touched:

* a **token bucket** bounds the sustained call rate (``rate`` calls/s
  with ``burst`` tokens of headroom) — the answer to one tenant
  monopolising the fleet;
* a **bounded pending count** caps how many admitted calls may be
  queued or executing at once — the backpressure that keeps latency
  bounded instead of letting queues grow without limit.

Both rejections are explicit and carry a ``retry_after`` hint (seconds)
so a well-behaved client can pace itself; nothing is silently dropped.
Admission state is plain arithmetic over an injected clock, so tests
drive it deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from .protocol import ErrorCode


@dataclass(frozen=True)
class RingPolicy:
    """Admission limits for one ring.

    ``rate`` is sustained calls/s (``None`` disables rate limiting);
    ``burst`` is the bucket depth; ``max_pending`` bounds queued plus
    executing calls; ``queue_retry_after`` is the hint returned with a
    ``queue_full`` rejection.
    """

    rate: Optional[float] = None
    burst: int = 32
    max_pending: int = 64
    queue_retry_after: float = 0.05

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError("rate must be positive (or None)")
        if self.burst <= 0:
            raise ConfigurationError("burst must be positive")
        if self.max_pending <= 0:
            raise ConfigurationError("max_pending must be positive")


@dataclass(frozen=True)
class Decision:
    """The outcome of one admission check."""

    admitted: bool
    reason: str = ""
    retry_after: float = 0.0


ADMITTED = Decision(admitted=True)


class TokenBucket:
    """A token bucket over an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        if burst <= 0:
            raise ConfigurationError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self) -> float:
        """Take one token; 0.0 on success, else seconds until one exists."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (after refilling to now)."""
        self._refill()
        return self._tokens


class _RingState:
    """One ring's bucket plus its pending count."""

    def __init__(self, policy: RingPolicy, clock: Callable[[], float]):
        self.policy = policy
        self.bucket = (
            TokenBucket(policy.rate, policy.burst, clock)
            if policy.rate is not None
            else None
        )
        self.pending = 0


class AdmissionController:
    """Admission decisions per ring, with explicit slot accounting.

    Callers must pair every admitted :meth:`admit` with exactly one
    :meth:`release` once the call leaves the system (completed, faulted,
    or timed out *and* finally drained from its worker) — the pending
    count is the gateway's queue bound.
    """

    def __init__(
        self,
        default: RingPolicy,
        per_ring: Optional[Dict[int, RingPolicy]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._default = default
        self._overrides = dict(per_ring or {})
        self._clock = clock
        self._rings: Dict[int, _RingState] = {}

    def _ring(self, ring: int) -> _RingState:
        state = self._rings.get(ring)
        if state is None:
            policy = self._overrides.get(ring, self._default)
            state = _RingState(policy, self._clock)
            self._rings[ring] = state
        return state

    def policy_for(self, ring: int) -> RingPolicy:
        """The effective policy for ``ring``."""
        return self._ring(ring).policy

    def admit(self, ring: int) -> Decision:
        """Try to admit one call in ``ring``; takes a slot on success."""
        state = self._ring(ring)
        if state.pending >= state.policy.max_pending:
            return Decision(
                admitted=False,
                reason=ErrorCode.QUEUE_FULL,
                retry_after=state.policy.queue_retry_after,
            )
        if state.bucket is not None:
            wait = state.bucket.try_take()
            if wait > 0.0:
                return Decision(
                    admitted=False,
                    reason=ErrorCode.RATE_LIMITED,
                    retry_after=round(wait, 6),
                )
        state.pending += 1
        return ADMITTED

    def readmit(self, ring: int) -> None:
        """Re-take the slot of an admitted call being retried internally.

        Unconditional — the call already passed :meth:`admit` once, so a
        gateway-side retry (e.g. resubmitting after a worker-pool crash)
        must not be bounced by its own ring's bucket or pending bound;
        the caller is holding the client connection open either way.
        """
        self._ring(ring).pending += 1

    def release(self, ring: int) -> None:
        """Return the slot taken by a previously admitted call."""
        state = self._ring(ring)
        if state.pending <= 0:
            raise ConfigurationError(
                f"release without a matching admit for ring {ring}"
            )
        state.pending -= 1

    def pending(self, ring: int) -> int:
        """Admitted-but-unreleased calls in ``ring``."""
        return self._ring(ring).pending

    def pending_by_ring(self) -> Dict[int, int]:
        """Pending counts for every ring seen so far."""
        return {
            ring: state.pending
            for ring, state in sorted(self._rings.items())
        }

    @property
    def total_pending(self) -> int:
        """Admitted-but-unreleased calls across all rings."""
        return sum(state.pending for state in self._rings.values())
