"""Session virtualization: park/hydrate tenant machines over live slots.

The serving layer's unit of tenancy becomes the *session* — one user's
single-tenant machine — instead of a worker machine shared by every
user routed to it.  Each worker shard owns a bounded LRU pool of live
slots holding the machines currently executing; every other tenant is
**parked**: detached from its process (cold-attach discipline), host
caches dropped, and serialized as a delta against a memoized
per-(program set, config) base image.  Tenant machines built through
the same code path place every segment at the same physical addresses,
so the sparse memory chunks of a parked tenant almost all match the
base and are stored by reference — a parked ``call_loop`` tenant costs
a few KB, not a full machine.  A parked tenant **hydrates** back into
a slot on its next call (or ahead of it, via the prefetcher), replaying
any write-ahead tail journaled after the park, and resumes with
bit-for-bit the architectural counters it parked with.

Parking is deliberately *not* checkpointing.  A durability checkpoint
(PR 4) snapshots the machine mid-service — attached, SDW associative
memory warm — so restore-then-continue is identical to never stopping.
A park instead normalizes the machine to the detached state first:
the snapshot records no attachment, hydration skips the re-attach, and
the first gate call after hydration goes through the full supervisor
attach — DBR load, cache flush, descriptor re-fetch — exactly like the
tenant's first call ever did.  That yields three properties the session
layer is built on:

* every call's metric delta is one of exactly two vectors — the
  cold-attach first-call figures or the warm fast-gate repeat figures —
  so merged counters can be cross-checked against per-tenant
  expectations in closed form;
* ``park -> hydrate -> park`` with no call in between is byte-identical
  (parking is idempotent);
* the ``fast_gate`` attach memo can never leak across a hydration — a
  hydrated machine re-fetches its descriptors on first use.

Worker shards: the gateway consistent-hashes each user onto one shard
(:func:`repro.sim.fleet.stable_shard`) and each shard runs on its own
single-worker executor, so a tenant's machine state always lives in
exactly one process.  The shard-side state in this module is keyed by
shard index, which keeps the thread fallback (all shards in one
process) and the process backend (one shard per child) on the same
code path.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError, SnapshotError
from ..sim.machine import Machine
from ..sim.metrics import MetricsSnapshot
from ..state.journal import JournalWriter
from ..state.recover import replay_journal
from ..state.snapshot import (
    apply_delta,
    canonical_bytes,
    decode_delta,
    delta_snapshot,
    encode_delta,
    read_snapshot_file,
    snapshot_digest,
    snapshot_machine,
    write_snapshot_file,
)
from .workers import GateCallEngine, metrics_architectural

#: per-tenant duplicate-suppression cache, persisted across parks — a
#: retried call id that raced a park is answered from here instead of
#: re-executing on the hydrated machine
SESSION_RECENT_CALLS = 64

#: how much of the dedup cache survives a park: a retry that races a
#: park is by definition one of the last calls before it — older
#: history cannot race the park window, and every persisted entry is
#: bytes in the parked delta
PARKED_RECENT_CALLS = 2

#: tenant machines are deliberately small: the catalog programs fit in
#: a fraction of this, and memory size is the dominant cost of both
#: machine construction and hydration
TENANT_MEMORY_WORDS = 1 << 16


@dataclass(frozen=True)
class SessionConfig:
    """Shard-side session configuration (picklable: it crosses the
    process-pool boundary as an initializer argument).

    ``max_live`` bounds the live slots *per shard*; ``store_dir`` backs
    parked tenants (and their WAL tails) with files shared across
    shards and gateways — ``None`` keeps them in shard memory, which
    serves fine but loses parked tenants with the process and cannot
    hand sessions across gateways.
    """

    max_live: int
    shards: int = 1
    store_dir: Optional[str] = None
    memory_words: int = TENANT_MEMORY_WORDS
    compress: bool = True
    fsync_every: int = 8
    prefetch_batch: int = 2
    #: isolates this pool's shard state from other gateways living in
    #: the same process (the thread fallback runs every in-process
    #: gateway's shards on shared module state)
    namespace: str = ""

    def __post_init__(self) -> None:
        if self.max_live <= 0:
            raise ConfigurationError("max_live must be positive")
        if self.shards <= 0:
            raise ConfigurationError("shards must be positive")
        if self.memory_words <= 0:
            raise ConfigurationError("memory_words must be positive")
        if self.fsync_every <= 0:
            raise ConfigurationError("fsync_every must be positive")


def _name_hash(name: str) -> str:
    """Filesystem-safe stable name for a user or base key."""
    return hashlib.sha1(name.encode("utf-8")).hexdigest()


def _slim_result(result: Dict[str, Any]) -> Dict[str, Any]:
    """A dedup-cache entry worth persisting in a parked delta.

    Host-tier counters are diagnostics of a machine incarnation that no
    longer exists once the tenant is parked, so a dedup reply served
    after a hydration carries architectural counters only — and the
    parked delta stays small.  Idempotent (slimming twice is a no-op),
    which park -> hydrate -> park byte-identity relies on.
    """
    slim = dict(result)
    if "metrics" in slim:
        slim["metrics"] = {
            name: value
            for name, value in slim["metrics"].items()
            if name in MetricsSnapshot.ARCHITECTURAL
        }
    return slim


class SessionStore:
    """Parked tenant deltas plus the base images they reference.

    In-memory by default; with ``dir`` every artifact is a file, safe
    to share across shards and gateways because each user's files are
    only ever touched by the user's current owner (consistent hashing
    gives every session exactly one owner, and a migration parks on the
    old owner before the new one hydrates).

    Base images are named by their snapshot digest, with a per-shape
    pointer file electing the shape's base; concurrent first-parkers
    may both publish a base, but deltas reference their base by digest,
    so every delta stays resolvable no matter who wins the pointer.
    """

    def __init__(self, dir: Optional[str] = None):
        self.dir = dir
        self._parked: Dict[str, bytes] = {}
        self._bases: Dict[str, Dict[str, Any]] = {}  # digest -> snapshot
        self._shape_digest: Dict[str, str] = {}  # shape key -> digest
        self._lock = threading.Lock()
        if dir:
            os.makedirs(os.path.join(dir, "parked"), exist_ok=True)
            os.makedirs(os.path.join(dir, "bases"), exist_ok=True)
            os.makedirs(os.path.join(dir, "tails"), exist_ok=True)

    # -- parked deltas ------------------------------------------------------

    def _parked_path(self, user: str) -> str:
        return os.path.join(self.dir, "parked", _name_hash(user) + ".delta")

    def put(self, user: str, blob: bytes) -> None:
        """Durably record ``user``'s parked delta (replacing any)."""
        if self.dir is None:
            with self._lock:
                self._parked[user] = blob
            return
        path = self._parked_path(user)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def get(self, user: str) -> Optional[bytes]:
        """The user's parked delta, or ``None`` if never parked."""
        if self.dir is None:
            with self._lock:
                return self._parked.get(user)
        try:
            with open(self._parked_path(user), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def parked_count(self) -> int:
        """How many parked tenants the store holds."""
        if self.dir is None:
            with self._lock:
                return len(self._parked)
        return len(os.listdir(os.path.join(self.dir, "parked")))

    # -- base images --------------------------------------------------------

    def _base_path(self, digest: str) -> str:
        return os.path.join(self.dir, "bases", digest + ".json")

    def _pointer_path(self, shape: str) -> str:
        return os.path.join(self.dir, "bases", _name_hash(shape) + ".ptr")

    def base_for_shape(
        self, shape: str, candidate: Dict[str, Any]
    ) -> Dict[str, Any]:
        """The base image for ``shape``, electing ``candidate`` if the
        shape has none yet.  Returns the elected base snapshot."""
        with self._lock:
            digest = self._shape_digest.get(shape)
            if digest is not None:
                return self._bases[digest]
            if self.dir is None:
                digest = snapshot_digest(candidate)
                self._bases[digest] = candidate
                self._shape_digest[shape] = digest
                return candidate
        # On-disk election: publish the candidate base, then try to
        # point the shape at it with an exclusive create.  A loser
        # adopts the winner's digest; its published base stays on disk
        # for any deltas already referencing it.
        digest = snapshot_digest(candidate)
        base_path = self._base_path(digest)
        if not os.path.exists(base_path):
            write_snapshot_file(candidate, base_path)
        pointer = self._pointer_path(shape)
        try:
            fd = os.open(pointer, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            with os.fdopen(fd, "w") as handle:
                handle.write(digest)
                handle.flush()
                os.fsync(handle.fileno())
        except FileExistsError:
            with open(pointer, "r") as handle:
                digest = handle.read().strip()
        base = self.base_by_digest(digest)
        with self._lock:
            self._shape_digest[shape] = digest
        return base

    def base_by_digest(self, digest: str) -> Dict[str, Any]:
        """The base snapshot with ``digest`` (cached after first read)."""
        with self._lock:
            base = self._bases.get(digest)
        if base is not None:
            return base
        if self.dir is None:
            raise SnapshotError(
                f"no base image with digest {digest!r} in this store"
            )
        base = read_snapshot_file(self._base_path(digest))
        with self._lock:
            self._bases[digest] = base
        return base

    # -- WAL tails ----------------------------------------------------------

    def tail_path(self, user: str, epoch: int) -> Optional[str]:
        """The user's tail journal path for ``epoch`` (``None`` when the
        store is memory-only — tails need a filesystem)."""
        if self.dir is None:
            return None
        return os.path.join(
            self.dir, "tails", f"{_name_hash(user)}.{epoch}.wal"
        )


class TenantSession:
    """One live tenant: its engine plus session bookkeeping."""

    __slots__ = (
        "user",
        "engine",
        "recent",
        "tail_epoch",
        "tail",
        "tail_records",
        "prefetched",
        "dirty",
    )

    def __init__(self, user: str, engine: GateCallEngine):
        self.user = user
        self.engine = engine
        #: call_id -> result, insertion-ordered for trimming
        self.recent: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.tail_epoch = 0
        self.tail: Optional[JournalWriter] = None
        self.tail_records = 0
        self.prefetched = False
        #: whether the machine executed anything since admission — a
        #: clean tenant re-parks without re-normalizing, so a
        #: park -> hydrate -> park cycle with no call in between is
        #: byte-identical (no spurious cache-invalidation ticks)
        self.dirty = False

    def attach_is_warm(self) -> bool:
        """Whether the next call runs on the fast-gate warm path.

        Mirrors the memo check in :meth:`Machine.start`: this is what
        decides whether the call's metric delta will be the cold-attach
        vector or the warm repeat vector.
        """
        machine = self.engine.machine
        process = self.engine.processes.get(self.user)
        return (
            process is not None
            and machine.fast_gate
            and machine.supervisor.attached_process is process
            and machine.processor.dbr is process.dbr
        )


class SessionPool:
    """The LRU live-slot pool of one worker shard.

    Owns tenant admission (create / hydrate), LRU eviction with park,
    the per-shard slice of the parked store, prefetching, and the
    cumulative per-shard counters the gateway cross-checks.
    """

    def __init__(
        self,
        config: SessionConfig,
        store: Optional[SessionStore] = None,
        shard: int = 0,
    ):
        self.config = config
        self.store = store if store is not None else SessionStore(
            config.store_dir
        )
        self.shard = shard
        #: user -> TenantSession, least-recently-used first
        self.live: "OrderedDict[str, TenantSession]" = OrderedDict()
        #: users parked by this pool, most recently parked first — the
        #: prefetcher's prediction list
        self.recently_parked: "OrderedDict[str, None]" = OrderedDict()
        self.calls = 0
        self.total = MetricsSnapshot.zero()
        self.counters: Dict[str, int] = {
            "created": 0,
            "hydrated": 0,
            "prefetch_hydrated": 0,
            "prefetch_hits": 0,
            "parks": 0,
            "evictions": 0,
            "cold_calls": 0,
            "warm_calls": 0,
            "deduplicated": 0,
            "replayed_tail_calls": 0,
            "park_delta_bytes": 0,
            "park_full_bytes": 0,
            "park_stored_bytes": 0,
        }

    # -- park ---------------------------------------------------------------

    def _shape_key(self, snap: Dict[str, Any]) -> str:
        book = snap["extra"]["engine"]
        ident = {
            "config": snap["config"],
            "stored": book["stored_paths"],
            "installed": sorted(book["installed"]),
        }
        return json.dumps(ident, sort_keys=True, separators=(",", ":"))

    def park(self, tenant: TenantSession) -> bytes:
        """Park one tenant: normalize, snapshot, delta, store.

        Returns the stored blob (the idempotence tests compare it).
        """
        engine = tenant.engine
        bump_epoch = tenant.tail_records > 0
        epoch = tenant.tail_epoch + 1 if bump_epoch else tenant.tail_epoch
        if tenant.dirty:
            engine.machine.detach()
            engine.machine.processor.drop_host_caches()
        extra = {
            "engine": engine.bookkeeping(),
            "session": {
                "user": tenant.user,
                "recent": [
                    [call_id, _slim_result(result)]
                    for call_id, result in list(tenant.recent.items())[
                        -PARKED_RECENT_CALLS:
                    ]
                ],
                "tail_epoch": epoch,
            },
        }
        # the engine's cumulative host-tier counts die with the live
        # incarnation (like the caches they describe); architectural
        # totals carry across the park
        extra["engine"]["counters"] = {
            name: value
            for name, value in extra["engine"]["counters"].items()
            if name in MetricsSnapshot.ARCHITECTURAL
        }
        snap = snapshot_machine(engine.machine, extra=extra)
        base = self.store.base_for_shape(self._shape_key(snap), snap)
        delta = delta_snapshot(snap, base)
        blob = encode_delta(delta, compress=self.config.compress)
        self.store.put(tenant.user, blob)
        if tenant.tail is not None:
            tenant.tail.close()
            tenant.tail = None
        if bump_epoch:
            # the parked image includes every journaled call: fence the
            # old tail off (it must never replay on top of this park)
            old = self.store.tail_path(tenant.user, tenant.tail_epoch)
            if old is not None:
                try:
                    os.unlink(old)
                except FileNotFoundError:
                    pass
        tenant.tail_epoch = epoch
        tenant.tail_records = 0
        self.counters["parks"] += 1
        self.counters["park_delta_bytes"] += len(canonical_bytes(delta))
        self.counters["park_full_bytes"] += len(canonical_bytes(snap))
        self.counters["park_stored_bytes"] += len(blob)
        self.recently_parked[tenant.user] = None
        self.recently_parked.move_to_end(tenant.user, last=False)
        while len(self.recently_parked) > 4 * self.config.max_live:
            self.recently_parked.popitem(last=True)
        return blob

    def park_user(self, user: str) -> bool:
        """Park ``user`` now if live (the migration handoff path)."""
        tenant = self.live.pop(user, None)
        if tenant is None:
            return False
        self.park(tenant)
        return True

    def park_all(self) -> int:
        """Park every live tenant (drain)."""
        parked = 0
        while self.live:
            _, tenant = self.live.popitem(last=False)
            self.park(tenant)
            parked += 1
        return parked

    # -- admit --------------------------------------------------------------

    def _fresh_engine(self) -> GateCallEngine:
        machine = Machine(
            services=False,
            jit_tier_enabled=True,
            fast_gate=True,
            memory_words=self.config.memory_words,
        )
        return GateCallEngine(machine)

    def _hydrate(self, user: str) -> Optional[TenantSession]:
        blob = self.store.get(user)
        if blob is None:
            return None
        delta = decode_delta(blob)
        base = self.store.base_by_digest(delta["base_sha256"])
        snap = apply_delta(base, delta)
        engine = GateCallEngine.from_snapshot(snap)
        tenant = TenantSession(user, engine)
        session = snap["extra"].get("session", {})
        tenant.recent = OrderedDict(
            (call_id, result)
            for call_id, result in session.get("recent", [])
        )
        tenant.tail_epoch = int(session.get("tail_epoch", 0))
        tail_path = self.store.tail_path(user, tenant.tail_epoch)
        if tail_path is not None and os.path.exists(tail_path):
            # the worker died after journaling calls it never folded
            # into a park: replay them through the same engine path
            report = replay_journal(
                tail_path, engine=engine, recent=tenant.recent
            )
            tenant.tail_records = report.replayed
            tenant.dirty = tenant.dirty or report.replayed > 0
            self.counters["replayed_tail_calls"] += report.replayed
        self._trim_recent(tenant)
        return tenant

    def _evict_to_fit(self) -> None:
        while len(self.live) >= self.config.max_live:
            _, victim = self.live.popitem(last=False)
            self.park(victim)
            self.counters["evictions"] += 1

    def _admit(self, user: str, prefetch: bool = False) -> Tuple[
        Optional[TenantSession], str
    ]:
        """Bring ``user`` live; returns (tenant, "hydrated"|"created")."""
        self._evict_to_fit()
        tenant = self._hydrate(user)
        how = "hydrated"
        if tenant is None:
            if prefetch:
                return None, "absent"
            tenant = TenantSession(user, self._fresh_engine())
            how = "created"
        self.live[user] = tenant
        self.counters[
            "prefetch_hydrated" if prefetch and how == "hydrated" else how
        ] += 1
        return tenant, how

    def prefetch(self, limit: Optional[int] = None) -> int:
        """Hydrate up to ``limit`` predicted-next tenants into free slots.

        Prediction is most-recently-parked first — the tenants likeliest
        to be revisited.  Only free slots are used: prefetching never
        evicts live work.
        """
        budget = self.config.prefetch_batch if limit is None else limit
        hydrated = 0
        candidates = [
            user for user in self.recently_parked if user not in self.live
        ]
        for user in candidates:
            if hydrated >= budget or len(self.live) >= self.config.max_live:
                break
            tenant, how = self._admit(user, prefetch=True)
            if tenant is None:
                self.recently_parked.pop(user, None)
                continue
            tenant.prefetched = True
            # freshly prefetched tenants sit at the LRU head so real
            # traffic evicts them before anything a call touched
            self.live.move_to_end(user, last=False)
            hydrated += 1
        return hydrated

    # -- execute ------------------------------------------------------------

    def _trim_recent(self, tenant: TenantSession) -> None:
        while len(tenant.recent) > SESSION_RECENT_CALLS:
            tenant.recent.popitem(last=False)

    def _ensure_tail(self, tenant: TenantSession) -> Optional[JournalWriter]:
        if tenant.tail is not None:
            return tenant.tail
        path = self.store.tail_path(tenant.user, tenant.tail_epoch)
        if path is None:
            return None
        tenant.tail = JournalWriter(
            path, fsync_every=self.config.fsync_every
        )
        return tenant.tail

    def execute(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Run one gate call against the job's tenant session."""
        user = job["user"]
        call_id = job.get("call_id")
        tenant = self.live.get(user)
        admitted = "live"
        if tenant is None:
            tenant, admitted = self._admit(user)
        else:
            self.live.move_to_end(user)
        prefetch_hit = tenant.prefetched
        if prefetch_hit:
            tenant.prefetched = False
            self.counters["prefetch_hits"] += 1
        warm = tenant.attach_is_warm()
        cached = (
            tenant.recent.get(call_id) if call_id is not None else None
        )
        if cached is not None:
            result = dict(cached)
            result["deduplicated"] = True
            self.counters["deduplicated"] += 1
        else:
            self.counters["warm_calls" if warm else "cold_calls"] += 1
            result = tenant.engine.run_job(job)
            tenant.dirty = True
            tail = self._ensure_tail(tenant)
            if tail is not None:
                tail.append(
                    {
                        "call_id": call_id,
                        "job": {
                            "user": job["user"],
                            "ring": job["ring"],
                            "program": job["program"],
                            "args": job["args"],
                        },
                        "result": result,
                    }
                )
                tenant.tail_records += 1
            if call_id is not None:
                tenant.recent[call_id] = result
                self._trim_recent(tenant)
            if "error" not in result:
                self.calls += 1
                self.total = self.total.plus(
                    MetricsSnapshot.from_dict(result["metrics"])
                )
        out = dict(result)
        out["session"] = {
            "cold": not warm,
            "admitted": admitted,
            "prefetch_hit": prefetch_hit,
        }
        return out

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Shard-level session figures for the gateway's ``stats`` verb."""
        delta = self.counters["park_delta_bytes"]
        full = self.counters["park_full_bytes"]
        return {
            "shard": self.shard,
            "live": len(self.live),
            "max_live": self.config.max_live,
            "parked": self.store.parked_count(),
            "park_size_ratio": round(delta / full, 6) if full else None,
            **self.counters,
        }


# ---------------------------------------------------------------------------
# worker-side entry points (the shard executors call these)
# ---------------------------------------------------------------------------

_CONFIGS: Dict[str, SessionConfig] = {}
_POOLS: Dict[Tuple[str, int], SessionPool] = {}
_POOLS_LOCK = threading.Lock()


def configure_sessions(config: SessionConfig) -> None:
    """Install ``config`` for its namespace's shard pools in this
    process, dropping any existing pools of that namespace (a pool
    rebuild wants fresh workers) — other namespaces are untouched, so
    in-process gateways do not clobber each other."""
    with _POOLS_LOCK:
        _CONFIGS[config.namespace] = config
        for key in [k for k in _POOLS if k[0] == config.namespace]:
            del _POOLS[key]


def _init_session_worker(config: SessionConfig) -> None:
    """Process-pool child initializer: drop forked-in shard state."""
    configure_sessions(config)


def _pool(namespace: str, shard: int) -> SessionPool:
    with _POOLS_LOCK:
        pool = _POOLS.get((namespace, shard))
        if pool is None:
            config = _CONFIGS.get(namespace)
            if config is None:
                raise ConfigurationError(
                    "session workers are not configured in this process "
                    f"for namespace {namespace!r}"
                )
            pool = SessionPool(config, shard=shard)
            _POOLS[(namespace, shard)] = pool
        return pool


def session_ping(shard: int, token: int) -> Dict[str, Any]:
    """Liveness probe for a shard executor."""
    return {"shard": shard, "token": token, "pid": os.getpid()}


def execute_session_call(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one gate call on the job's shard pool.

    Same result contract as :func:`repro.serve.workers
    .execute_gate_call`, plus a ``session`` block (``cold`` — this call
    paid the cold-attach metric vector; ``admitted`` — how the tenant
    reached its slot; ``prefetch_hit``).  ``worker_calls`` and
    ``worker_total`` are the *pool's* cumulative figures: they keep
    growing across evictions and hydrations, so the gateway's
    cross-check spans the whole shard, not one tenant.
    """
    shard = int(job.get("shard", 0))
    pool = _pool(job.get("ns", ""), shard)
    out = pool.execute(job)
    out["worker"] = f"shard{shard}"
    out["pid"] = os.getpid()
    out["generation"] = int(job.get("epoch", 0))
    out["worker_calls"] = pool.calls
    out["worker_total"] = metrics_architectural(pool.total)
    return out


def session_control(op: Dict[str, Any]) -> Dict[str, Any]:
    """Shard maintenance operations (stats / park / prefetch / drain)."""
    shard = int(op.get("shard", 0))
    pool = _pool(op.get("ns", ""), shard)
    kind = op.get("op")
    if kind == "stats":
        return pool.stats()
    if kind == "park":
        return {"parked": pool.park_user(op["user"])}
    if kind == "prefetch":
        return {"hydrated": pool.prefetch(op.get("limit"))}
    if kind == "park_all":
        return {"parked": pool.park_all()}
    raise ConfigurationError(f"unknown session op {kind!r}")
