"""Named gate-call programs a gateway caller may invoke.

Callers never ship code across the wire — they name a program from this
catalog and pass small integer arguments.  Each entry builds assembly
source parameterised by those arguments; the worker assembles and
installs a variant once per distinct argument set (segment names encode
the variant, so installs are idempotent per machine) and reuses it for
every later call.

Programs:

``call_loop``
    the Figure 8 cross-ring call loop: ``count`` call/return pairs from
    the session's ring into a ``target_ring`` gate.  The service the
    paper is about, in its purest form.
``compute``
    a pure in-ring arithmetic loop of ``n`` iterations — traffic that
    exercises the interpreter without any ring crossings, for mixing
    with ``call_loop`` load.
``echo``
    load ``value`` into the A register and halt — the cheapest possible
    request, useful for measuring gateway overhead.

The paper's "use of rings" stories (pp. 34–37), ported from
``examples/`` so they are servable multi-tenant workloads (the examples
import these builders back, so the story text lives in exactly one
place):

``mutual_suspicion``
    two vendors' subsystems in rings 2 and 3; ``attacker_ring`` picks
    the direction — ring 3 spying on ring 2 faults, ring 2 spying on
    ring 3 succeeds (protection is one-directional by construction).
``proprietary``
    Alice's execute-only algorithm: calling the gate computes
    ``4*value + 7``; ``peek=1`` instead tries to read the code and
    faults (execute permission does not imply read).
``grading_sandbox``
    the grader calls a ring-6 student: ``variant`` 0 is honest
    (grade checked in-machine), 1 calls a guarded inner-ring gate from
    the sandbox, 2 scribbles on the grader's stack — both cheats fault.
``debug``
    the wild-pointer story: one binary whose ring-4 data write is
    caught when the *session ring* is 5 and permitted when it is ≤ 4 —
    the protection environment, not the program, decides.
``layered``
    the two-layer supervisor: ring-1 gates exported to users, ring-0
    gates reachable only from ring 1; ``direct=1`` skips the layer and
    faults on the ring-0 gate extension.

``attack``
    one ring-violation program from the adversary corpus
    (:mod:`repro.adversary.corpus`): ``family`` + ``seed`` + ``ring``
    name a deterministic attack whose only legal outcome is a
    ``machine_fault`` response carrying the oracle's fault code.  The
    caller's session ring must equal ``ring`` or the oracle does not
    apply.

Every builder validates its arguments and raises
:class:`~repro.errors.ConfigurationError` on misuse; the gateway maps
that to a ``bad_request`` response before any worker is involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from ..core.acl import AclEntry, RingBracketSpec
from ..errors import ConfigurationError

#: rings a session (and hence a catalog program) may execute in: the
#: caller segments carry execute bracket [1, 5]
MIN_RING = 1
MAX_RING = 5

#: bounds on integer arguments (immediates must fit the address field,
#: and a single call must stay comfortably inside the per-call step cap)
MAX_COUNT = 4096
MAX_ITER = 200000
MAX_VALUE = 65535

#: every caller segment is executable in rings 1..5 by every user
_CALLER_ACL = (AclEntry("*", RingBracketSpec.procedure(MIN_RING, top=MAX_RING)),)


@dataclass(frozen=True)
class ProgramImage:
    """What a worker installs for one program variant.

    ``key`` identifies the variant (program name + canonical args);
    ``segments`` is a tuple of ``(path, source, acl)`` to assemble and
    store; ``data_segments`` is a tuple of ``(path, values, acl)`` raw
    data segments (the ring stories bracket secrets and scratch areas
    below or beside the caller); ``entry`` is the ``segment$symbol``
    reference to run.  ``domains`` lists ``(segment name, domain)``
    bindings the worker applies before initiation — no-ops unless the
    serving machine runs the ``ring_domains`` extension.
    """

    key: str
    segments: Tuple[Tuple[str, str, Tuple[AclEntry, ...]], ...]
    entry: str
    data_segments: Tuple[
        Tuple[str, Tuple[int, ...], Tuple[AclEntry, ...]], ...
    ] = field(default=())
    domains: Tuple[Tuple[str, str], ...] = field(default=())


def _int_arg(args: Dict[str, Any], name: str, default: int, lo: int, hi: int) -> int:
    value = args.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"argument {name!r} must be an integer")
    if not lo <= value <= hi:
        raise ConfigurationError(
            f"argument {name!r} must be in [{lo}, {hi}], got {value}"
        )
    return value


def _build_call_loop(args: Dict[str, Any]) -> ProgramImage:
    count = _int_arg(args, "count", 4, 1, MAX_COUNT)
    target = _int_arg(args, "target_ring", 0, 0, 4)
    callee = f"gate{target}"
    caller = f"cl{count}r{target}"
    callee_source = f"""
        .seg    {callee}
        .gates  1
entry:: return  pr4|0
"""
    caller_source = f"""
        .seg    {caller}
main::  lda     ={count}
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  {callee}$entry
"""
    callee_acl = (
        AclEntry("*", RingBracketSpec.procedure(target, callable_from=MAX_RING)),
    )
    return ProgramImage(
        key=caller,
        segments=(
            (f">serve>{callee}", callee_source, callee_acl),
            (f">serve>{caller}", caller_source, _CALLER_ACL),
        ),
        entry=f"{caller}$main",
    )


def _build_compute(args: Dict[str, Any]) -> ProgramImage:
    n = _int_arg(args, "n", 64, 1, MAX_ITER)
    name = f"cp{n}"
    source = f"""
        .seg    {name}
main::  ldq     ={n}
        lda     ={n}
loop:   sba     =1
        tnz     loop
        halt
"""
    return ProgramImage(
        key=name,
        segments=((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
    )


def _build_echo(args: Dict[str, Any]) -> ProgramImage:
    value = _int_arg(args, "value", 0, 0, MAX_VALUE)
    name = f"ec{value}"
    source = f"""
        .seg    {name}
main::  lda     ={value}
        halt
"""
    return ProgramImage(
        key=name,
        segments=((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
    )


# -- the paper's "use of rings" stories (pp. 34-37) -------------------------


def _build_mutual_suspicion(args: Dict[str, Any]) -> ProgramImage:
    attacker = _int_arg(args, "attacker_ring", 3, 2, 3)
    victim = 5 - attacker  # the other vendor: 2 <-> 3
    spy = f"ms_spy{attacker}"
    driver = f"ms_drv{attacker}"
    spy_source = f"""
        .seg    {spy}
        .gates  1
spy::   lda     l_v,*
        return  pr4|0
l_v:    .its    ms_sec{victim}
"""
    driver_source = f"""
        .seg    {driver}
main::  eap4    back
        call    l_spy,*
back:   halt
l_spy:  .its    {spy}$spy
"""
    spy_acl = (
        AclEntry("*", RingBracketSpec.procedure(attacker, callable_from=MAX_RING)),
    )
    return ProgramImage(
        key=driver,
        segments=(
            (f">serve>{spy}", spy_source, spy_acl),
            (f">serve>{driver}", driver_source, _CALLER_ACL),
        ),
        entry=f"{driver}$main",
        data_segments=(
            (
                ">serve>ms_sec2",
                (0o101,),
                (AclEntry("*", RingBracketSpec.data(2)),),
            ),
            (
                ">serve>ms_sec3",
                (0o102,),
                (AclEntry("*", RingBracketSpec.data(3)),),
            ),
        ),
    )


#: Alice's three-instruction trade secret: f(x) = 4x + 7, execute-only
_PROPRIETARY_GATE = """
        .seg    pp_magic
        .gates  1
compute:: als   2
        ada     =7
        return  pr4|0
"""

_PROPRIETARY_ACL = (
    AclEntry(
        "*",
        RingBracketSpec(
            r1=4, r2=4, r3=MAX_RING, read=False, execute=True, gate=1
        ),
    ),
)


def _build_proprietary(args: Dict[str, Any]) -> ProgramImage:
    value = _int_arg(args, "value", 5, 0, MAX_VALUE)
    peek = _int_arg(args, "peek", 0, 0, 1)
    if peek:
        name = "pp_peek"
        source = f"""
        .seg    {name}
main::  lda     l_code,*
        halt
l_code: .its    pp_magic
"""
    else:
        name = f"pp_cl{value}"
        source = f"""
        .seg    {name}
main::  lda     ={value}
        eap4    back
        call    l_magic,*
back:   halt
l_magic: .its   pp_magic$compute
"""
    return ProgramImage(
        key=name,
        segments=(
            (">serve>pp_magic", _PROPRIETARY_GATE, _PROPRIETARY_ACL),
            (f">serve>{name}", source, _CALLER_ACL),
        ),
        entry=f"{name}$main",
    )


#: grading-sandbox students, by variant: honest / calls a guarded
#: inner-ring gate from ring 6 / scribbles on the grader's stack.  The
#: original example's gate cheat targeted ``svc$write``; serving
#: machines run without the service segments, so the same escape is
#: attempted against an in-catalog guarded ring-1 gate whose extension
#: also stops at ring 5.
_STUDENTS = {
    0: """
        .seg    gs_stu0
        .gates  1
solve:: ada     =37
        return  pr4|0
""",
    1: """
        .seg    gs_stu1
        .gates  1
solve:: eap4    back
        call    l_svc,*
back:   return  pr4|0
l_svc:  .its    gs_guard$entry
""",
    2: """
        .seg    gs_stu2
        .gates  1
solve:: lda     =0
        sta     pr6|1
        return  pr4|0
""",
}

_GUARDED_GATE = """
        .seg    gs_guard
        .gates  1
entry:: return  pr4|0
"""


def _build_grading_sandbox(args: Dict[str, Any]) -> ProgramImage:
    variant = _int_arg(args, "variant", 0, 0, 2)
    student = f"gs_stu{variant}"
    grader = f"gs_gr{variant}"
    grader_source = f"""
        .seg    {grader}
main::  lda     =5
        eap4    back
        call    l_student,*
back:   sba     =42
        halt
l_student: .its {student}$solve
"""
    student_acl = (AclEntry("*", RingBracketSpec.procedure(6)),)
    guard_acl = (
        AclEntry("*", RingBracketSpec.procedure(1, callable_from=MAX_RING)),
    )
    return ProgramImage(
        key=grader,
        segments=(
            (">serve>gs_guard", _GUARDED_GATE, guard_acl),
            (f">serve>{student}", _STUDENTS[variant], student_acl),
            (f">serve>{grader}", grader_source, _CALLER_ACL),
        ),
        entry=f"{grader}$main",
    )


def _build_debug(args: Dict[str, Any]) -> ProgramImage:
    value = _int_arg(args, "value", 123, 0, MAX_VALUE)
    name = f"db_wr{value}"
    source = f"""
        .seg    {name}
main::  lda     ={value}
        sta     l_wild,*
        halt
l_wild: .its    db_prec
"""
    return ProgramImage(
        key=name,
        segments=((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
        data_segments=(
            (
                ">serve>db_prec",
                (7, 7, 7, 7),
                (AclEntry("*", RingBracketSpec.data(4)),),
            ),
        ),
    )


_LAYERED_CORE = """
        .seg    ls_core
        .gates  1
prim::  aos     l_calls,*
        ada     =1000
        return  pr4|0
l_calls: .its   ls_coredata
"""

_LAYERED_LAYER1 = """
        .seg    ls_layer1
        .gates  1
serve:: eap6    pr0|0
        spr4    pr6|1
        ada     =100
        eap4    back
        call    l_prim,*
back:   eap4    pr6|1,*
        return  pr4|0
l_prim: .its    ls_core$prim
"""


def _build_layered(args: Dict[str, Any]) -> ProgramImage:
    n = _int_arg(args, "n", 1, 0, MAX_VALUE)
    direct = _int_arg(args, "direct", 0, 0, 1)
    core_acl = (
        AclEntry("*", RingBracketSpec.procedure(0, callable_from=1)),
    )
    layer1_acl = (
        AclEntry("*", RingBracketSpec.procedure(1, callable_from=MAX_RING)),
    )
    layers = (
        (">serve>ls_core", _LAYERED_CORE, core_acl),
        (">serve>ls_layer1", _LAYERED_LAYER1, layer1_acl),
    )
    coredata = (
        (
            ">serve>ls_coredata",
            (0,),
            (AclEntry("*", RingBracketSpec.data(0)),),
        ),
    )
    if direct:
        name = "ls_dir"
        source = f"""
        .seg    {name}
main::  eap4    back
        call    l_prim,*
back:   halt
l_prim: .its    ls_core$prim
"""
    else:
        name = f"ls_app{n}"
        source = f"""
        .seg    {name}
main::  lda     ={n}
        eap4    back
        call    l_serve,*
back:   halt
l_serve: .its   ls_layer1$serve
"""
    return ProgramImage(
        key=name,
        segments=layers + ((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
        data_segments=coredata,
    )


def _build_attack(args: Dict[str, Any]) -> ProgramImage:
    from ..adversary.corpus import (
        DEFAULT_SEED,
        MAX_ATTACK_RING,
        MIN_ATTACK_RING,
        build_attack,
    )

    family = args.get("family")
    if not isinstance(family, str):
        raise ConfigurationError(
            "argument 'family' must be an attack-family name"
        )
    seed = _int_arg(args, "seed", DEFAULT_SEED, 0, 1 << 31)
    ring = _int_arg(args, "ring", 4, MIN_ATTACK_RING, MAX_ATTACK_RING)
    program = build_attack(family, seed, ring)
    return ProgramImage(
        key=f"adv_{program.name}",
        segments=program.segments,
        entry=program.entry,
        data_segments=program.data_segments,
        domains=program.domains,
    )


#: program name -> builder(args) -> ProgramImage
CATALOG: Dict[str, Callable[[Dict[str, Any]], ProgramImage]] = {
    "call_loop": _build_call_loop,
    "compute": _build_compute,
    "echo": _build_echo,
    "mutual_suspicion": _build_mutual_suspicion,
    "proprietary": _build_proprietary,
    "grading_sandbox": _build_grading_sandbox,
    "debug": _build_debug,
    "layered": _build_layered,
    "attack": _build_attack,
}

#: per-program accepted argument names; anything else is a bad request
KNOWN_ARGS: Dict[str, set] = {
    "call_loop": {"count", "target_ring"},
    "compute": {"n"},
    "echo": {"value"},
    "mutual_suspicion": {"attacker_ring"},
    "proprietary": {"value", "peek"},
    "grading_sandbox": {"variant"},
    "debug": {"value"},
    "layered": {"n", "direct"},
    "attack": {"family", "seed", "ring"},
}


def install_image(machine, process, image: ProgramImage) -> str:
    """Install one catalog variant on a standalone machine.

    The serving worker's equivalent lives in
    :meth:`repro.serve.workers.GateCallEngine.entry_for`; this is the
    examples' side of the same contract — store each segment at most
    once per machine, initiate each at most once per process — and it
    returns the ``segment$symbol`` entry reference to run.
    """
    for path, source, acl in image.segments:
        if not machine.fs.exists(path):
            machine.store_program(path, source, acl=list(acl))
    for path, values, acl in image.data_segments:
        if not machine.fs.exists(path):
            machine.store_data(path, list(values), acl=list(acl))
    for name, domain in image.domains:
        machine.assign_domain(name, domain)
    for path, _, _ in image.segments + image.data_segments:
        if path.split(">")[-1] not in process.known:
            machine.initiate(process, path)
    return image.entry


def build_program(name: str, args: Dict[str, Any]) -> ProgramImage:
    """Resolve a catalog name + args into an installable variant.

    Raises ``KeyError`` for an unknown name (the gateway answers
    ``unknown_program``) and ``ConfigurationError`` for bad arguments.
    """
    try:
        builder = CATALOG[name]
    except KeyError:
        raise KeyError(name) from None
    if not isinstance(args, dict):
        raise ConfigurationError("args must be a JSON object")
    unknown = set(args) - KNOWN_ARGS[name]
    if unknown:
        raise ConfigurationError(
            f"unknown argument(s) {sorted(unknown)} for program {name!r}"
        )
    return builder(args)
