"""Named gate-call programs a gateway caller may invoke.

Callers never ship code across the wire — they name a program from this
catalog and pass small integer arguments.  Each entry builds assembly
source parameterised by those arguments; the worker assembles and
installs a variant once per distinct argument set (segment names encode
the variant, so installs are idempotent per machine) and reuses it for
every later call.

Programs:

``call_loop``
    the Figure 8 cross-ring call loop: ``count`` call/return pairs from
    the session's ring into a ``target_ring`` gate.  The service the
    paper is about, in its purest form.
``compute``
    a pure in-ring arithmetic loop of ``n`` iterations — traffic that
    exercises the interpreter without any ring crossings, for mixing
    with ``call_loop`` load.
``echo``
    load ``value`` into the A register and halt — the cheapest possible
    request, useful for measuring gateway overhead.

Every builder validates its arguments and raises
:class:`~repro.errors.ConfigurationError` on misuse; the gateway maps
that to a ``bad_request`` response before any worker is involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from ..core.acl import AclEntry, RingBracketSpec
from ..errors import ConfigurationError

#: rings a session (and hence a catalog program) may execute in: the
#: caller segments carry execute bracket [1, 5]
MIN_RING = 1
MAX_RING = 5

#: bounds on integer arguments (immediates must fit the address field,
#: and a single call must stay comfortably inside the per-call step cap)
MAX_COUNT = 4096
MAX_ITER = 200000
MAX_VALUE = 65535

#: every caller segment is executable in rings 1..5 by every user
_CALLER_ACL = (AclEntry("*", RingBracketSpec.procedure(MIN_RING, top=MAX_RING)),)


@dataclass(frozen=True)
class ProgramImage:
    """What a worker installs for one program variant.

    ``key`` identifies the variant (program name + canonical args);
    ``segments`` is a tuple of ``(path, source, acl)`` to assemble and
    store; ``entry`` is the ``segment$symbol`` reference to run.
    """

    key: str
    segments: Tuple[Tuple[str, str, Tuple[AclEntry, ...]], ...]
    entry: str


def _int_arg(args: Dict[str, Any], name: str, default: int, lo: int, hi: int) -> int:
    value = args.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"argument {name!r} must be an integer")
    if not lo <= value <= hi:
        raise ConfigurationError(
            f"argument {name!r} must be in [{lo}, {hi}], got {value}"
        )
    return value


def _build_call_loop(args: Dict[str, Any]) -> ProgramImage:
    count = _int_arg(args, "count", 4, 1, MAX_COUNT)
    target = _int_arg(args, "target_ring", 0, 0, 4)
    callee = f"gate{target}"
    caller = f"cl{count}r{target}"
    callee_source = f"""
        .seg    {callee}
        .gates  1
entry:: return  pr4|0
"""
    caller_source = f"""
        .seg    {caller}
main::  lda     ={count}
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  {callee}$entry
"""
    callee_acl = (
        AclEntry("*", RingBracketSpec.procedure(target, callable_from=MAX_RING)),
    )
    return ProgramImage(
        key=caller,
        segments=(
            (f">serve>{callee}", callee_source, callee_acl),
            (f">serve>{caller}", caller_source, _CALLER_ACL),
        ),
        entry=f"{caller}$main",
    )


def _build_compute(args: Dict[str, Any]) -> ProgramImage:
    n = _int_arg(args, "n", 64, 1, MAX_ITER)
    name = f"cp{n}"
    source = f"""
        .seg    {name}
main::  ldq     ={n}
        lda     ={n}
loop:   sba     =1
        tnz     loop
        halt
"""
    return ProgramImage(
        key=name,
        segments=((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
    )


def _build_echo(args: Dict[str, Any]) -> ProgramImage:
    value = _int_arg(args, "value", 0, 0, MAX_VALUE)
    name = f"ec{value}"
    source = f"""
        .seg    {name}
main::  lda     ={value}
        halt
"""
    return ProgramImage(
        key=name,
        segments=((f">serve>{name}", source, _CALLER_ACL),),
        entry=f"{name}$main",
    )


#: program name -> builder(args) -> ProgramImage
CATALOG: Dict[str, Callable[[Dict[str, Any]], ProgramImage]] = {
    "call_loop": _build_call_loop,
    "compute": _build_compute,
    "echo": _build_echo,
}


def build_program(name: str, args: Dict[str, Any]) -> ProgramImage:
    """Resolve a catalog name + args into an installable variant.

    Raises ``KeyError`` for an unknown name (the gateway answers
    ``unknown_program``) and ``ConfigurationError`` for bad arguments.
    """
    try:
        builder = CATALOG[name]
    except KeyError:
        raise KeyError(name) from None
    if not isinstance(args, dict):
        raise ConfigurationError("args must be a JSON object")
    known = {"count", "target_ring", "n", "value"}
    unknown = set(args) - known
    if unknown:
        raise ConfigurationError(
            f"unknown argument(s) {sorted(unknown)} for program {name!r}"
        )
    return builder(args)
