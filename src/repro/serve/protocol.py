"""The gateway wire format: JSON lines over TCP.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.  The
framing is deliberately primitive — any language with a socket and a
JSON parser is a client — and mirrors the paper's stance that the gate
interface must be simple enough to check at the boundary.

Client verbs:

``hello``
    ``{"verb": "hello", "user": NAME, "ring": N}`` — authenticate the
    session and bind it to a ring.  Must precede any ``call``.
``call``
    ``{"verb": "call", "id": ID, "program": NAME, "args": {...}}`` —
    execute one named gate call (see :mod:`repro.serve.catalog`) on a
    worker machine, in the session's ring, as the session's user.
``stats``
    gateway counters, merged metrics, and per-worker snapshots.
``bye``
    close the session cleanly.

Responses echo the request ``id`` when one was given and carry
``"ok": true`` plus verb-specific fields, or ``"ok": false`` with an
``error`` code from :class:`ErrorCode`.  Backpressure rejections
(``rate_limited``, ``queue_full``, ``shutting_down``) additionally carry
``retry_after`` (seconds): the client is expected to honour it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..errors import ReproError

#: hard cap on one request line; longer lines are a protocol error
MAX_LINE_BYTES = 1 << 16


class GatewayProtocolError(ReproError):
    """A request line could not be parsed as a protocol message."""


class ErrorCode:
    """Error codes a response's ``error`` field may carry."""

    BAD_REQUEST = "bad_request"
    AUTH_REQUIRED = "auth_required"
    UNKNOWN_PROGRAM = "unknown_program"
    RATE_LIMITED = "rate_limited"
    QUEUE_FULL = "queue_full"
    TIMEOUT = "timeout"
    MACHINE_FAULT = "machine_fault"
    SHUTTING_DOWN = "shutting_down"

    #: the rejection codes that promise a ``retry_after`` hint
    RETRYABLE = (RATE_LIMITED, QUEUE_FULL, SHUTTING_DOWN)


def encode(message: Dict[str, Any]) -> bytes:
    """One message as a JSON line, ready for the socket."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`GatewayProtocolError` for anything that is not a
    single JSON object — the gateway answers those with ``bad_request``
    rather than dying.
    """
    if len(line) > MAX_LINE_BYTES:
        raise GatewayProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise GatewayProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise GatewayProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: Optional[Any] = None, **fields: Any) -> Dict[str, Any]:
    """A success response, echoing the request id when present."""
    response: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(
    code: str, request_id: Optional[Any] = None, **fields: Any
) -> Dict[str, Any]:
    """A failure response carrying an :class:`ErrorCode` code."""
    response: Dict[str, Any] = {"ok": False, "error": code}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response
