"""Persistent-machine workers behind a ``concurrent.futures`` pool.

The fleet driver (:mod:`repro.sim.fleet`) builds a fresh machine per
shard — right for batch sweeps, far too slow for serving (machine
construction costs more than a small gate call).  The gateway instead
keeps one :class:`~repro.sim.machine.Machine` alive per pool worker and
routes every request to whichever worker is free; programs and user
processes are installed lazily and cached for the worker's lifetime.

Worker state lives in a ``threading.local``: a process-backend worker
runs tasks on its single main thread (one machine per process), a
thread-backend worker gets one machine per pool thread.  Jobs and
results are plain dicts so the process boundary is one pickle of small
ints and strings either way.

Every result carries the per-call :class:`MetricsSnapshot` delta *and*
the worker's own cumulative totals.  The gateway sums the deltas per
worker; the ``stats`` verb then cross-checks its sums against what the
workers themselves counted — the same merge-exactness contract the
fleet's ``verify_merge`` pins, held across a network boundary.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Dict

from ..cpu.faults import Fault
from ..errors import ConfigurationError, ReproError
from ..sim.machine import Machine
from ..sim.metrics import MetricsSnapshot
from .catalog import build_program
from .protocol import ErrorCode

BACKENDS = ("process", "thread")

#: per-call step cap: generous for any catalog program, small enough
#: that a runaway variant cannot wedge a worker for long
MAX_STEPS_PER_CALL = 2_000_000

_LOCAL = threading.local()


class _WorkerState:
    """One worker's machine plus its caches and cumulative counters."""

    def __init__(self) -> None:
        self.machine = Machine(services=False)
        self.worker_id = f"pid{os.getpid()}-t{threading.get_ident()}"
        self.processes: Dict[str, Any] = {}  # username -> Process
        self.installed: Dict[str, str] = {}  # variant key -> entry ref
        self.stored_paths: set = set()
        self.initiated: set = set()  # (username, variant key)
        self.calls = 0
        self.total = MetricsSnapshot.zero()

    def process_for(self, user: str):
        process = self.processes.get(user)
        if process is None:
            registered = self.machine.add_user(user)
            process = self.machine.login(registered)
            self.processes[user] = process
        return process

    def entry_for(self, program: str, args: Dict[str, Any], user: str) -> str:
        """Install (at most once) and return the variant's entry ref.

        Segment storage is per machine; initiation is per process —
        ``self.initiated`` tracks it per (user, variant).
        """
        image = build_program(program, args)
        process = self.process_for(user)
        if image.key not in self.installed:
            for path, source, acl in image.segments:
                if path not in self.stored_paths:
                    self.machine.store_program(path, source, acl=list(acl))
                    self.stored_paths.add(path)
            self.installed[image.key] = image.entry
        if (user, image.key) not in self.initiated:
            for path, _, _ in image.segments:
                self.machine.initiate(process, path)
            self.initiated.add((user, image.key))
        return self.installed[image.key]


def _state() -> _WorkerState:
    state = getattr(_LOCAL, "state", None)
    if state is None:
        state = _WorkerState()
        _LOCAL.state = state
    return state


def worker_ping(token: int) -> Dict[str, Any]:
    """Liveness probe; also forces lazy machine construction."""
    state = _state()
    return {"worker": state.worker_id, "token": token}


def execute_gate_call(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one gate call on this worker's persistent machine.

    ``job`` carries ``user``, ``ring``, ``program``, ``args``.  Returns
    a result dict with either ``payload`` + ``metrics`` (success) or
    ``error`` + ``detail`` (a simulated fault or bad arguments that
    slipped past the gateway's early validation).  Only successful calls
    touch the cumulative counters, on both sides, so the gateway/worker
    cross-check stays exact.
    """
    state = _state()
    try:
        entry = state.entry_for(job["program"], job["args"], job["user"])
        process = state.process_for(job["user"])
        result = state.machine.run(
            process, entry, ring=job["ring"], max_steps=MAX_STEPS_PER_CALL
        )
    except Fault as exc:
        return {
            "worker": state.worker_id,
            "error": ErrorCode.MACHINE_FAULT,
            "detail": str(exc),
        }
    except KeyError as exc:
        return {
            "worker": state.worker_id,
            "error": ErrorCode.UNKNOWN_PROGRAM,
            "detail": f"unknown program {exc}",
        }
    except ReproError as exc:
        return {
            "worker": state.worker_id,
            "error": ErrorCode.BAD_REQUEST,
            "detail": str(exc),
        }
    metrics = result.metrics
    state.calls += 1
    state.total = state.total.plus(metrics)
    return {
        "worker": state.worker_id,
        "payload": {
            "halted": result.halted,
            "a": result.a,
            "q": result.q,
            "ring": result.ring,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ring_crossings": result.ring_crossings,
        },
        "metrics": metrics.as_dict(),
        "worker_calls": state.calls,
        "worker_total": metrics_architectural(state.total),
    }


def metrics_architectural(snapshot: MetricsSnapshot) -> Dict[str, int]:
    """The architectural counters of ``snapshot`` as a plain dict."""
    return snapshot.architectural()


class WorkerPool:
    """A pool of persistent-machine workers.

    ``backend`` is ``"process"`` (real parallelism) or ``"thread"``
    (GIL-bound but dependency-free); hosts where process pools cannot be
    created or probed fall back to threads with identical results,
    mirroring the fleet driver's serial fallback.
    """

    def __init__(self, workers: int = 4, backend: str = "process"):
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown worker backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        self.workers = workers
        self.backend = backend
        self.executor = self._build_executor()

    def _build_executor(self) -> Executor:
        if self.backend == "process":
            try:
                executor = ProcessPoolExecutor(max_workers=self.workers)
                # Probe one task end to end: pool creation succeeds on
                # some hosts where the first real submit then dies.
                executor.submit(worker_ping, 0).result(timeout=60)
                return executor
            except (OSError, PermissionError, BrokenExecutor):
                self.backend = "thread (process pool unavailable)"
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ringworker"
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; with ``wait`` the in-flight calls finish."""
        self.executor.shutdown(wait=wait, cancel_futures=not wait)
