"""Persistent-machine workers behind a ``concurrent.futures`` pool.

The fleet driver (:mod:`repro.sim.fleet`) builds a fresh machine per
shard — right for batch sweeps, far too slow for serving (machine
construction costs more than a small gate call).  The gateway instead
keeps one :class:`~repro.sim.machine.Machine` alive per pool worker and
routes every request to whichever worker is free; programs and user
processes are installed lazily and cached for the worker's lifetime.

The machine-facing half lives in :class:`GateCallEngine` — a machine
plus its program/process caches and cumulative counters, with no pool
plumbing — so the recovery replayer (:mod:`repro.state.recover`) can
drive the exact same code path the serving workers use.  Worker state
(an engine plus its journal and checkpoint files) lives in a
``threading.local``: a process-backend worker runs tasks on its single
main thread (one machine per process), a thread-backend worker gets one
machine per pool thread.  Jobs and results are plain dicts so the
process boundary is one pickle of small ints and strings either way.

With a :class:`DurabilityConfig` installed, each worker claims a *slot*
— a directory holding its write-ahead journal and periodic snapshots —
and every executed call is journaled before the result is returned.  A
replacement worker that claims the slot of a crashed one restores the
snapshot, replays the journal tail, and resumes with the dead worker's
machine state and counters intact; the ``generation`` counter in each
result tells the gateway a restart happened so it can re-baseline its
cross-check sums.

Every result carries the per-call :class:`MetricsSnapshot` delta *and*
the worker's own cumulative totals.  The gateway sums the deltas per
worker; the ``stats`` verb then cross-checks its sums against what the
workers themselves counted — the same merge-exactness contract the
fleet's ``verify_merge`` pins, held across a network boundary.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cpu.faults import Fault
from ..errors import ConfigurationError, ReproError
from ..hardening import HARDENING_FLAGS, HardeningConfig
from ..sim.machine import Machine
from ..sim.metrics import MetricsSnapshot
from ..state.journal import JournalWriter
from ..state.recover import JOURNAL_NAME, SNAPSHOT_NAME, recover_slot
from ..state.snapshot import snapshot_machine, write_snapshot_file
from .catalog import build_program
from .protocol import ErrorCode

BACKENDS = ("process", "thread")

#: selectable worker machine profiles: ``ringed`` runs the paper's ring
#: hardware; ``baseline645`` runs the GE-645 trap machine, where every
#: ring crossing is completed by the software assist at
#: ``SOFT_CROSSING_CYCLES`` apiece.  Protection verdicts are identical
#: (validation precedes the trap); only the crossing cost differs —
#: which is exactly what the live A/B measures.
MACHINE_PROFILES = ("ringed", "baseline645")

_MACHINE_PROFILE = "ringed"

#: hardening extensions enabled for engines built in this process, as a
#: tuple of flag names from :data:`~repro.hardening.HARDENING_FLAGS`
_HARDENING: Tuple[str, ...] = ()

#: per-call step cap: generous for any catalog program, small enough
#: that a runaway variant cannot wedge a worker for long
MAX_STEPS_PER_CALL = 2_000_000

#: bound on the per-worker duplicate-suppression cache; a retried call
#: older than this many calls re-executes instead (harmless — catalog
#: programs are idempotent per invocation)
RECENT_CALLS = 512

_LOCAL = threading.local()


def configure_machine_profile(profile: str) -> None:
    """Select the machine profile for engines built in this process.

    Like :func:`configure_durability`, this is process-level state: the
    thread backend calls it directly, process-pool children get it via
    :func:`_init_worker`.  Restored engines keep the profile of the
    machine that was snapshotted (``hardware_rings`` is serialized), so
    recovery is unaffected.
    """
    global _MACHINE_PROFILE
    if profile not in MACHINE_PROFILES:
        raise ConfigurationError(
            f"unknown machine profile {profile!r}; expected one of "
            f"{MACHINE_PROFILES}"
        )
    _MACHINE_PROFILE = profile


def machine_profile() -> str:
    """The machine profile engines in this process are built with."""
    return _MACHINE_PROFILE


def hardware_rings_enabled() -> bool:
    """Whether new engine machines run the ring hardware."""
    return _MACHINE_PROFILE != "baseline645"


def configure_hardening(flags: Tuple[str, ...]) -> None:
    """Select the hardening extensions for engines built in this process.

    Process-level state like the machine profile: the thread backend
    calls it directly, process-pool children get it via
    :func:`_init_worker`.  Restored engines keep the hardening of the
    machine that was snapshotted (the config is serialized).
    """
    global _HARDENING
    flags = tuple(flags)
    for flag in flags:
        if flag not in HARDENING_FLAGS:
            raise ConfigurationError(
                f"unknown hardening flag {flag!r}; expected a subset of "
                f"{HARDENING_FLAGS}"
            )
    _HARDENING = flags


def hardening_flags() -> Tuple[str, ...]:
    """The hardening flags engines in this process are built with."""
    return _HARDENING


class GateCallEngine:
    """One machine plus its call caches and cumulative counters.

    Everything a gate call touches and nothing the pool owns: the
    serving workers and the journal replayer both execute calls through
    :meth:`run_job`, which is what makes ``snapshot + replay`` land on
    the same machine state the crashed worker had.
    """

    def __init__(self, machine: Optional[Machine] = None):
        # Serving machines run the full tier stack: the trace-compile
        # tier plus the fast-gate entry path, so repeat (user, gate)
        # calls skip re-validation and enter compiled traces directly.
        # Architectural figures are identical either way.
        self.machine = (
            machine
            if machine is not None
            else Machine(
                services=False,
                jit_tier_enabled=True,
                fast_gate=True,
                hardware_rings=hardware_rings_enabled(),
                hardening=HardeningConfig.from_flags(hardening_flags()),
            )
        )
        self.processes: Dict[str, Any] = {}  # username -> Process
        self.installed: Dict[str, str] = {}  # variant key -> entry ref
        self.stored_paths: set = set()
        self.initiated: set = set()  # (username, variant key)
        self._images: Dict[str, Any] = {}  # build_program memo
        self.calls = 0
        self.total = MetricsSnapshot.zero()

    def process_for(self, user: str):
        """The user's logged-in process, created on first reference."""
        process = self.processes.get(user)
        if process is None:
            registered = self.machine.add_user(user)
            process = self.machine.login(registered)
            self.processes[user] = process
        return process

    def entry_for(self, program: str, args: Dict[str, Any], user: str) -> str:
        """Install (at most once) and return the variant's entry ref.

        Segment storage is per machine; initiation is per process —
        ``self.initiated`` tracks it per (user, path), because variants
        can share segments (every ``call_loop`` variant with the same
        target ring reuses one gate segment) and a process may initiate
        each name only once.

        ``build_program`` is pure in ``(program, args)``, so repeat
        calls reuse the memoized image — part of the fast-gate path:
        a repeat (user, gate) call does no assembly work at all.
        """
        memo_key = program + "\0" + json.dumps(args, sort_keys=True)
        image = self._images.get(memo_key)
        if image is None:
            image = self._images[memo_key] = build_program(program, args)
        process = self.process_for(user)
        if image.key not in self.installed:
            for path, source, acl in image.segments:
                if path not in self.stored_paths:
                    self.machine.store_program(path, source, acl=list(acl))
                    self.stored_paths.add(path)
            for path, values, acl in image.data_segments:
                if path not in self.stored_paths:
                    self.machine.store_data(path, list(values), acl=list(acl))
                    self.stored_paths.add(path)
            for name, domain in image.domains:
                # no-op unless this machine runs ring_domains; done
                # before any initiation so the binding is in force the
                # first time a tier validates the segment
                self.machine.assign_domain(name, domain)
            self.installed[image.key] = image.entry
        for path, _, _ in image.segments + image.data_segments:
            if (user, path) not in self.initiated:
                self.machine.initiate(process, path)
                self.initiated.add((user, path))
        return self.installed[image.key]

    def run_job(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Run one gate call; returns the core result dict.

        ``job`` carries ``user``, ``ring``, ``program``, ``args``.  The
        result holds either ``payload`` + ``metrics`` (success) or
        ``error`` + ``detail`` (a simulated fault or bad arguments that
        slipped past the gateway's early validation).  Only successful
        calls touch the cumulative counters, on both sides, so the
        gateway/worker cross-check stays exact.  Failed calls can still
        move machine state (partial execution before the fault), which
        is why the journal records them too.
        """
        try:
            entry = self.entry_for(job["program"], job["args"], job["user"])
            process = self.process_for(job["user"])
            result = self.machine.run(
                process, entry, ring=job["ring"], max_steps=MAX_STEPS_PER_CALL
            )
        except Fault as exc:
            return {"error": ErrorCode.MACHINE_FAULT, "detail": str(exc)}
        except KeyError as exc:
            return {
                "error": ErrorCode.UNKNOWN_PROGRAM,
                "detail": f"unknown program {exc}",
            }
        except ReproError as exc:
            return {"error": ErrorCode.BAD_REQUEST, "detail": str(exc)}
        metrics = result.metrics
        self.calls += 1
        self.total = self.total.plus(metrics)
        return {
            "payload": {
                "halted": result.halted,
                "a": result.a,
                "q": result.q,
                "ring": result.ring,
                "instructions": result.instructions,
                "cycles": result.cycles,
                "ring_crossings": result.ring_crossings,
            },
            "metrics": metrics.as_dict(),
        }

    def bookkeeping(self) -> Dict[str, Any]:
        """The engine's non-machine state, JSON-shaped for a snapshot."""
        return {
            "installed": dict(self.installed),
            "stored_paths": sorted(self.stored_paths),
            "initiated": sorted(list(pair) for pair in self.initiated),
            "calls": self.calls,
            "counters": self.total.as_dict(),
        }

    @classmethod
    def from_snapshot(
        cls, snap: Dict[str, Any], **tier_knobs: Any
    ) -> "GateCallEngine":
        """Rebuild an engine from a machine snapshot's ``extra`` block.

        ``tier_knobs`` are forwarded to
        :func:`~repro.state.snapshot.restore_machine` — host-tier
        overrides only, architecturally invisible by contract.
        """
        from ..state.snapshot import restore_machine

        machine = restore_machine(snap, **tier_knobs)
        engine = cls(machine)
        engine.processes = {
            p.user.name: p for p in machine.supervisor.processes
        }
        book = snap.get("extra", {}).get("engine")
        if book:
            engine.installed = dict(book["installed"])
            engine.stored_paths = set(book["stored_paths"])
            engine.initiated = {tuple(pair) for pair in book["initiated"]}
            engine.calls = int(book["calls"])
            engine.total = MetricsSnapshot.from_dict(book["counters"])
        return engine


@dataclass(frozen=True)
class DurabilityConfig:
    """How workers persist their state (picklable — it crosses the
    process-pool boundary as an initializer argument).

    ``slots`` bounds how many concurrent workers may claim state
    directories under ``dir``; ``checkpoint_interval`` is in executed
    calls; ``fsync_every`` batches journal fsyncs (a crash can lose at
    most ``fsync_every - 1`` journaled calls, which the gateway's
    at-least-once retry absorbs).
    """

    dir: str
    slots: int
    checkpoint_interval: int = 64
    fsync_every: int = 8

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ConfigurationError("durability slots must be positive")
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.fsync_every <= 0:
            raise ConfigurationError("fsync_every must be positive")


_DURABILITY: Optional[DurabilityConfig] = None

#: slot indices owned by live workers of *this* process.  The claim
#: files carry only a pid, which cannot tell one thread (or pool
#: generation) of our own process from another — this set can.
_LIVE_SLOTS: set = set()
_LIVE_LOCK = threading.Lock()


def configure_durability(config: Optional[DurabilityConfig]) -> None:
    """Install the durability config for workers created in this process.

    Used directly for the thread backend; process-pool children go
    through :func:`_init_worker`, which also clears forked-in state.
    """
    global _DURABILITY
    _DURABILITY = config


def _init_worker(
    config: Optional[DurabilityConfig],
    profile: str = "ringed",
    hardening: Tuple[str, ...] = (),
) -> None:
    """Process-pool child initializer.

    A forked child inherits the parent's module state wholesale —
    including a worker state the parent built by calling
    :func:`execute_gate_call` directly (its worker id names the
    *parent's* pid, its machine carries the parent's history, and it
    predates any durability config) and the parent's live-slot set.
    Serving from that inherited state would make every child report
    under one stale worker key and bypass durability entirely, so drop
    it: this process builds its own state on first call.
    """
    _LOCAL.state = None
    with _LIVE_LOCK:
        _LIVE_SLOTS.clear()
    configure_durability(config)
    configure_machine_profile(profile)
    configure_hardening(hardening)


def release_live_slots() -> None:
    """Forget this process's slot claims (pool fully shut down).

    Thread-backend pools leave claim files naming our own (live) pid;
    without this, a successor pool in the same process could never
    reclaim them.  Call only after the executor has drained.
    """
    with _LIVE_LOCK:
        _LIVE_SLOTS.clear()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _try_claim(slot: int, slot_dir: str) -> bool:
    """Claim one slot directory, stealing it from a dead owner if needed.

    The claim file holds the owner's pid.  ``O_CREAT | O_EXCL`` makes
    creation race-free; a steal renames the stale claim to a unique name
    first, so exactly one of several would-be stealers wins the rename
    and proceeds to the exclusive create.
    """
    claim = os.path.join(slot_dir, "claim")
    with _LIVE_LOCK:
        if slot in _LIVE_SLOTS:
            return False
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                with open(claim, "r") as handle:
                    owner = int(handle.read().strip() or "0")
            except (OSError, ValueError):
                owner = 0
            if owner and owner != os.getpid() and _pid_alive(owner):
                return False
            # dead owner, or a stale claim left by an earlier pool of
            # our own process: steal it
            stale = f"{claim}.stale-{os.getpid()}-{threading.get_ident()}"
            try:
                os.rename(claim, stale)
            except OSError:
                return False  # another stealer won
            os.unlink(stale)
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
        with os.fdopen(fd, "w") as handle:
            handle.write(str(os.getpid()))
            handle.flush()
            os.fsync(handle.fileno())
        _LIVE_SLOTS.add(slot)
        return True


def _claim_slot(config: DurabilityConfig) -> Tuple[int, str]:
    """Claim any free slot, waiting briefly for one to open up.

    The wait covers the recovery window where a crashed worker's pid
    has not yet been reaped while its replacement is already starting.
    """
    slots_root = os.path.join(config.dir, "slots")
    os.makedirs(slots_root, exist_ok=True)
    deadline = time.monotonic() + 10.0
    while True:
        for slot in range(config.slots):
            slot_dir = os.path.join(slots_root, f"slot-{slot}")
            os.makedirs(slot_dir, exist_ok=True)
            if _try_claim(slot, slot_dir):
                return slot, slot_dir
        if time.monotonic() >= deadline:
            raise ConfigurationError(
                f"no free durability slot under {slots_root!r} "
                f"(all {config.slots} claimed by live processes)"
            )
        time.sleep(0.1)


def _bump_generation(slot_dir: str) -> int:
    """Count this claim of the slot; 1 on a fresh slot directory."""
    path = os.path.join(slot_dir, "generation")
    try:
        with open(path, "r") as handle:
            generation = int(handle.read().strip() or "0")
    except (OSError, ValueError):
        generation = 0
    generation += 1
    with open(path, "w") as handle:
        handle.write(str(generation))
        handle.flush()
        os.fsync(handle.fileno())
    return generation


class _WorkerState:
    """One worker's engine plus (optionally) its durability plumbing."""

    def __init__(self) -> None:
        config = _DURABILITY
        self.durability = config
        self.recent: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.calls_since_checkpoint = 0
        if config is None:
            self.engine = GateCallEngine()
            self.worker_id = f"pid{os.getpid()}-t{threading.get_ident()}"
            self.slot: Optional[int] = None
            self.slot_dir = ""
            self.journal: Optional[JournalWriter] = None
            self.generation = 0
            return
        self.slot, self.slot_dir = _claim_slot(config)
        self.worker_id = f"slot{self.slot}"
        self.generation = _bump_generation(self.slot_dir)
        recovery = recover_slot(self.slot_dir)
        self.engine = recovery.engine
        self.recent = recovery.recent
        self._trim_recent()
        self.journal = JournalWriter(
            os.path.join(self.slot_dir, JOURNAL_NAME),
            fsync_every=config.fsync_every,
        )
        if recovery.replayed:
            # the journal tail beyond the last snapshot was replayed;
            # fold the recovered state into a fresh checkpoint so the
            # next crash replays from here instead
            self._checkpoint()

    def _trim_recent(self) -> None:
        while len(self.recent) > RECENT_CALLS:
            self.recent.popitem(last=False)

    def _checkpoint(self) -> None:
        self.journal.sync()
        # Drop the live machine's host caches at the checkpoint
        # boundary: a restored successor starts with cold host tiers
        # (snapshots don't serialize translations, superblocks, or
        # traces), so the live worker must go cold at the same point —
        # otherwise post-checkpoint calls would report different host
        # diagnostics live vs. replayed and verified replay would
        # diverge.  Architectural counters are unaffected.
        self.engine.machine.processor.drop_host_caches()
        extra = {
            "engine": self.engine.bookkeeping(),
            "last_seq": self.journal.last_seq,
            "generation": self.generation,
            "recent_calls": [
                [call_id, result] for call_id, result in self.recent.items()
            ],
        }
        snap = snapshot_machine(self.engine.machine, extra=extra)
        current = os.path.join(self.slot_dir, SNAPSHOT_NAME)
        if os.path.exists(current):
            os.replace(current, current + ".prev")
        write_snapshot_file(snap, current)
        self.calls_since_checkpoint = 0

    def execute(self, job: Dict[str, Any]) -> Dict[str, Any]:
        call_id = job.get("call_id")
        cached = (
            self.recent.get(call_id) if call_id is not None else None
        )
        if cached is not None:
            result = dict(cached)
            result["deduplicated"] = True
        else:
            result = self.engine.run_job(job)
            if self.journal is not None:
                self.journal.append(
                    {
                        "call_id": call_id,
                        "job": {
                            "user": job["user"],
                            "ring": job["ring"],
                            "program": job["program"],
                            "args": job["args"],
                        },
                        "result": result,
                    }
                )
                self.calls_since_checkpoint += 1
                if (
                    self.calls_since_checkpoint
                    >= self.durability.checkpoint_interval
                ):
                    self._checkpoint()
            if call_id is not None:
                self.recent[call_id] = result
                self._trim_recent()
        out = dict(result)
        out["worker"] = self.worker_id
        out["pid"] = os.getpid()
        out["generation"] = self.generation
        out["machine_profile"] = (
            "ringed"
            if self.engine.machine.processor.hardware_rings
            else "baseline645"
        )
        out["hardening"] = list(self.engine.machine.hardening.enabled_flags())
        if self.slot is not None:
            out["slot"] = self.slot
        out["worker_calls"] = self.engine.calls
        out["worker_total"] = metrics_architectural(self.engine.total)
        return out


def _state() -> _WorkerState:
    state = getattr(_LOCAL, "state", None)
    if state is None:
        state = _WorkerState()
        _LOCAL.state = state
    return state


def worker_ping(token: int) -> Dict[str, Any]:
    """Liveness probe; also forces lazy machine construction/recovery."""
    state = _state()
    return {
        "worker": state.worker_id,
        "token": token,
        "generation": state.generation,
    }


def execute_gate_call(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one gate call on this worker's persistent machine.

    See :meth:`GateCallEngine.run_job` for the result contract; on top
    of the core result this adds the worker identity fields (``worker``,
    ``pid``, ``generation``, ``slot`` under durability) and the
    cumulative ``worker_calls`` / ``worker_total`` the gateway
    cross-checks against.  Under durability the call is journaled, and
    a ``call_id`` seen before returns the journaled result instead of
    re-executing (``deduplicated: true``).
    """
    return _state().execute(job)


def metrics_architectural(snapshot: MetricsSnapshot) -> Dict[str, int]:
    """The architectural counters of ``snapshot`` as a plain dict."""
    return snapshot.architectural()


class WorkerPool:
    """A pool of persistent-machine workers.

    ``backend`` is ``"process"`` (real parallelism) or ``"thread"``
    (GIL-bound but dependency-free); hosts where process pools cannot be
    created or probed fall back to threads with identical results,
    mirroring the fleet driver's serial fallback.  ``durability``
    installs per-worker journaling and checkpointing (see
    :class:`DurabilityConfig`).
    """

    def __init__(
        self,
        workers: int = 4,
        backend: str = "process",
        durability: Optional[DurabilityConfig] = None,
        machine_profile: str = "ringed",
        hardening: Tuple[str, ...] = (),
    ):
        if workers <= 0:
            raise ConfigurationError("workers must be positive")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown worker backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if machine_profile not in MACHINE_PROFILES:
            raise ConfigurationError(
                f"unknown machine profile {machine_profile!r}; expected "
                f"one of {MACHINE_PROFILES}"
            )
        hardening = tuple(hardening)
        for flag in hardening:
            if flag not in HARDENING_FLAGS:
                raise ConfigurationError(
                    f"unknown hardening flag {flag!r}; expected a subset "
                    f"of {HARDENING_FLAGS}"
                )
        if durability is not None and durability.slots < workers:
            raise ConfigurationError(
                "durability needs at least one slot per worker"
            )
        self.workers = workers
        self.backend = backend
        self.durability = durability
        self.machine_profile = machine_profile
        self.hardening = hardening
        self.executor = self._build_executor()

    def _build_executor(self) -> Executor:
        if self.backend == "process":
            try:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(
                        self.durability,
                        self.machine_profile,
                        self.hardening,
                    ),
                )
                # Probe one task end to end: pool creation succeeds on
                # some hosts where the first real submit then dies.
                executor.submit(worker_ping, 0).result(timeout=60)
                return executor
            except (OSError, PermissionError, BrokenExecutor):
                self.backend = "thread (process pool unavailable)"
        configure_durability(self.durability)
        configure_machine_profile(self.machine_profile)
        configure_hardening(self.hardening)
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="ringworker"
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; with ``wait`` the in-flight calls finish."""
        self.executor.shutdown(wait=wait, cancel_futures=not wait)
        if wait:
            release_live_slots()


class ShardedWorkerPool:
    """N single-worker executors, one per session shard.

    The session layer needs worker *affinity*: a tenant's live machine
    exists in exactly one process, so every call for a user must land
    on the same executor.  A shared multi-worker pool cannot promise
    that — this pool gives each shard its own one-worker executor and
    the gateway routes ``stable_shard(user, shards)`` onto it.

    Backend semantics mirror :class:`WorkerPool`: the process backend
    is probed end to end on shard 0 and the whole pool falls back to
    threads when process pools are unavailable (with the session state
    then keyed by shard index inside the one process — the shard-keyed
    module state in :mod:`repro.serve.sessions` makes both layouts run
    the same code).
    """

    def __init__(
        self,
        shards: int,
        backend: str = "process",
        session: Optional["SessionConfig"] = None,
    ):
        from .sessions import SessionConfig

        if shards <= 0:
            raise ConfigurationError("shards must be positive")
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown worker backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if session is None:
            raise ConfigurationError("sharded pools need a session config")
        if not isinstance(session, SessionConfig):
            raise ConfigurationError(
                "session must be a SessionConfig, got "
                f"{type(session).__name__}"
            )
        self.shards = shards
        self.workers = shards
        self.backend = backend
        self.session = session
        self._thread_configured = False
        self._executors: List[Executor] = [
            self._build_executor(shard) for shard in range(shards)
        ]

    def _build_executor(self, shard: int) -> Executor:
        from .sessions import (
            _init_session_worker,
            configure_sessions,
            session_ping,
        )

        if self.backend == "process":
            try:
                executor = ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_session_worker,
                    initargs=(self.session,),
                )
                executor.submit(session_ping, shard, 0).result(timeout=60)
                return executor
            except (OSError, PermissionError, BrokenExecutor):
                self.backend = "thread (process pool unavailable)"
        if not self._thread_configured:
            configure_sessions(self.session)
            self._thread_configured = True
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"sessionshard{shard}"
        )

    def executor_for(self, shard: int) -> Executor:
        """The executor owning ``shard``."""
        return self._executors[shard]

    def submit(self, shard: int, fn, *args):
        """Submit ``fn(*args)`` onto ``shard``'s executor."""
        return self._executors[shard].submit(fn, *args)

    def shutdown(self, wait: bool = True) -> None:
        """Stop every shard executor."""
        for executor in self._executors:
            executor.shutdown(wait=wait, cancel_futures=not wait)
