"""The session router: consistent-hash front tier over N gateways.

One gateway serves many tenants over few live slots; the router scales
that horizontally.  It speaks the same JSON-lines protocol as the
gateway — clients cannot tell the difference — and forwards each
session's calls to the gateway that owns the session's user on a
:class:`~repro.sim.fleet.ConsistentHashRing`.  Gateways can join and
leave at runtime; consistent hashing moves only the sessions the
membership change re-owns (~K/N on a join), and each moved session is
migrated by **snapshot handoff**: the router tells the old owner to
``park`` the tenant into the shared session store, and the new owner's
next hydration picks the machine up exactly where it stopped —
architectural counters intact, because parked state is exact by
construction.  Migration therefore requires the gateways to share a
``session_store_dir``; without one, a moved session simply starts a
fresh tenant on its new owner (correct, but the counters restart).

The router holds the cross-gateway half of the exactness contract: its
``stats`` verb fans out to every backend, sums the merged architectural
counters, and cross-checks its own per-gateway sums of forwarded call
deltas against each backend's growth since the backend joined — the
same growth-baseline discipline the gateway applies to its workers,
lifted one tier.  The per-backend check is exact while the router is
the backend's only traffic source and no forwarded call timed out
(a timed-out call's delta is counted by the backend but never seen by
the router); the ``consistent`` flag reports it honestly either way.

Backends are ``(host, port)`` addresses.  :meth:`SessionRouter.spawn`
builds an in-process gateway (its workers are still real processes —
the same pool machinery the fleet driver uses) and attaches it, which
is how ``repro serve --gateways N`` assembles a multi-gateway service
in one command.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.fleet import ConsistentHashRing
from ..sim.metrics import MetricsSnapshot
from .gateway import GatewayConfig, RingGateway
from .protocol import (
    ErrorCode,
    GatewayProtocolError,
    MAX_LINE_BYTES,
    decode_line,
    encode,
    error_response,
    ok_response,
)

#: bound on the user -> owner map the router keeps for migration; the
#: ring answers ownership for everyone, this map only remembers who to
#: tell to park when the ring changes
TRACKED_SESSIONS = 1 << 16


@dataclass
class RouterConfig:
    """Everything the router needs to start serving."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick
    #: virtual nodes per gateway on the hash ring
    vnodes: int = 64
    #: per-forwarded-request timeout (covers the backend's own
    #: call_timeout plus queueing)
    call_timeout: float = 30.0


@dataclass
class RouterCounters:
    """Router-level event counters the ``stats`` verb reports."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    calls_forwarded: int = 0
    #: upstream re-binds because the ring re-owned a bound session
    rebinds: int = 0
    #: park handoffs sent during rebalances
    migrations: int = 0
    #: ring membership changes
    rebalances: int = 0
    protocol_errors: int = 0
    bad_requests: int = 0
    upstream_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict, for the ``stats`` payload."""
        return dict(self.__dict__)


class _Upstream:
    """One client connection's bound backend connection."""

    def __init__(self, name: str, host: str, port: int):
        self.name = name
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def open(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port, limit=2 * MAX_LINE_BYTES
        )

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.writer.write(encode(message))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionError(f"gateway {self.name} closed the stream")
        return decode_line(line.strip())

    async def close(self) -> None:
        if self.writer is None:
            return
        self.writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self.writer.wait_closed()
        self.reader = self.writer = None


class SessionRouter:
    """The consistent-hash routing tier.  See the module docstring."""

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        self.counters = RouterCounters()
        self._ring = ConsistentHashRing(vnodes=self.config.vnodes)
        self._backends: Dict[str, Tuple[str, int]] = {}
        #: in-process gateways this router owns (built by :meth:`spawn`)
        self._owned: Dict[str, RingGateway] = {}
        #: users routed recently -> the gateway name they were sent to
        self._session_owners: "OrderedDict[str, str]" = OrderedDict()
        #: per-gateway sums of forwarded (non-deduplicated) call deltas
        self._per_gateway: Dict[str, MetricsSnapshot] = {}
        self._per_gateway_calls: Dict[str, int] = {}
        #: (completed, merged architectural) sampled when each backend
        #: joined — growth baselines, as in the gateway/worker check
        self._baselines: Dict[str, Tuple[int, Dict[str, int]]] = {}
        self._timeouts_seen = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._rebalance_lock = asyncio.Lock()

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigurationError("router is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def gateways(self) -> List[str]:
        """The attached gateway names, sorted."""
        return self._ring.nodes

    async def start(self) -> None:
        """Start accepting client connections."""
        if self._server is not None:
            raise ConfigurationError("router is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=2 * MAX_LINE_BYTES,
        )

    async def stop(self) -> None:
        """Stop the router, then every in-process gateway it owns."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(asyncio.TimeoutError, OSError):
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            self._server = None
        for gateway in self._owned.values():
            await gateway.stop()
        self._owned.clear()

    async def spawn(
        self, name: str, config: GatewayConfig
    ) -> RingGateway:
        """Build, start, and attach an in-process gateway."""
        gateway = RingGateway(config)
        await gateway.start()
        self._owned[name] = gateway
        await self.attach(name, gateway.config.host, gateway.port)
        return gateway

    # -- membership ----------------------------------------------------------

    async def _sample_baseline(self, name: str) -> None:
        """Record the backend's pre-join figures so the cross-check
        compares growth the router itself routed."""
        try:
            stats = await self._one_shot(name, {"verb": "stats"})
        except (OSError, ConnectionError, GatewayProtocolError):
            stats = None
        if stats and stats.get("ok"):
            self._baselines[name] = (
                stats["gateway"]["completed"]
                - stats["gateway"].get("deduplicated_calls", 0),
                dict(stats["architectural"]),
            )
        else:
            self._baselines[name] = (0, {})

    async def attach(self, name: str, host: str, port: int) -> int:
        """Add a gateway to the ring; park re-owned sessions on their
        old owners so the new gateway can hydrate them.  Returns how
        many tracked sessions moved."""
        if not name:
            raise ConfigurationError("gateway name must be non-empty")
        async with self._rebalance_lock:
            if name in self._backends:
                raise ConfigurationError(
                    f"gateway {name!r} is already attached"
                )
            self._backends[name] = (host, port)
            await self._sample_baseline(name)
            self._ring.add(name)
            self.counters.rebalances += 1
            return await self._migrate_moved()

    async def detach(self, name: str) -> int:
        """Remove a gateway from the ring, parking what it owned first
        so the survivors can hydrate the departed gateway's sessions.
        Returns how many tracked sessions moved."""
        async with self._rebalance_lock:
            if name not in self._backends:
                raise ConfigurationError(f"gateway {name!r} is not attached")
            self._ring.remove(name)
            self.counters.rebalances += 1
            moved = await self._migrate_moved()
            self._backends.pop(name)
            owned = self._owned.pop(name, None)
            if owned is not None:
                await owned.stop()
            return moved

    async def _migrate_moved(self) -> int:
        """Park every tracked session whose ring owner changed."""
        moved = 0
        for user, owner in list(self._session_owners.items()):
            try:
                new_owner = self._ring.owner(user)
            except ConfigurationError:
                break  # ring emptied
            if new_owner == owner:
                continue
            if owner in self._backends:
                with contextlib.suppress(
                    OSError, ConnectionError, GatewayProtocolError
                ):
                    await self._one_shot(
                        owner, {"verb": "park", "user": user}
                    )
                    self.counters.migrations += 1
            self._session_owners.pop(user, None)
            moved += 1
        return moved

    async def _one_shot(
        self, name: str, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One request to one backend on a throwaway connection."""
        host, port = self._backends[name]
        upstream = _Upstream(name, host, port)
        await upstream.open()
        try:
            return await asyncio.wait_for(
                upstream.request(message), timeout=self.config.call_timeout
            )
        finally:
            await upstream.close()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters.sessions_opened += 1
        hello: Optional[Dict[str, Any]] = None
        upstream: Optional[_Upstream] = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    self.counters.protocol_errors += 1
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_line(line.strip())
                except GatewayProtocolError as exc:
                    self.counters.protocol_errors += 1
                    writer.write(
                        encode(
                            error_response(
                                ErrorCode.BAD_REQUEST, detail=str(exc)
                            )
                        )
                    )
                    await writer.drain()
                    continue
                response, hello, upstream = await self._handle_message(
                    message, hello, upstream
                )
                writer.write(encode(response))
                await writer.drain()
                if message.get("verb") == "bye":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if upstream is not None:
                await upstream.close()
            self.counters.sessions_closed += 1
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _handle_message(
        self,
        message: Dict[str, Any],
        hello: Optional[Dict[str, Any]],
        upstream: Optional[_Upstream],
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]], Optional[_Upstream]]:
        verb = message.get("verb")
        request_id = message.get("id")
        if verb == "hello":
            user = message.get("user")
            if not isinstance(user, str) or not 1 <= len(user) <= 64:
                self.counters.bad_requests += 1
                return (
                    error_response(
                        ErrorCode.BAD_REQUEST,
                        request_id,
                        detail="hello requires a user name (1..64 chars)",
                    ),
                    hello,
                    upstream,
                )
            # bind lazily: the upstream opens (and replays hello) on
            # the first call, so a rebalance between hello and call
            # still routes to the final owner
            if upstream is not None:
                await upstream.close()
            return (
                ok_response(
                    request_id,
                    verb="hello",
                    user=user,
                    ring=message.get("ring", 4),
                ),
                dict(message),
                None,
            )
        if verb == "call":
            return await self._verb_call(message, hello, upstream)
        if verb == "stats":
            return await self._verb_stats(request_id), hello, upstream
        if verb == "park":
            return await self._verb_park(message), hello, upstream
        if verb == "bye":
            return ok_response(request_id, verb="bye"), hello, upstream
        self.counters.bad_requests += 1
        return (
            error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"unknown verb {verb!r}",
            ),
            hello,
            upstream,
        )

    async def _verb_call(
        self,
        message: Dict[str, Any],
        hello: Optional[Dict[str, Any]],
        upstream: Optional[_Upstream],
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]], Optional[_Upstream]]:
        request_id = message.get("id")
        if hello is None:
            self.counters.bad_requests += 1
            return (
                error_response(
                    ErrorCode.AUTH_REQUIRED,
                    request_id,
                    detail="send hello before call",
                ),
                hello,
                upstream,
            )
        if self._draining:
            return (
                error_response(
                    ErrorCode.SHUTTING_DOWN, request_id, retry_after=1.0
                ),
                hello,
                upstream,
            )
        user = hello["user"]
        try:
            owner = self._ring.owner(user)
        except ConfigurationError:
            return (
                error_response(
                    ErrorCode.BAD_REQUEST,
                    request_id,
                    detail="no gateways attached",
                ),
                hello,
                upstream,
            )
        if upstream is not None and upstream.name != owner:
            # the ring re-owned this session since the last call
            await upstream.close()
            upstream = None
            self.counters.rebinds += 1
        if upstream is None:
            host, port = self._backends[owner]
            upstream = _Upstream(owner, host, port)
            try:
                await upstream.open()
                hello_reply = await asyncio.wait_for(
                    upstream.request(hello),
                    timeout=self.config.call_timeout,
                )
            except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
                self.counters.upstream_errors += 1
                await upstream.close()
                return (
                    error_response(
                        ErrorCode.SHUTTING_DOWN,
                        request_id,
                        retry_after=1.0,
                        detail=f"gateway {owner} unreachable: {exc}",
                    ),
                    hello,
                    None,
                )
            if not hello_reply.get("ok"):
                await upstream.close()
                return hello_reply, hello, None
        self._session_owners[user] = owner
        self._session_owners.move_to_end(user)
        while len(self._session_owners) > TRACKED_SESSIONS:
            self._session_owners.popitem(last=False)
        try:
            response = await asyncio.wait_for(
                upstream.request(message), timeout=self.config.call_timeout
            )
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            self.counters.upstream_errors += 1
            await upstream.close()
            return (
                error_response(
                    ErrorCode.SHUTTING_DOWN,
                    request_id,
                    retry_after=1.0,
                    detail=f"gateway {owner} failed mid-call: {exc}",
                ),
                hello,
                None,
            )
        self.counters.calls_forwarded += 1
        if response.get("ok") and "metrics" in response:
            if not response.get("deduplicated"):
                delta = MetricsSnapshot.from_dict(response["metrics"])
                current = self._per_gateway.get(
                    owner, MetricsSnapshot.zero()
                )
                self._per_gateway[owner] = current.plus(delta)
                self._per_gateway_calls[owner] = (
                    self._per_gateway_calls.get(owner, 0) + 1
                )
        elif response.get("error") == ErrorCode.TIMEOUT:
            self._timeouts_seen += 1
        response["gateway"] = owner
        return response, hello, upstream

    async def _verb_park(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Forward a park to the user's current owner."""
        request_id = message.get("id")
        user = message.get("user")
        if not isinstance(user, str) or not user:
            self.counters.bad_requests += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail="park requires a user name",
            )
        try:
            owner = self._ring.owner(user)
        except ConfigurationError:
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail="no gateways attached",
            )
        try:
            response = await self._one_shot(owner, message)
        except (OSError, ConnectionError, GatewayProtocolError) as exc:
            self.counters.upstream_errors += 1
            return error_response(
                ErrorCode.BAD_REQUEST,
                request_id,
                detail=f"gateway {owner} unreachable: {exc}",
            )
        response["gateway"] = owner
        return response

    # -- stats ---------------------------------------------------------------

    async def _verb_stats(
        self, request_id: Optional[Any] = None
    ) -> Dict[str, Any]:
        """Fan out to every backend and merge, with cross-checks."""
        per_gateway: Dict[str, Dict[str, Any]] = {}
        merged = MetricsSnapshot.zero()
        all_backends_consistent = True
        router_consistent = True
        for name in sorted(self._backends):
            try:
                stats = await self._one_shot(name, {"verb": "stats"})
            except (OSError, ConnectionError, GatewayProtocolError) as exc:
                self.counters.upstream_errors += 1
                per_gateway[name] = {"reachable": False, "error": str(exc)}
                all_backends_consistent = False
                router_consistent = False
                continue
            backend_merged = MetricsSnapshot.from_dict(
                stats.get("architectural", {})
            )
            merged = merged.plus(backend_merged)
            summed = self._per_gateway.get(name, MetricsSnapshot.zero())
            baseline_calls, baseline_total = self._baselines.get(
                name, (0, {})
            )
            expected = {
                key: value + baseline_total.get(key, 0)
                for key, value in summed.architectural().items()
            }
            agrees = expected == stats.get("architectural", {})
            per_gateway[name] = {
                "reachable": True,
                "consistent": stats.get("consistent", False),
                "router_calls": self._per_gateway_calls.get(name, 0),
                "router_summed": summed.architectural(),
                "baseline": baseline_total,
                "architectural": stats.get("architectural", {}),
                "router_agrees": agrees,
                "completed": stats.get("gateway", {}).get("completed", 0),
                "sessions": stats.get("sessions"),
            }
            all_backends_consistent = all_backends_consistent and stats.get(
                "consistent", False
            )
            router_consistent = router_consistent and agrees
        # a timed-out forward's delta reaches the backend's sums but
        # not the router's, so the growth check is only claimed when
        # every forwarded call came back with its metrics
        if self._timeouts_seen:
            router_consistent = False
        return ok_response(
            request_id,
            verb="stats",
            router={
                **self.counters.as_dict(),
                "gateways": self.gateways,
                "tracked_sessions": len(self._session_owners),
                "timeouts_seen": self._timeouts_seen,
                "draining": self._draining,
            },
            per_gateway=per_gateway,
            architectural=merged.architectural(),
            consistent=all_backends_consistent,
            router_consistent=router_consistent,
        )
