"""The ring gateway: the reproduction's serving layer.

Everything below :mod:`repro.sim` treats the machine as a library — you
construct it, run a workload, read the counters.  This package puts the
machine behind a network boundary instead: an asyncio JSON-lines-over-TCP
gateway (:mod:`repro.serve.gateway`) where *callers* — sessions
authenticated as a user and bound to a ring — submit named gate calls
that execute on a pool of persistent :class:`~repro.sim.machine.Machine`
workers (:mod:`repro.serve.workers`), behind per-ring admission control
and token-bucket rate limiting (:mod:`repro.serve.admission`).

The paper's gates make a cross-ring call cheap enough to be the universal
entry point for protected services; the gateway is that boundary in
network form, with the boundary layer itself enforcing per-caller limits.

Modules:

``protocol``
    the JSON-lines wire format, verbs, and error codes;
``catalog``
    the named gate-call programs a caller may invoke;
``workers``
    the persistent-machine worker pool (process/thread backends);
``admission``
    token buckets and bounded per-ring pending queues;
``gateway``
    the asyncio server tying the above together;
``standby``
    warm replicas: journal shipping, standby servers, hot failover;
``loadgen``
    the load-generator client and its report.
"""

from .admission import AdmissionController, RingPolicy, TokenBucket
from .catalog import CATALOG, build_program
from .gateway import GatewayConfig, RingGateway
from .loadgen import LoadReport, run_load
from .protocol import ErrorCode
from .standby import (
    ReplicaClient,
    ReplicaSet,
    ReplicationConfig,
    StandbyConfig,
    StandbyServer,
)
from .workers import (
    DurabilityConfig,
    GateCallEngine,
    WorkerPool,
    execute_gate_call,
)

__all__ = [
    "AdmissionController",
    "CATALOG",
    "DurabilityConfig",
    "ErrorCode",
    "GateCallEngine",
    "GatewayConfig",
    "LoadReport",
    "ReplicaClient",
    "ReplicaSet",
    "ReplicationConfig",
    "RingGateway",
    "RingPolicy",
    "StandbyConfig",
    "StandbyServer",
    "TokenBucket",
    "WorkerPool",
    "build_program",
    "execute_gate_call",
    "run_load",
]
