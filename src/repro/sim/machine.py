"""The assembled system: one machine, one supervisor, many processes.

``Machine`` is the public face of the reproduction.  A typical session::

    m = Machine()
    alice = m.add_user("alice")
    m.store_program(">udd>alice>prog", PROG_SOURCE, acl=[...])
    process = m.login(alice)
    m.initiate(process, ">udd>alice>prog")
    result = m.run(process, "prog$main", ring=4)
    print(result.console)

Construction knobs map to the paper's design space:

``hardware_rings``
    True builds the paper's new processor; False builds the
    Honeywell-645 baseline where every ring crossing traps to software.
``stack_rule``
    ``"dbr"`` (the footnote's refined stack-segment selection) or
    ``"simple"`` (stack segno = ring number).
``paged``
    activate segments through page tables, demonstrating that paging is
    transparent to protection.
``fast_path_enabled``
    host-side interpreter fast path (validated-translation cache +
    decoded-instruction cache, see :mod:`repro.cpu.access_cache`);
    purely an ablation knob — simulated cycle figures are identical
    either way.
``block_tier_enabled``
    the superblock execution tier (:mod:`repro.cpu.blockcache`) layered
    on the fast path; ``None`` (default) follows ``fast_path_enabled``.
    Equally invisible to the simulated figures.
``jit_tier_enabled``
    the trace-compile tier (:mod:`repro.cpu.jit`) layered on the block
    tier; ``None`` (default) leaves it off unless the
    ``REPRO_JIT_PARITY`` backstop requests it.  Equally invisible to
    the simulated figures.
``fast_gate``
    skip the supervisor re-attach in :meth:`Machine.start` when the
    processor is already pointed at the same process and DBR — the
    software analogue of the paper's repeat-gate-call hardware path.
    Host caches (PTLB, icache, superblocks, traces) survive between
    runs, and so does the paper's SDW associative memory: a repeat
    call re-validates nothing, so its simulated figures drop by the
    descriptor fetches the first call paid — the measured form of the
    paper's claim that hardware rings make repeat protected calls as
    cheap as ordinary ones.  Off by default: each ``run`` then starts
    from a fresh attach and figures repeat exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..asm import assemble
from ..core.acl import AclEntry
from ..cpu.processor import CostModel, Processor
from ..cpu.sdwcache import SDWCache
from ..hardening import HardeningConfig
from ..krnl.process import Process
from ..krnl.services import install_services
from ..krnl.supervisor import Supervisor
from ..krnl.users import User
from ..mem.physical import PhysicalMemory
from ..mem.segment import SegmentImage
from .metrics import MetricsSnapshot


@dataclass
class RunResult:
    """What came out of one :meth:`Machine.run`.

    ``metrics`` is the cumulative :class:`MetricsSnapshot` at the end of
    the run; ``run_metrics`` is the per-run delta (end minus start), so
    consecutive ``run(..., reset_counters=False)`` calls still report
    meaningful per-run figures — including cache hit rates — while the
    plain counters (``instructions``, ``cycles``, ...) keep accumulating.
    """

    halted: bool
    instructions: int
    cycles: int
    a: int
    q: int
    ring: int
    console: List[int] = field(default_factory=list)
    faults: int = 0
    ring_crossings: int = 0
    metrics: Optional[MetricsSnapshot] = None
    run_metrics: Optional[MetricsSnapshot] = None


class Machine:
    """A complete simulated system."""

    def __init__(
        self,
        memory_words: int = 1 << 18,
        hardware_rings: bool = True,
        stack_rule: str = "dbr",
        paged: bool = False,
        lazy_linking: bool = False,
        cost: Optional[CostModel] = None,
        sdw_cache_slots: int = 16,
        sdw_cache_enabled: bool = True,
        fast_path_enabled: bool = True,
        block_tier_enabled: Optional[bool] = None,
        jit_tier_enabled: Optional[bool] = None,
        fast_gate: bool = False,
        services: bool = True,
        hardening: Optional[HardeningConfig] = None,
    ):
        self.fast_gate = fast_gate
        self.memory = PhysicalMemory(memory_words)
        self.supervisor = Supervisor(self.memory)
        self.supervisor.paged = paged
        self.supervisor.lazy_linking = lazy_linking
        self.hardening = hardening or HardeningConfig()
        self.processor = Processor(
            self.memory,
            cost=cost,
            stack_rule=stack_rule,
            hardware_rings=hardware_rings,
            sdw_cache=SDWCache(slots=sdw_cache_slots, enabled=sdw_cache_enabled),
            fast_path=fast_path_enabled,
            block_tier=block_tier_enabled,
            jit_tier=jit_tier_enabled,
            hardening=self.hardening,
        )
        # ring_domains: the supervisor binds segment numbers to domains
        # as it initiates segments.
        self.supervisor.domains = self.processor.domains
        self.system_user = self.supervisor.users.register(
            "system", administrator=True
        )
        if services:
            install_services(self.fs, self.system_user)

    @classmethod
    def from_config(cls, config) -> "Machine":
        """Build a machine from a validated :class:`MachineConfig`."""
        from .config import MachineConfig

        if not isinstance(config, MachineConfig):
            raise TypeError(f"expected MachineConfig, got {type(config)!r}")
        config.validate()
        return cls(**config.machine_kwargs())

    # -- delegates ---------------------------------------------------------

    @property
    def fs(self):
        """The simulated file system."""
        return self.supervisor.fs

    @property
    def users(self):
        """The user registry."""
        return self.supervisor.users

    @property
    def console(self) -> List[int]:
        """Words written to the console via the supervisor's CIOC hook."""
        return self.supervisor.console_values()

    # -- system building -----------------------------------------------------

    def add_user(self, name: str, administrator: bool = False) -> User:
        """Register a user."""
        return self.users.register(name, administrator=administrator)

    def store_program(
        self,
        path: str,
        source: str,
        acl: List[AclEntry],
        owner: Optional[User] = None,
        name: Optional[str] = None,
    ) -> SegmentImage:
        """Assemble a program and store it with its ACL."""
        image = assemble(source, name=name or path.split(">")[-1])
        self.fs.create(path, image, owner=owner or self.system_user, acl=acl)
        return image

    def store_data(
        self,
        path: str,
        values: List[int],
        acl: List[AclEntry],
        owner: Optional[User] = None,
        name: Optional[str] = None,
    ) -> SegmentImage:
        """Store a data segment with its ACL."""
        image = SegmentImage.from_values(
            name or path.split(">")[-1], list(values)
        )
        self.fs.create(path, image, owner=owner or self.system_user, acl=acl)
        return image

    def login(
        self,
        user: User,
        descriptor_bound: int = 128,
        stack_base_segno: int = 0,
    ) -> Process:
        """Create the user's process (paper p. 7: one per login)."""
        return self.supervisor.create_process(
            user,
            descriptor_bound=descriptor_bound,
            stack_base_segno=stack_base_segno,
        )

    def initiate(self, process: Process, path: str, name: Optional[str] = None) -> int:
        """Add a stored segment to a process's virtual memory."""
        return self.supervisor.initiate(process, path, name=name)

    def assign_domain(self, name: str, domain: str) -> bool:
        """Bind segment ``name`` to a ring domain (``ring_domains`` only).

        Returns False (a no-op) when the extension is off, so callers
        can assign unconditionally.  Assignments should precede the
        segment's initiation; a late assignment is honoured for
        already-known segments, with the host caches of that segment
        dropped so compiled tiers revalidate under the new domain.
        """
        domains = self.processor.domains
        if domains is None:
            return False
        domains.assign(name, domain)
        active = self.supervisor.active_by_name.get(name)
        if active is not None:
            domains.register(active.segno, name)
            self.processor.invalidate_sdw(active.segno)
        return True

    def make_scheduler(self, quantum: int = 50):
        """A round-robin scheduler multiplexing this machine's processor."""
        from ..krnl.scheduler import RoundRobinScheduler

        return RoundRobinScheduler(
            self.processor, self.supervisor, quantum=quantum
        )

    # -- execution -------------------------------------------------------------

    def detach(self) -> None:
        """Forget which process the processor is attached to.

        The parking discipline of the session layer: a parked snapshot
        records no attachment, so the next :meth:`start` after hydration
        goes through the full supervisor re-attach — the DBR load
        flushes every cache, including the SDW associative memory and
        the ``fast_gate`` attach memo, and the first gate call re-fetches
        its descriptors exactly like a tenant's first call ever did.
        Processor state (registers, DBR contents) is untouched; this
        only invalidates the memo.
        """
        self.supervisor.attached_process = None

    def start(self, process: Process, ref: str, ring: int) -> None:
        """Point the processor at ``ref`` in ``ring`` without running.

        All pointer registers are initialised to the ring's stack base
        (satisfying the ``PRn.RING >= IPR.RING`` invariant from the first
        instruction) and the stack's next-available word is honoured.

        Under ``fast_gate``, a repeat start of the process the
        processor is already attached to skips the supervisor
        re-attach: the DBR switch (which would flush every host cache,
        including compiled traces) is elided and only the interval
        timer is re-armed.  The validated call environment — trap
        handlers, translations, superblocks, traces — survives intact,
        which is what makes repeat gate calls cheap.
        """
        sup = self.supervisor
        if (
            self.fast_gate
            and sup.attached_process is process
            and self.processor.dbr is process.dbr
        ):
            if sup.timer_quantum is not None:
                self.processor.set_timer(sup.timer_quantum)
        else:
            sup.attach(self.processor, process)
        if self.processor.auth_stack is not None:
            # Each start is a fresh call chain: leftover MAC frames from
            # an aborted previous run must not vouch for this one.  Done
            # in both attach branches so fast_gate repeats stay
            # bit-identical with cold starts.
            self.processor.auth_stack.clear()
        segno, wordno = process.entry_of(ref)
        regs = self.processor.registers
        stack_segno = process.stack_segno(ring)
        for pr in regs.prs:
            pr.load(stack_segno, 0, ring)
        regs.crr = ring
        regs.set_a(0)
        regs.set_q(0)
        regs.ipr.set(ring, segno, wordno)

    def run(
        self,
        process: Process,
        ref: str,
        ring: int = 4,
        max_steps: int = 1_000_000,
        reset_counters: bool = True,
    ) -> RunResult:
        """Run ``ref`` in ``ring`` until HALT and collect the results.

        Unhandled faults propagate to the caller as
        :class:`repro.cpu.faults.Fault` — deliberately: tests assert on
        them, and example programs treat them as crashes.
        """
        self.start(process, ref, ring)
        if reset_counters:
            self.processor.reset_counters()
            # Fault-side diagnostics are part of the per-run figure too:
            # a fresh run should not inherit another run's post-mortems.
            self.supervisor.aborted_faults.clear()
        before = MetricsSnapshot.collect(self.processor)
        self.processor.run(max_steps=max_steps)
        after = MetricsSnapshot.collect(self.processor)
        regs = self.processor.registers
        stats = self.processor.stats
        return RunResult(
            halted=self.processor.halted,
            instructions=stats.instructions,
            cycles=self.processor.cycles,
            a=regs.a,
            q=regs.q,
            ring=regs.ipr.ring,
            console=self.console,
            faults=stats.faults,
            ring_crossings=stats.ring_crossings,
            metrics=after,
            run_metrics=after.minus(before),
        )
