"""Validated machine configuration.

``Machine.__init__`` accepts a dozen knobs whose legal combinations
are constrained by the tier stack (the trace tier records through the
superblock tier, which rides the fast-path PTLB) and by the hardening
extensions.  Some of those constraints were historically enforced deep
inside ``Processor`` and others not at all; :class:`MachineConfig`
makes the whole matrix explicit, rejects contradictory combinations
with a clear error *before* any machine state is built, and gives the
serving and snapshot layers a single serializable description of a
machine's shape.

Use ``Machine.from_config(MachineConfig(...))`` or call
:meth:`MachineConfig.validate` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.processor import CostModel
from ..errors import ConfigurationError
from ..hardening import HardeningConfig


@dataclass(frozen=True)
class MachineConfig:
    """Every construction knob of :class:`~repro.sim.machine.Machine`.

    Defaults match ``Machine.__init__`` exactly; ``None`` for the tier
    knobs means "follow the tier below", as documented there.
    """

    memory_words: int = 1 << 18
    hardware_rings: bool = True
    stack_rule: str = "dbr"
    paged: bool = False
    lazy_linking: bool = False
    cost: Optional[CostModel] = None
    sdw_cache_slots: int = 16
    sdw_cache_enabled: bool = True
    fast_path_enabled: bool = True
    block_tier_enabled: Optional[bool] = None
    jit_tier_enabled: Optional[bool] = None
    fast_gate: bool = False
    services: bool = True
    hardening: HardeningConfig = field(default_factory=HardeningConfig)

    def validate(self) -> "MachineConfig":
        """Reject contradictory knob combinations; returns self.

        The tier constraints mirror the hardware metaphor: each host
        tier is built on the one below it, so enabling a tier whose
        foundation is explicitly disabled is a contradiction, not a
        preference.
        """
        if self.memory_words <= 0:
            raise ConfigurationError(
                f"memory_words must be positive, got {self.memory_words}"
            )
        if self.sdw_cache_slots <= 0:
            raise ConfigurationError(
                f"sdw_cache_slots must be positive, got {self.sdw_cache_slots}"
            )
        if self.stack_rule not in ("simple", "dbr"):
            raise ConfigurationError(
                f"unknown stack rule {self.stack_rule!r}; "
                "expected 'simple' or 'dbr'"
            )
        block = (
            self.fast_path_enabled
            if self.block_tier_enabled is None
            else self.block_tier_enabled
        )
        if block and not self.fast_path_enabled:
            raise ConfigurationError(
                "block_tier_enabled=True requires fast_path_enabled=True: "
                "the superblock tier rides the fast-path PTLB"
            )
        if self.jit_tier_enabled:
            if not self.fast_path_enabled:
                raise ConfigurationError(
                    "jit_tier_enabled=True requires fast_path_enabled=True: "
                    "the trace tier records through superblock dispatch, "
                    "which rides the fast-path PTLB"
                )
            if not block:
                raise ConfigurationError(
                    "jit_tier_enabled=True requires the superblock tier: "
                    "block_tier_enabled must not be False"
                )
        if not isinstance(self.hardening, HardeningConfig):
            raise ConfigurationError(
                "hardening must be a HardeningConfig, got "
                f"{type(self.hardening).__name__}"
            )
        return self

    def machine_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for ``Machine(**...)``."""
        return {
            "memory_words": self.memory_words,
            "hardware_rings": self.hardware_rings,
            "stack_rule": self.stack_rule,
            "paged": self.paged,
            "lazy_linking": self.lazy_linking,
            "cost": self.cost,
            "sdw_cache_slots": self.sdw_cache_slots,
            "sdw_cache_enabled": self.sdw_cache_enabled,
            "fast_path_enabled": self.fast_path_enabled,
            "block_tier_enabled": self.block_tier_enabled,
            "jit_tier_enabled": self.jit_tier_enabled,
            "fast_gate": self.fast_gate,
            "services": self.services,
            "hardening": self.hardening,
        }
