"""The sharded fleet driver: independent machines across host workers.

The simulator is single-threaded by construction — one ``Machine`` is
one processor and one memory.  But benchmark sweeps and multi-user
scenario runs are embarrassingly parallel: every shard builds its *own*
machine, runs its own workload, and reports a
:class:`~repro.sim.metrics.MetricsSnapshot`.  ``run_fleet`` fans those
shards across host worker processes (``concurrent.futures``) and merges
the per-shard snapshots into fleet totals with
:meth:`MetricsSnapshot.sum_of`, so the merged figures equal what one
machine would have accumulated running the shards back to back.

A workload is any picklable callable ``workload(shard: int) ->
(payload, MetricsSnapshot)`` — a module-level function or a
``functools.partial`` over one (closures and lambdas do not survive the
pickle boundary of the process backend).  :func:`call_loop_shard` is
the reference workload: the Figure 8 cross-ring call loop the
benchmarks use.

Backends:

``"process"``
    one OS process per worker (the default) — real parallelism, since
    each shard runs its own interpreter;
``"thread"``
    one thread per worker — no host parallelism for this CPU-bound
    simulator (the GIL), but exercises the same fan-out/merge paths
    without any pickling requirement;
``"serial"``
    run shards in the calling thread, in order — deterministic
    debugging, and the fallback for hosts where process pools are
    unavailable (sandboxes without ``fork``/semaphores).
"""

from __future__ import annotations

import hashlib
import time
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError, FleetWorkerError
from .metrics import MetricsSnapshot

#: A workload maps a shard index to (payload, metrics).
Workload = Callable[[int], Tuple[Any, MetricsSnapshot]]

BACKENDS = ("process", "thread", "serial")


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key``.

    Python's builtin ``hash`` is salted per interpreter
    (``PYTHONHASHSEED``), which would route the same session to
    different shards across gateway restarts; sha1 is identical
    everywhere.
    """
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


def stable_shard(key: str, shards: int) -> int:
    """Deterministically map ``key`` onto ``[0, shards)``."""
    if shards <= 0:
        raise ConfigurationError("shards must be positive")
    return stable_hash(key) % shards


class ConsistentHashRing:
    """Consistent hashing of session keys onto named nodes.

    Each node owns ``vnodes`` points on a 64-bit ring; a key belongs to
    the first node point at or after its own hash (wrapping).  The
    property the router relies on: adding a node moves only the keys the
    *new* node now owns (~K/N of them) and removing a node moves only
    the departed node's keys — everything else keeps its owner, so a
    rebalance migrates the minimum number of parked sessions.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes <= 0:
            raise ConfigurationError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        """The member nodes, sorted."""
        return sorted(self._nodes)

    def _rebuild(self) -> None:
        points = [
            (stable_hash(f"{node}#{index}"), node)
            for node in self._nodes
            for index in range(self.vnodes)
        ]
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    def add(self, node: str) -> None:
        """Add a node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def owner(self, key: str) -> str:
        """The node that owns ``key``; raises when the ring is empty."""
        if not self._points:
            raise ConfigurationError("consistent-hash ring has no nodes")
        index = bisect_right(self._hashes, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


@dataclass(frozen=True)
class ShardResult:
    """What one shard produced."""

    shard: int
    payload: Any
    metrics: MetricsSnapshot
    wall_seconds: float


@dataclass(frozen=True)
class FleetResult:
    """All shard results plus the merged fleet totals."""

    shards: List[ShardResult] = field(default_factory=list)
    merged: MetricsSnapshot = field(default_factory=MetricsSnapshot.zero)
    wall_seconds: float = 0.0
    workers: int = 1
    backend: str = "serial"

    @property
    def payloads(self) -> List[Any]:
        """Each shard's payload, in shard order."""
        return [shard.payload for shard in self.shards]

    def verify_merge(self) -> bool:
        """True when ``merged`` equals the sum of per-shard metrics.

        Cheap self-check the benchmarks assert on: snapshot arithmetic
        is exact integer addition, so this must hold identically.
        """
        return self.merged == MetricsSnapshot.sum_of(
            shard.metrics for shard in self.shards
        )


def _run_shard(workload: Workload, shard: int) -> ShardResult:
    """Execute one shard (in whatever worker the backend chose).

    A raising workload is re-raised as
    :class:`~repro.errors.FleetWorkerError` with the shard index
    attached, so the failing sweep point is identifiable even after the
    exception crosses the process-pool pickle boundary.
    """
    started = time.perf_counter()
    try:
        payload, metrics = workload(shard)
    except Exception as exc:
        raise FleetWorkerError(
            shard, f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(metrics, MetricsSnapshot):
        raise ConfigurationError(
            f"workload returned {type(metrics).__name__} for shard "
            f"{shard}; expected (payload, MetricsSnapshot)"
        )
    return ShardResult(
        shard=shard,
        payload=payload,
        metrics=metrics,
        wall_seconds=time.perf_counter() - started,
    )


def run_fleet(
    workload: Workload,
    shards: int,
    workers: Optional[int] = None,
    backend: str = "process",
) -> FleetResult:
    """Run ``shards`` independent workload instances and merge metrics.

    ``workers`` caps concurrent workers (default: one per shard).  The
    process backend requires ``workload`` to be picklable; on hosts
    where a process pool cannot even be created the call falls back to
    the serial backend rather than failing the run — the results are
    identical, only the wall-clock parallelism is lost.
    """
    if shards <= 0:
        raise ConfigurationError("shards must be positive")
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown fleet backend {backend!r}; expected one of {BACKENDS}"
        )
    if workers is None:
        workers = shards
    if workers <= 0:
        raise ConfigurationError("workers must be positive")
    workers = min(workers, shards)

    started = time.perf_counter()
    if backend == "serial" or workers == 1:
        backend = "serial"
        results = [_run_shard(workload, shard) for shard in range(shards)]
    else:
        pool_cls = (
            ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        )
        try:
            with pool_cls(max_workers=workers) as pool:
                results = list(
                    pool.map(_run_shard, [workload] * shards, range(shards))
                )
        except (OSError, PermissionError) as exc:
            if backend != "process":
                raise
            # Hosts without working process primitives (restricted
            # sandboxes): same results, serially.
            backend = f"serial (process pool unavailable: {exc})"
            results = [_run_shard(workload, shard) for shard in range(shards)]
    elapsed = time.perf_counter() - started

    return FleetResult(
        shards=results,
        merged=MetricsSnapshot.sum_of(result.metrics for result in results),
        wall_seconds=elapsed,
        workers=workers,
        backend=backend,
    )


# ---------------------------------------------------------------------------
# reference workloads (module-level: picklable for the process backend)
# ---------------------------------------------------------------------------


def call_loop_shard(
    shard: int,
    count: int = 500,
    target_ring: int = 0,
    block_tier: Optional[bool] = None,
) -> Tuple[dict, MetricsSnapshot]:
    """One shard of the Figure 8 cross-ring call loop.

    Builds a fresh machine, runs ``count`` call/return pairs against a
    ring-``target_ring`` gate, and returns the headline figures plus
    the full metrics snapshot.  Use ``functools.partial`` to vary
    ``count`` or the knobs per sweep point.
    """
    from ..core.acl import AclEntry, RingBracketSpec
    from .machine import Machine

    machine = Machine(services=False, block_tier_enabled=block_tier)
    user = machine.add_user(f"shard{shard}")
    spec = (
        RingBracketSpec.procedure(4)
        if target_ring == 4
        else RingBracketSpec.procedure(target_ring, callable_from=5)
    )
    machine.store_program(
        ">fleet>callee",
        """
        .seg    callee
        .gates  1
entry:: return  pr4|0
""",
        acl=[AclEntry("*", spec)],
    )
    machine.store_program(
        ">fleet>caller",
        f"""
        .seg    caller
main::  lda     ={count}
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  callee$entry
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(4))],
    )
    process = machine.login(user)
    machine.initiate(process, ">fleet>caller")
    machine.initiate(process, ">fleet>callee")
    result = machine.run(process, "caller$main", ring=4)
    payload = {
        "shard": shard,
        "halted": result.halted,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ring_crossings": result.ring_crossings,
    }
    return payload, result.metrics
