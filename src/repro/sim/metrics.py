"""Metrics collection for experiments, benchmarks, and the fleet driver.

A :class:`MetricsSnapshot` freezes every counter the simulation keeps —
processor cycles and statistics, memory traffic, SDW-cache behaviour,
and the host-side fast-path tiers — so benchmark code can compute
differences across phases without worrying about which component owns
which counter.

Snapshots are value objects and support arithmetic: :meth:`minus` turns
two cumulative snapshots into a per-phase delta (what
``Machine.run(reset_counters=False)`` uses so consecutive runs still
compose), and :meth:`plus` / :meth:`sum_of` merge the per-shard
snapshots of a :mod:`repro.sim.fleet` run into fleet totals.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional

from ..cpu.processor import Processor


@dataclass(frozen=True)
class MetricsSnapshot:
    """All simulation counters at one instant."""

    cycles: int
    instructions: int
    faults: int
    traps_delivered: int
    calls: int
    returns: int
    ring_crossings: int
    memory_reads: int
    memory_writes: int
    sdw_hits: int
    sdw_misses: int
    #: fast-path tiers (host-side only; see repro.cpu.access_cache)
    ptlb_hits: int = 0
    ptlb_misses: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    #: superblock tier (host-side only; see repro.cpu.blockcache)
    block_hits: int = 0
    block_misses: int = 0
    block_invalidations: int = 0
    block_instructions: int = 0
    #: trace-compile tier (host-side only; see repro.cpu.jit)
    jit_hits: int = 0
    jit_misses: int = 0
    jit_invalidations: int = 0
    jit_instructions: int = 0

    #: counters that describe the simulated machine itself; identical
    #: whether the host-side tiers are on or off (the host-tier hit
    #: counters above are diagnostics of *how* the figures were reached)
    ARCHITECTURAL = (
        "cycles",
        "instructions",
        "faults",
        "traps_delivered",
        "calls",
        "returns",
        "ring_crossings",
        "memory_reads",
        "memory_writes",
        "sdw_hits",
        "sdw_misses",
    )

    @classmethod
    def collect(cls, proc: Processor) -> "MetricsSnapshot":
        """Freeze the current counters of ``proc`` and its memory."""
        cache = proc.sdw_cache.stats()
        ptlb = proc.access_cache.stats()
        icache = proc.inst_cache.stats()
        blocks = proc.block_cache.stats()
        traces = proc.jit_cache.stats()
        return cls(
            cycles=proc.cycles,
            instructions=proc.stats.instructions,
            faults=proc.stats.faults,
            traps_delivered=proc.stats.traps_delivered,
            calls=proc.stats.calls,
            returns=proc.stats.returns,
            ring_crossings=proc.stats.ring_crossings,
            memory_reads=proc.memory.reads,
            memory_writes=proc.memory.writes,
            sdw_hits=cache["hits"],
            sdw_misses=cache["misses"],
            ptlb_hits=ptlb["hits"],
            ptlb_misses=ptlb["misses"],
            icache_hits=icache["hits"],
            icache_misses=icache["misses"],
            block_hits=blocks["hits"],
            block_misses=blocks["misses"],
            block_invalidations=blocks["invalidations"],
            block_instructions=blocks["block_instructions"],
            jit_hits=traces["hits"],
            jit_misses=traces["misses"],
            jit_invalidations=traces["invalidations"],
            jit_instructions=traces["jit_instructions"],
        )

    @classmethod
    def zero(cls) -> "MetricsSnapshot":
        """The additive identity (an all-zero snapshot)."""
        return cls(**{name: 0 for name in cls.__dataclass_fields__})

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "MetricsSnapshot":
        """The inverse of :meth:`as_dict`.

        Unknown keys are rejected (they signal a version skew between
        whoever serialized the dict and this build); missing host-tier
        counters default to 0 so architectural-only dicts — what workers
        report as their totals — round-trip too.
        """
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown metric counter(s): {sorted(unknown)}"
            )
        return cls(
            **{
                name: int(data.get(name, 0))
                for name in cls.__dataclass_fields__
            }
        )

    def delta(self, earlier: "MetricsSnapshot") -> Dict[str, int]:
        """Per-counter difference ``self - earlier`` as a dict."""
        return {
            name: getattr(self, name) - getattr(earlier, name)
            for name in self.__dataclass_fields__
        }

    def minus(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """``self - earlier`` as a snapshot (per-phase attribution)."""
        return MetricsSnapshot(**self.delta(earlier))

    def plus(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """``self + other`` as a snapshot (shard merging)."""
        return MetricsSnapshot(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in self.__dataclass_fields__
            }
        )

    @classmethod
    def sum_of(
        cls, snapshots: Iterable["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        """Merge many shards' snapshots into one fleet total."""
        total = cls.zero()
        for snapshot in snapshots:
            total = total.plus(snapshot)
        return total

    #: the hit/miss counter pairs that have a meaningful hit rate
    TIERS = ("sdw", "ptlb", "icache", "block", "jit")

    def rates(self) -> Dict[str, Optional[float]]:
        """Hit rate per cache tier as ``{tier}_hit_rate`` keys.

        A tier that saw no traffic reports ``None`` rather than a fake
        rate.  Shared by ``repro run --metrics-json`` and the gateway's
        ``stats`` verb so the two always agree on the arithmetic.
        """
        out: Dict[str, Optional[float]] = {}
        for tier in self.TIERS:
            hits = getattr(self, f"{tier}_hits")
            misses = getattr(self, f"{tier}_misses")
            total = hits + misses
            out[f"{tier}_hit_rate"] = (
                round(hits / total, 4) if total else None
            )
        return out

    def architectural(self) -> Dict[str, int]:
        """Only the simulated-machine counters (tier-independent)."""
        return {name: getattr(self, name) for name in self.ARCHITECTURAL}

    def as_dict(self) -> Dict[str, int]:
        """Every counter as a plain dict (CLI ``--metrics-json``)."""
        return asdict(self)
