"""Metrics collection for experiments and benchmarks.

A :class:`MetricsSnapshot` freezes every counter the simulation keeps —
processor cycles and statistics, memory traffic, SDW-cache behaviour —
so benchmark code can compute differences across phases without
worrying about which component owns which counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cpu.processor import Processor


@dataclass(frozen=True)
class MetricsSnapshot:
    """All simulation counters at one instant."""

    cycles: int
    instructions: int
    faults: int
    traps_delivered: int
    calls: int
    returns: int
    ring_crossings: int
    memory_reads: int
    memory_writes: int
    sdw_hits: int
    sdw_misses: int
    #: fast-path tiers (host-side only; see repro.cpu.access_cache)
    ptlb_hits: int = 0
    ptlb_misses: int = 0
    icache_hits: int = 0
    icache_misses: int = 0

    @classmethod
    def collect(cls, proc: Processor) -> "MetricsSnapshot":
        """Freeze the current counters of ``proc`` and its memory."""
        cache = proc.sdw_cache.stats()
        ptlb = proc.access_cache.stats()
        icache = proc.inst_cache.stats()
        return cls(
            cycles=proc.cycles,
            instructions=proc.stats.instructions,
            faults=proc.stats.faults,
            traps_delivered=proc.stats.traps_delivered,
            calls=proc.stats.calls,
            returns=proc.stats.returns,
            ring_crossings=proc.stats.ring_crossings,
            memory_reads=proc.memory.reads,
            memory_writes=proc.memory.writes,
            sdw_hits=cache["hits"],
            sdw_misses=cache["misses"],
            ptlb_hits=ptlb["hits"],
            ptlb_misses=ptlb["misses"],
            icache_hits=icache["hits"],
            icache_misses=icache["misses"],
        )

    def delta(self, earlier: "MetricsSnapshot") -> Dict[str, int]:
        """Per-counter difference ``self - earlier``."""
        return {
            name: getattr(self, name) - getattr(earlier, name)
            for name in self.__dataclass_fields__
        }
