"""Top-level simulation facade.

:class:`repro.sim.machine.Machine` wires physical memory, a processor,
the supervisor, the file system, and the user registry into one object
with a small API: register users, store assembled programs with ACLs,
log users in, initiate segments, run.  The examples and most
integration tests go through it.
"""

from .machine import Machine, RunResult
from .trace import TraceLog
from .metrics import MetricsSnapshot

__all__ = ["Machine", "RunResult", "TraceLog", "MetricsSnapshot"]
