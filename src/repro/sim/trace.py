"""Execution tracing.

Attach a :class:`TraceLog` to a processor to capture one line per
retired instruction (location, mnemonic, resulting ring) plus any
events other components contribute.  The examples print these traces so
a reader can watch a cross-ring call happen instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cpu.processor import Processor


@dataclass
class TraceEvent:
    """One trace line with its instruction-count timestamp."""

    index: int
    text: str


class TraceLog:
    """An ordered capture of execution events."""

    def __init__(self, limit: int = 10_000):
        self.limit = limit
        self.events: List[TraceEvent] = []
        self._proc: Optional[Processor] = None

    def attach(self, proc: Processor) -> None:
        """Start receiving instruction events from ``proc``."""
        self._proc = proc
        proc.trace_hook = self._on_instruction

    def detach(self) -> None:
        """Stop tracing."""
        if self._proc is not None:
            self._proc.trace_hook = None
            self._proc = None

    def note(self, text: str) -> None:
        """Record a non-instruction event (supervisor actions etc.)."""
        self._append(text)

    def _on_instruction(self, text: str) -> None:
        self._append(text)

    def _append(self, text: str) -> None:
        if len(self.events) >= self.limit:
            return
        self.events.append(TraceEvent(index=len(self.events), text=text))

    def render(self, last: Optional[int] = None) -> str:
        """The trace as printable text (optionally only the tail)."""
        events = self.events if last is None else self.events[-last:]
        return "\n".join(f"{e.index:6d}  {e.text}" for e in events)

    def __len__(self) -> int:
        return len(self.events)
