"""Host-level exception hierarchy for the simulator.

Two distinct failure planes exist in this code base and must not be
confused:

* **Simulated faults** (access violations, missing segments, upward-call
  traps, ...) are events *inside* the simulated machine.  They are modelled
  by :class:`repro.cpu.faults.Fault`, are normally fielded by the simulated
  supervisor, and are part of correct operation.

* **Host errors** (this module) indicate misuse of the simulator's Python
  API or internal inconsistencies: malformed field values, assembling bad
  source, configuring an impossible machine.  They are ordinary Python
  exceptions and should never be raised by a correctly-written client
  program driving a correctly-configured machine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every host-level error raised by this package."""


class FieldRangeError(ReproError, ValueError):
    """A value does not fit in the hardware field it was assigned to."""

    def __init__(self, field: str, value: int, width: int):
        self.field = field
        self.value = value
        self.width = width
        super().__init__(
            f"value {value!r} does not fit in {width}-bit field {field!r}"
        )


class SegmentBoundsError(ReproError, IndexError):
    """A host-side access to a segment image fell outside its bound."""


class ConfigurationError(ReproError):
    """A machine, SDW, or subsystem was configured inconsistently."""


class FleetWorkerError(ReproError):
    """A fleet workload raised inside a worker shard.

    Carries the shard index so a failing sweep point can be identified
    from the driver side — the process backend otherwise surfaces a
    worker exception with no indication of which shard died.
    """

    def __init__(self, shard: int, cause: str):
        self.shard = shard
        self.cause = cause
        super().__init__(f"workload failed in shard {shard}: {cause}")

    def __reduce__(self):
        # Exceptions cross the process-pool boundary by pickling
        # ``cls(*args)``; rebuild from the structured fields, not the
        # formatted message.
        return (FleetWorkerError, (self.shard, self.cause))


class BracketOrderError(ConfigurationError):
    """Ring brackets violate the mandatory R1 <= R2 <= R3 ordering."""


class AssemblyError(ReproError):
    """Raised by the assembler for malformed source programs."""

    def __init__(self, message: str, line: int = 0, source: str = ""):
        self.line = line
        self.source = source
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """The loader could not resolve an inter-segment reference."""


class FileSystemError(ReproError):
    """Host-level misuse of the simulated file system API."""


class AccessDenied(ReproError):
    """A simulated-supervisor service refused an operation.

    Unlike a hardware access violation this is a *policy* refusal made by
    supervisor software (e.g. an ACL did not match, or the sole-occupant
    rule forbade a bracket setting).
    """


class MachineHalted(ReproError):
    """The simulated processor executed HALT (normal program termination)."""

    def __init__(self, message: str = "machine halted", cycles: int = 0):
        self.cycles = cycles
        super().__init__(message)


class SnapshotError(ReproError):
    """A machine snapshot is unreadable, tampered, or version-skewed."""


class JournalError(ReproError):
    """A gate-call journal is structurally corrupt.

    Raised for damage that cannot be explained as a torn tail write:
    a bad magic header, a CRC mismatch with committed records after it,
    or a non-consecutive sequence number.
    """


class ReplayDivergenceError(ReproError):
    """Replaying a journal did not reproduce the journaled outcomes.

    The machine is deterministic, so a divergence means either the
    journal or the snapshot it extends was corrupted in a way that
    passed the structural checks — the replay cross-check is the last
    line of defence.
    """

    def __init__(self, seq: int, field: str, expected, actual):
        self.seq = seq
        self.field = field
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"replay diverged at journal record {seq}: {field} "
            f"expected {expected!r}, got {actual!r}"
        )
