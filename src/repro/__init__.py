"""repro — Schroeder & Saltzer's hardware protection rings, reproduced.

A behavioural, cycle-counted reproduction of "A Hardware Architecture
for Implementing Protection Rings" (3rd SOSP, 1971; CACM 15(3), 1972):
a segmented 36-bit processor with ring brackets in the segment
descriptor words, effective-ring address formation, gate-checked CALL
and ring-raising RETURN instructions, the software assists the paper
assigns to the supervisor (upward calls, downward returns), and the
Honeywell-645 software-rings baseline it improves on.

Quick start::

    from repro import Machine, AclEntry, RingBracketSpec

    m = Machine()
    alice = m.add_user("alice")
    m.store_program(
        ">udd>alice>hello",
        '''
                .seg    hello
        main::  eap4    back
                call    l_write,*
        back:   halt
        l_write: .its   svc$write
        ''',
        acl=[AclEntry("*", RingBracketSpec(r1=4, r2=4, r3=4, execute=True))],
    )
    p = m.login(alice)
    m.initiate(p, ">udd>alice>hello")
    result = m.run(p, "hello$main", ring=4)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from .core import (
    AccessKind,
    AclEntry,
    CallDecision,
    CallOutcome,
    ReturnDecision,
    ReturnOutcome,
    RingBracketSpec,
    RingBrackets,
    decide_call,
    decide_return,
    permission_table,
)
from .cpu import CostModel, Fault, FaultClass, FaultCode, Processor, SDWCache
from .asm import assemble, listing
from .errors import (
    AccessDenied,
    AssemblyError,
    BracketOrderError,
    ConfigurationError,
    FieldRangeError,
    LinkError,
    MachineHalted,
    ReproError,
)
from .formats import SDW, IndirectWord, Instruction, PackedPointer
from .krnl import (
    FileSystem,
    Process,
    Supervisor,
    User,
    UserRegistry,
)
from .mem import DBR, DescriptorSegment, PhysicalMemory, SegmentImage
from .sim import Machine, MetricsSnapshot, RunResult, TraceLog

__version__ = "1.0.0"

__all__ = [
    # facade
    "Machine",
    "RunResult",
    "TraceLog",
    "MetricsSnapshot",
    # core policy
    "RingBrackets",
    "RingBracketSpec",
    "AclEntry",
    "AccessKind",
    "CallOutcome",
    "CallDecision",
    "ReturnOutcome",
    "ReturnDecision",
    "decide_call",
    "decide_return",
    "permission_table",
    # hardware
    "Processor",
    "CostModel",
    "SDWCache",
    "Fault",
    "FaultCode",
    "FaultClass",
    "SDW",
    "Instruction",
    "IndirectWord",
    "PackedPointer",
    "DBR",
    "DescriptorSegment",
    "PhysicalMemory",
    "SegmentImage",
    # software
    "Supervisor",
    "Process",
    "FileSystem",
    "User",
    "UserRegistry",
    # tools
    "assemble",
    "listing",
    # errors
    "ReproError",
    "FieldRangeError",
    "BracketOrderError",
    "ConfigurationError",
    "AssemblyError",
    "LinkError",
    "AccessDenied",
    "MachineHalted",
]
