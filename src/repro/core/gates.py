"""Gate rules and the CALL/RETURN ring-transition decision procedures.

These are the pure decision kernels of Figures 8 and 9.  The CPU's CALL
and RETURN implementations (:mod:`repro.cpu.operations`) call
:func:`decide_call` / :func:`decide_return` and then *perform* whatever
the decision says (switch rings, build the stack-base pointer, raise
pointer-register rings, or take a fault/trap).  Keeping the decisions
pure lets the analysis package enumerate the complete decision tables
and lets hypothesis explore them exhaustively.

Terminology: ``eff_ring`` is the effective ring computed during address
formation (``TPR.RING``); ``cur_ring`` is the ring of execution
(``IPR.RING``).  By construction of Figure 5, ``eff_ring >= cur_ring``
always holds when these functions are reached from the hardware path;
the functions nevertheless define an outcome for the impossible region
so the decision tables are total.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .rings import RingBrackets


class CallOutcome(enum.Enum):
    """Every possible result of the Figure 8 CALL decision."""

    #: Call proceeds without a ring change.
    SAME_RING = "same-ring call"
    #: Call proceeds, ring switches down to the top of the execute bracket.
    DOWNWARD = "downward call"
    #: Upward call: trap for software intervention (paper p. 22).
    TRAP_UPWARD_CALL = "upward-call trap"
    #: Target segment's execute flag is off.
    FAULT_NO_EXECUTE = "execute flag off"
    #: Effective ring exceeds the current ring of execution (p. 30).
    FAULT_RING_RAISED = "effective ring above ring of execution"
    #: Effective ring lies above the gate extension (``> R3``).
    FAULT_OUTSIDE_BRACKET = "ring above gate extension"
    #: Target word is not a gate location and the call is inter-segment.
    FAULT_NOT_GATE = "target is not a gate"

    @property
    def proceeds(self) -> bool:
        """True when the hardware completes the call without software help."""
        return self in (CallOutcome.SAME_RING, CallOutcome.DOWNWARD)


@dataclass(frozen=True)
class CallDecision:
    """Outcome of :func:`decide_call` plus the new ring when it proceeds."""

    outcome: CallOutcome
    new_ring: Optional[int] = None

    @property
    def proceeds(self) -> bool:
        return self.outcome.proceeds


#: Shared decision instances.  Decisions are frozen value objects and
#: ``new_ring`` ranges over the eight rings, so both decision kernels
#: can hand out interned instances instead of constructing one per
#: executed CALL/RETURN — these sit on the simulator's hottest path.
_CALL_FAULT_DECISIONS = {
    outcome: CallDecision(outcome)
    for outcome in CallOutcome
    if not outcome.proceeds
}
_SAME_RING_CALLS = tuple(
    CallDecision(CallOutcome.SAME_RING, new_ring=ring) for ring in range(8)
)
_DOWNWARD_CALLS = tuple(
    CallDecision(CallOutcome.DOWNWARD, new_ring=ring) for ring in range(8)
)


def gate_ok(wordno: int, gate_count: int, same_segment: bool) -> bool:
    """Figure 8 gate test.

    Gate locations are words ``0 .. SDW.GATE-1`` of the target segment
    (the compressed gate-list representation, paper p. 23).  A CALL whose
    operand lies in the *same* segment as the instruction ignores the
    gate list — that is the paper's internal-procedure exception (p. 29).
    """
    return same_segment or wordno < gate_count


def decide_call(
    eff_ring: int,
    cur_ring: int,
    brackets: RingBrackets,
    execute_flag: bool,
    wordno: int,
    gate_count: int,
    same_segment: bool,
) -> CallDecision:
    """The complete CALL decision of Figure 8.

    Checks, in hardware order:

    1. the target must be executable at all (E flag);
    2. the effective ring must equal the ring of execution — a raised
       effective ring means the address was influenced by a higher ring,
       which the paper deliberately turns into an access violation "even
       if the current ring of execution is within the execute bracket"
       (p. 30);
    3. the effective ring must not exceed the gate extension (``R3``);
    4. an inter-segment CALL must be directed at a gate location, *even
       for a same-ring call* (accidental-entry protection, p. 29);
    5. finally the ring transition: above the execute bracket the ring
       switches down to ``R2``; inside it the call is same-ring; below
       it the call is upward and traps for software intervention.
    """
    if not execute_flag:
        return _CALL_FAULT_DECISIONS[CallOutcome.FAULT_NO_EXECUTE]
    if eff_ring > cur_ring:
        return _CALL_FAULT_DECISIONS[CallOutcome.FAULT_RING_RAISED]
    if eff_ring > brackets.r3:
        return _CALL_FAULT_DECISIONS[CallOutcome.FAULT_OUTSIDE_BRACKET]
    if not (same_segment or wordno < gate_count):  # gate_ok, in line
        return _CALL_FAULT_DECISIONS[CallOutcome.FAULT_NOT_GATE]
    if eff_ring > brackets.r2:
        return _DOWNWARD_CALLS[brackets.r2]
    if eff_ring >= brackets.r1:
        return _SAME_RING_CALLS[eff_ring]
    return _CALL_FAULT_DECISIONS[CallOutcome.TRAP_UPWARD_CALL]


class ReturnOutcome(enum.Enum):
    """Every possible result of the Figure 9 RETURN decision."""

    #: Return proceeds without a ring change.
    SAME_RING = "same-ring return"
    #: Return proceeds, ring switches up; all PRn.RING are raised.
    UPWARD = "upward return"
    #: Downward return: trap for software intervention (paper p. 22).
    TRAP_DOWNWARD_RETURN = "downward-return trap"
    #: Target segment's execute flag is off.
    FAULT_NO_EXECUTE = "execute flag off"
    #: Target not executable in the destination ring (advance check).
    FAULT_EXECUTE_BRACKET = "destination outside execute bracket"

    @property
    def proceeds(self) -> bool:
        """True when the hardware completes the return without software help."""
        return self in (ReturnOutcome.SAME_RING, ReturnOutcome.UPWARD)


@dataclass(frozen=True)
class ReturnDecision:
    """Outcome of :func:`decide_return` plus the new ring when it proceeds."""

    outcome: ReturnOutcome
    new_ring: Optional[int] = None

    @property
    def proceeds(self) -> bool:
        return self.outcome.proceeds


#: Interned return decisions, mirroring the CALL tables above.
_RETURN_FAULT_DECISIONS = {
    outcome: ReturnDecision(outcome)
    for outcome in ReturnOutcome
    if not outcome.proceeds
}
_SAME_RING_RETURNS = tuple(
    ReturnDecision(ReturnOutcome.SAME_RING, new_ring=ring) for ring in range(8)
)
_UPWARD_RETURNS = tuple(
    ReturnDecision(ReturnOutcome.UPWARD, new_ring=ring) for ring in range(8)
)


def decide_return(
    eff_ring: int,
    cur_ring: int,
    brackets: RingBrackets,
    execute_flag: bool,
) -> ReturnDecision:
    """The complete RETURN decision of Figure 9.

    The destination ring is the effective ring of the RETURN operand
    (p. 31).  The advance check validates that the instruction following
    the return will be fetchable: the target segment must be executable
    in the destination ring.

    A *downward* return (``eff_ring < cur_ring``) cannot arise through
    hardware address formation, because the effective ring computation
    only ever raises ``TPR.RING`` above ``IPR.RING``; the case is mapped
    to the trap the paper prescribes so the decision is total and so the
    supervisor's software return-gate path has a defined entry.

    Note the asymmetry with CALL: a *raised* effective ring is not an
    error here — it is the very mechanism that guarantees a return goes
    to the caller's ring or higher (p. 34).
    """
    if not execute_flag:
        return _RETURN_FAULT_DECISIONS[ReturnOutcome.FAULT_NO_EXECUTE]
    if not brackets.execute_allowed(eff_ring):
        return _RETURN_FAULT_DECISIONS[ReturnOutcome.FAULT_EXECUTE_BRACKET]
    if eff_ring < cur_ring:
        return _RETURN_FAULT_DECISIONS[ReturnOutcome.TRAP_DOWNWARD_RETURN]
    if eff_ring == cur_ring:
        return _SAME_RING_RETURNS[eff_ring]
    return _UPWARD_RETURNS[eff_ring]
