"""The paper's primary contribution: protection-ring logic.

This package holds the *policy* of the Schroeder–Saltzer design as pure,
side-effect-free functions and value objects, independent of machine
state.  The CPU (:mod:`repro.cpu`) consults these functions on every
memory reference; the analysis package enumerates them to regenerate the
paper's figures; the tests property-check their invariants.

Modules
-------
:mod:`repro.core.rings`
    Ring brackets, the nested-subset access model, and the per-reference
    permission checks of Figures 1, 2, 4 and 6.
:mod:`repro.core.gates`
    Gate-list rules and the complete CALL/RETURN ring-transition decision
    procedures of Figures 8 and 9.
:mod:`repro.core.effective`
    The effective-ring computation of Figure 5 (the ``max`` rule over
    pointer-register rings, indirect-word rings, and write-bracket tops).
:mod:`repro.core.acl`
    Access-control-list entries and their projection onto SDW permission
    fields, including the sole-occupant bracket constraint.
"""

from .rings import (
    AccessKind,
    RingBrackets,
    check_execute,
    check_read,
    check_write,
    execute_bracket,
    gate_extension,
    in_bracket,
    permission_table,
    read_bracket,
    write_bracket,
)
from .gates import (
    CallOutcome,
    CallDecision,
    ReturnOutcome,
    ReturnDecision,
    decide_call,
    decide_return,
    gate_ok,
)
from .effective import (
    effective_ring_after_indirect,
    effective_ring_after_pr,
    initial_effective_ring,
)
from .acl import AclEntry, RingBracketSpec, build_sdw, sdw_fields_from_acl

__all__ = [
    "AccessKind",
    "RingBrackets",
    "check_execute",
    "check_read",
    "check_write",
    "execute_bracket",
    "gate_extension",
    "in_bracket",
    "permission_table",
    "read_bracket",
    "write_bracket",
    "CallOutcome",
    "CallDecision",
    "ReturnOutcome",
    "ReturnDecision",
    "decide_call",
    "decide_return",
    "gate_ok",
    "effective_ring_after_indirect",
    "effective_ring_after_pr",
    "initial_effective_ring",
    "AclEntry",
    "RingBracketSpec",
    "build_sdw",
    "sdw_fields_from_acl",
]
