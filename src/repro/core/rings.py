"""Ring brackets and per-reference permission checks.

This module is the formal heart of the reproduction.  It encodes, as pure
functions over small value objects, the access rules the paper specifies:

* the **write bracket** is rings ``0 .. R1`` (paper p. 23);
* the **execute bracket** is rings ``R1 .. R2`` — the write-bracket top
  doubles as the execute-bracket bottom (pp. 15–16);
* the **read bracket** is rings ``0 .. R2`` — the read-bracket top is
  shared with the execute-bracket top (p. 23);
* the **gate extension** is rings ``R2+1 .. R3``;
* a reference is permitted only when the corresponding flag is on *and*
  the validation ring lies within the bracket (Figures 4 and 6).

Everything takes the validation ring as an explicit argument: during
instruction fetch that is the ring of execution (``IPR.RING``), during
operand references it is the *effective ring* (``TPR.RING``) computed per
Figure 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import BracketOrderError
from ..words import MAX_RINGS, check_field


class AccessKind(enum.Enum):
    """The three kinds of validated memory reference."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"


@dataclass(frozen=True)
class RingBrackets:
    """The ring-bracket triple ``(R1, R2, R3)`` of one segment.

    ``RingBrackets`` is deliberately independent of the SDW memory format
    so that the policy functions here can be enumerated and
    property-tested without touching the encoding layer.
    """

    r1: int
    r2: int
    r3: int

    def __post_init__(self) -> None:
        check_field("R1", self.r1, 3)
        check_field("R2", self.r2, 3)
        check_field("R3", self.r3, 3)
        if not (self.r1 <= self.r2 <= self.r3):
            raise BracketOrderError(
                f"brackets must satisfy R1 <= R2 <= R3, got "
                f"({self.r1}, {self.r2}, {self.r3})"
            )

    # -- bracket ranges ----------------------------------------------------

    @property
    def write_bracket(self) -> Tuple[int, int]:
        """Inclusive ring range in which writing is bracketed: ``(0, R1)``."""
        return (0, self.r1)

    @property
    def read_bracket(self) -> Tuple[int, int]:
        """Inclusive ring range in which reading is bracketed: ``(0, R2)``."""
        return (0, self.r2)

    @property
    def execute_bracket(self) -> Tuple[int, int]:
        """Inclusive ring range in which execution is bracketed: ``(R1, R2)``."""
        return (self.r1, self.r2)

    @property
    def gate_extension(self) -> Tuple[int, int]:
        """Inclusive ring range of the gate extension: ``(R2+1, R3)``.

        Empty (``lo > hi``) when ``R2 == R3`` — the segment then offers no
        cross-ring gates, and its gate list only guards same-ring CALLs.
        """
        return (self.r2 + 1, self.r3)

    def has_gate_extension(self) -> bool:
        """True when rings above the execute bracket may call gates."""
        return self.r3 > self.r2

    # -- single-reference checks (flags live in the SDW, passed in) --------

    def write_allowed(self, ring: int) -> bool:
        """Figure 6 bracket test for a write: ``ring <= R1``."""
        return ring <= self.r1

    def read_allowed(self, ring: int) -> bool:
        """Figure 6 bracket test for a read: ``ring <= R2``."""
        return ring <= self.r2

    def execute_allowed(self, ring: int) -> bool:
        """Figure 4 bracket test for execution: ``R1 <= ring <= R2``."""
        return self.r1 <= ring <= self.r2

    def call_bracket_allowed(self, ring: int) -> bool:
        """True when ``ring`` may CALL into the segment at all.

        Covers the execute bracket plus the gate extension,
        ``R1 <= ring <= R3``.  Rings below ``R1`` are *not* excluded here:
        a call from below the execute bracket is an upward call and is
        decided (as a trap) by :func:`repro.core.gates.decide_call`.
        """
        return ring <= self.r3


def in_bracket(ring: int, bracket: Tuple[int, int]) -> bool:
    """True when ``ring`` lies in the inclusive range ``bracket``."""
    lo, hi = bracket
    return lo <= ring <= hi


def write_bracket(r1: int, r2: int, r3: int) -> Tuple[int, int]:
    """Write bracket of the triple — functional convenience form."""
    return RingBrackets(r1, r2, r3).write_bracket


def read_bracket(r1: int, r2: int, r3: int) -> Tuple[int, int]:
    """Read bracket of the triple — functional convenience form."""
    return RingBrackets(r1, r2, r3).read_bracket


def execute_bracket(r1: int, r2: int, r3: int) -> Tuple[int, int]:
    """Execute bracket of the triple — functional convenience form."""
    return RingBrackets(r1, r2, r3).execute_bracket


def gate_extension(r1: int, r2: int, r3: int) -> Tuple[int, int]:
    """Gate extension of the triple — functional convenience form."""
    return RingBrackets(r1, r2, r3).gate_extension


def check_read(ring: int, brackets: RingBrackets, flag: bool) -> bool:
    """Complete Figure 6 read check: flag on and ring within read bracket."""
    return flag and brackets.read_allowed(ring)


def check_write(ring: int, brackets: RingBrackets, flag: bool) -> bool:
    """Complete Figure 6 write check: flag on and ring within write bracket."""
    return flag and brackets.write_allowed(ring)


def check_execute(ring: int, brackets: RingBrackets, flag: bool) -> bool:
    """Complete Figure 4 execute check: flag on and ring within execute bracket."""
    return flag and brackets.execute_allowed(ring)


def permission_table(
    brackets: RingBrackets,
    read_flag: bool,
    write_flag: bool,
    execute_flag: bool,
    nrings: int = MAX_RINGS,
) -> List[Dict[str, object]]:
    """Per-ring permission summary — the content of Figures 1 and 2.

    Returns one row per ring with boolean ``read``/``write``/``execute``
    columns and a ``gate`` column that is True in the gate extension.
    The analysis package renders these rows as the paper's bracket
    diagrams; tests cross-check them against the single-reference
    functions above.
    """
    rows: List[Dict[str, object]] = []
    gate_lo, gate_hi = brackets.gate_extension
    for ring in range(nrings):
        rows.append(
            {
                "ring": ring,
                "read": check_read(ring, brackets, read_flag),
                "write": check_write(ring, brackets, write_flag),
                "execute": check_execute(ring, brackets, execute_flag),
                "gate": execute_flag and gate_lo <= ring <= gate_hi,
            }
        )
    return rows


def nested_subset_holds(
    brackets: RingBrackets,
    read_flag: bool,
    write_flag: bool,
    execute_flag: bool,
    nrings: int = MAX_RINGS,
) -> bool:
    """Verify the nested-subset property for read/write capabilities.

    The paper's definition (p. 11): the capabilities of ring ``m`` are a
    subset of those of ring ``n`` whenever ``m > n``.  For the read and
    write capabilities of a single segment this means the per-ring
    permission columns are monotonically non-increasing as the ring
    number grows.  (Execution is deliberately *not* monotone — the lower
    limit of the execute bracket exists precisely to prevent accidental
    execution in too low a ring, p. 15 — so it is excluded.)
    """
    table = permission_table(brackets, read_flag, write_flag, execute_flag, nrings)
    for kind in ("read", "write"):
        seen_false = False
        for row in table:
            if not row[kind]:
                seen_false = True
            elif seen_false:
                return False
    return True
