"""The effective-ring computation of Figure 5.

During effective-address formation the processor threads a ring number
(``TPR.RING``) alongside the two-part address.  The ring starts at the
ring of execution and is *raised* — never lowered — at each step that
could have let a higher-numbered ring influence the address:

* when the instruction addresses relative to a pointer register,
  ``TPR.RING := max(TPR.RING, PRn.RING)``;
* each time an indirect word is retrieved,
  ``TPR.RING := max(TPR.RING, IND.RING, SDW.R1(segment holding the
  indirect word))``.

The ``SDW.R1`` term is the subtle one: the top of the write bracket of
the segment an indirect word was fetched from is the highest ring that
could have *written* that indirect word, and therefore the highest ring
that could have influenced the resulting address (paper pp. 26–27).

These three functions are the complete rule; the address unit
(:mod:`repro.cpu.address`) applies them step by step, and the property
tests verify monotonicity over arbitrary chains.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def initial_effective_ring(cur_ring: int) -> int:
    """Start of Figure 5: the effective ring begins at the ring of execution."""
    return cur_ring


def effective_ring_after_pr(eff_ring: int, pr_ring: int) -> int:
    """Raise the effective ring for pointer-register-relative addressing."""
    return max(eff_ring, pr_ring)


def effective_ring_after_indirect(
    eff_ring: int, ind_ring: int, holder_write_top: int
) -> int:
    """Raise the effective ring after retrieving one indirect word.

    ``ind_ring`` is the RING field of the indirect word itself;
    ``holder_write_top`` is ``SDW.R1`` of the segment the indirect word
    was fetched from.
    """
    return max(eff_ring, ind_ring, holder_write_top)


def effective_ring_of_chain(
    cur_ring: int,
    pr_ring: int = None,  # type: ignore[assignment]
    chain: Sequence[Tuple[int, int]] = (),
) -> int:
    """Effective ring after a whole address computation.

    ``chain`` is the sequence of ``(ind_ring, holder_write_top)`` pairs
    encountered while following indirection.  This closed form exists for
    the analysis and property tests; the hardware path computes the same
    value incrementally.
    """
    ring = initial_effective_ring(cur_ring)
    if pr_ring is not None:
        ring = effective_ring_after_pr(ring, pr_ring)
    for ind_ring, holder_write_top in chain:
        ring = effective_ring_after_indirect(ring, ind_ring, holder_write_top)
    return ring


def highest_influencer(
    cur_ring: int,
    pr_ring: int = None,  # type: ignore[assignment]
    chain: Iterable[Tuple[int, int]] = (),
) -> int:
    """Alias of :func:`effective_ring_of_chain` named for what it means.

    The effective ring *is* "the highest numbered ring from which a
    procedure (in the same process) possibly could have influenced the
    effective address calculation" (paper p. 26).
    """
    return effective_ring_of_chain(cur_ring, pr_ring, tuple(chain))
