"""Access-control-list entries and their projection onto SDW fields.

The paper's third framework assumption (p. 8): every on-line segment
carries an access control list naming the users permitted to use it, and
"the gate list and the numbers specifying the read, write, and execute
brackets and gate extension in each SDW all come from the access control
list entry which matched the name of the user associated with the
process" (p. 16).  This module defines that ACL entry and the projection.

It also implements the *sole occupant* software constraint (p. 37): a
program executing in ring ``n`` cannot specify ``R1``, ``R2`` or ``R3``
values less than ``n`` — otherwise it could manufacture capabilities for
rings it does not occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import AccessDenied, BracketOrderError
from ..formats.sdw import SDW
from ..words import check_field
from .rings import RingBrackets


@dataclass(frozen=True)
class RingBracketSpec:
    """The bracket triple plus permission flags an ACL entry grants."""

    r1: int = 0
    r2: int = 0
    r3: int = 0
    read: bool = False
    write: bool = False
    execute: bool = False
    gate: int = 0

    def __post_init__(self) -> None:
        check_field("ACL.R1", self.r1, 3)
        check_field("ACL.R2", self.r2, 3)
        check_field("ACL.R3", self.r3, 3)
        check_field("ACL.GATE", self.gate, 14)
        if not (self.r1 <= self.r2 <= self.r3):
            raise BracketOrderError(
                f"ACL brackets must satisfy R1 <= R2 <= R3, got "
                f"({self.r1}, {self.r2}, {self.r3})"
            )

    @property
    def brackets(self) -> RingBrackets:
        """The bracket triple as a policy object."""
        return RingBrackets(self.r1, self.r2, self.r3)

    @classmethod
    def procedure(
        cls,
        ring: int,
        callable_from: int = None,  # type: ignore[assignment]
        gate: int = 0,
        top: int = None,  # type: ignore[assignment]
    ) -> "RingBracketSpec":
        """Grant for a pure procedure intended to execute in ``ring``.

        Execute bracket ``[ring, top or ring]``; readable (procedures
        carry their own link words, retrieved as validated reads during
        address formation); not writable.  ``callable_from`` extends the
        gate extension so rings up to it may CALL the segment's gates.
        """
        r2 = top if top is not None else ring
        r3 = callable_from if callable_from is not None else r2
        return cls(r1=ring, r2=r2, r3=r3, read=True, execute=True, gate=gate)

    @classmethod
    def data(
        cls, ring: int, write: bool = True, read_to: int = None  # type: ignore[assignment]
    ) -> "RingBracketSpec":
        """Grant for a data segment writable up to ``ring``.

        Read bracket extends to ``read_to`` (default: same as write),
        execute off.
        """
        r2 = read_to if read_to is not None else ring
        return cls(r1=ring, r2=r2, r3=r2, read=True, write=write)

    def check_settable_from(self, ring: int) -> None:
        """Enforce the sole-occupant constraint for a setter in ``ring``.

        Raises :class:`repro.errors.AccessDenied` when any bracket number
        is below the setter's ring.
        """
        low = min(self.r1, self.r2, self.r3)
        if low < ring:
            raise AccessDenied(
                f"a program in ring {ring} may not specify bracket numbers "
                f"below {ring} (got R1={self.r1}, R2={self.r2}, R3={self.r3})"
            )


@dataclass(frozen=True)
class AclEntry:
    """One access-control-list entry: a user name plus granted access.

    ``username`` may be the literal ``"*"`` to match every user — the
    paper's "accessible to the processes of all users" case (p. 35).
    """

    username: str
    spec: RingBracketSpec

    def matches(self, username: str) -> bool:
        """True when this entry applies to ``username``."""
        return self.username == "*" or self.username == username


def sdw_fields_from_acl(spec: RingBracketSpec) -> Dict[str, object]:
    """Project an ACL grant onto the SDW fields it determines.

    The address, bound and present bit are storage-management facts and
    are supplied by the supervisor when it builds the SDW; everything
    access-related comes from the ACL entry, exactly as the paper says.
    """
    return {
        "r1": spec.r1,
        "r2": spec.r2,
        "r3": spec.r3,
        "read": spec.read,
        "write": spec.write,
        "execute": spec.execute,
        "gate": spec.gate,
    }


def build_sdw(spec: RingBracketSpec, addr: int, bound: int, paged: bool = False) -> SDW:
    """Combine an ACL grant with storage facts into a complete SDW."""
    return SDW(
        addr=addr,
        bound=bound,
        paged=paged,
        present=True,
        **sdw_fields_from_acl(spec),  # type: ignore[arg-type]
    )
