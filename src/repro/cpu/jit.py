"""The trace-compile tier: hot superblock paths as specialized closures.

The superblock tier (:mod:`repro.cpu.blockcache`) validates once per
``(segno, ring)`` per entry and runs pre-resolved handlers in a tight
loop, but it still pays, per instruction, a tuple unpack, a handler
call, a scratch-TPR rebuild, and — inside the handler — the PTLB probe
and counter mirror of :meth:`Processor.validate_access`.  The same
argument that justified the block tier applies one more time: along a
*recorded* hot path every one of those per-instruction decisions has a
known answer, so fold them into the code itself.

A **compiled trace** is a Python closure generated (source text →
``compile``/``exec``) from one concretely observed instruction path
starting at a hot block-dispatch head:

* operand decode and effective-address formation are constant-folded
  against the recorded instruction words and the validated
  ``(segno, ring)`` translations — a memory read becomes a single
  ``mem[addr]`` subscript;
* the CALL and RETURN decision procedures (Figures 8 and 9) are
  evaluated at compile time against the SDWs the entry guards pin, so a
  repeat gate call performs only the register writes of the crossing;
* every architectural counter update — cycles, memory traffic, the
  SDW/PTLB/icache hit mirrors, call/return/crossing statistics, the
  interval-timer and event countdowns — is accumulated as path
  constants and applied in one batch add on trace exit;
* a path that returns to its own head at the same ring compiles into an
  internal loop, so the dominant cost of a hot gate-call cycle is a few
  dozen Python bytecodes per iteration.

**Exactness contract.**  A trace may execute an instruction only when
it can prove, before executing it, that per-step execution would have
completed it with the recorded outcome; otherwise it exits *before* the
instruction with the batch counters of the completed prefix, and the
dispatcher re-executes it on the slower tiers — so a trace can never
fault, and fault attribution stays pinned to the per-step interpreter.
Concretely:

* entry guards re-check, by identity, every PTLB translation and every
  SDW the compilation folded, and compare every covered code word
  against memory (the block tier's word-compare backstop);
* data-dependent branches and folded indirect words and pointer
  registers are guarded inline, every iteration;
* the trace length is bounded by ``min(budget, timer - 1, soonest
  event - 1)`` so countdowns still expire *between* instructions on the
  per-step path;
* stores go through :meth:`Processor.write_word` (keeping the charge
  and the precise-invalidation fan-out), and the trace checks its own
  ``valid`` flag after each store so self-modifying code stops it after
  the current instruction, exactly like a superblock.

Mid-trace coherence needs no further checks because a trace performs no
SDW fetches (everything is folded) and the host is single-threaded: the
only mutation vectors inside a trace are its own stores, and those are
covered by the ``valid`` flip.  Wholesale invalidations (DBR loads,
``invalidate_sdw``) and SDW-cache evictions fan out to this cache from
the processor exactly as they do to the block cache.

**Parity backstop.**  With ``REPRO_JIT_PARITY=1`` in the environment the
tier turns on wherever the block tier is on and every trace execution is
co-executed against the reference interpreter: run the trace with a
write-logging store hook, rewind (registers, counters, logged words),
replay the same number of instructions through :meth:`Processor.step`,
and compare the complete end states.  Any divergence raises
:class:`JitParityError`.  Like the other host tiers the trace cache is
architecturally invisible: simulated figures are bit-identical with the
tier on or off.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..core.effective import effective_ring_after_indirect
from ..core.gates import decide_call, decide_return
from ..errors import MachineHalted
from ..formats.indirect import unpack_raw
from ..formats.instruction import Instruction
from ..words import HALF_MASK, WORD_MASK
from .access_cache import GROUP_EXECUTE, GROUP_READ, GROUP_WRITE
from .isa import BY_NUMBER, Op
from .operations import needs_effective_address
from .validate import brackets_of

#: Longest instruction path one recording may cover.
MAX_TRACE_LEN = 64

#: Shortest non-cyclic path worth compiling (cyclic paths always are).
MIN_LINEAR_LEN = 4

#: Dispatches of a trace-less head before recording starts there.
HOT_THRESHOLD = 4

#: Superblock budget clamp while a dispatch head is warming toward a
#: trace.  Block chains otherwise consume the whole run budget in one
#: dispatch, so a hot head would never re-dispatch and never record;
#: the clamp hands control back every chunk, letting the block tier
#: run (and count) while the head accrues dispatches.
WARMUP_CHUNK = 256

#: Hotness-counter floor marking a head given up on for good.
GIVEN_UP = -(1 << 30)

#: Extra dispatches required to re-record after an invalidation or a
#: failed recording — ``compile()`` is far more expensive than a block
#: decode, so churn is backed off harder than the block tier's.
REBUILD_BACKOFF = 16

#: Permanently give up on a head after this many failed compilations.
MAX_COMPILE_FAILURES = 3

#: Wholesale-flush ceiling on compiled traces.
MAX_TRACES = 256

#: Ceiling on the hotness-counter table.
MAX_HOT_COUNTERS = 4096

#: Environment switch: force the tier on and co-execute every trace
#: against the per-step interpreter (the parity backstop mode).
PARITY_ENV = "REPRO_JIT_PARITY"


def parity_requested() -> bool:
    """Is the parity-backstop environment switch set?"""
    return os.environ.get(PARITY_ENV, "") == "1"


class JitParityError(AssertionError):
    """A compiled trace diverged from the per-step interpreter."""


# ---------------------------------------------------------------------------
# recording
# ---------------------------------------------------------------------------

#: read-group ops a trace can inline (A/Q arithmetic over an operand)
_READ_OPS = (Op.LDA, Op.LDQ, Op.ADA, Op.SBA, Op.ANA, Op.ORA, Op.ERA)

#: write-group ops a trace can inline -> stored-value expression
_WRITE_OPS = {Op.STA: "acc", Op.STQ: "qreg", Op.STZ: "0"}

#: no-EA ops a trace can inline (immediate read group and register ops)
_SIMPLE_OPS = _READ_OPS + (Op.NOP, Op.LDCR, Op.ARS, Op.ALS)

#: plain transfers and their taken-condition source expressions
_XFER_CONDS = {
    Op.TRA: None,
    Op.TZE: "acc == 0",
    Op.TNZ: "acc != 0",
    Op.TMI: "acc >> 35",
    Op.TPL: "not (acc >> 35)",
}

#: step kinds (trace-local; a trace path has no terminal notion)
S_SIMPLE = 0
S_EA = 1
S_XFER = 2
S_CALL = 3
S_RETURN = 4


class _Step:
    """One recorded instruction: pre-state, decode, captured operands."""

    __slots__ = (
        "ring", "segno", "wordno", "word", "inst", "op", "kind",
        "taken", "pr", "iword", "post",
    )

    def __init__(self, ring, segno, wordno, word, inst, op, kind):
        self.ring = ring
        self.segno = segno
        self.wordno = wordno
        self.word = word
        self.inst = inst
        self.op = op
        self.kind = kind
        self.taken: Optional[bool] = None
        self.pr: Optional[Tuple[int, int, int]] = None
        self.iword: Optional[int] = None
        self.post: Tuple[int, int, int] = (0, 0, 0)


def _classify(proc, inst, op) -> Optional[int]:
    """The step kind for a supportable instruction, else None.

    Anything this returns None for ends the recording *before* the
    instruction: the trace simply stops there and the slower tiers run
    the remainder, so refusing an instruction is always safe.
    """
    if op is None or op.privileged or op is Op.HALT:
        return None
    if inst.immediate and (op.is_eap or op.is_spr or op.transfer):
        return None  # illegal combination: must fault on the slow path
    if op is Op.CALL:
        if inst.prflag or inst.indexed:
            return None
        return S_CALL
    if op is Op.RETURN:
        if inst.indirect or inst.indexed:
            return None
        return S_RETURN
    if op.transfer:
        if inst.indirect or inst.prflag or inst.indexed:
            return None
        return S_XFER
    if not needs_effective_address(op, inst):
        return S_SIMPLE if op in _SIMPLE_OPS else None
    if inst.indirect or inst.immediate:
        return None  # indirect chases and odd immediates stay per-step
    if op.is_eap or op in _READ_OPS or op in _WRITE_OPS or op is Op.AOS:
        return S_EA
    return None


def _record(proc, budget: int):
    """Single-step up to ``MAX_TRACE_LEN`` instructions, logging the path.

    Execution *is* the ordinary interpreter — the log is pure host-side
    observation, so the recorded instructions are charged and counted
    exactly.  Returns ``(steps, cyclic, consumed, halted)``; ``steps``
    is None when the path cannot be compiled (a fault or tick landed
    mid-path, so the log does not describe straight-line execution).
    """
    regs = proc.registers
    ipr = regs.ipr
    head = (ipr.ring, ipr.segno, ipr.wordno)
    faults_before = proc.stats.faults
    steps: List[_Step] = []
    consumed = 0
    limit = min(MAX_TRACE_LEN, budget)
    while consumed < limit:
        ring, segno, wordno = ipr.ring, ipr.segno, ipr.wordno
        sdw = proc.sdw_cache._entries.get(segno)
        if sdw is None or sdw.paged or wordno >= sdw.bound:
            break
        word = proc.memory._words[sdw.addr + wordno]
        inst = Instruction.unpack(word)
        op = BY_NUMBER.get(inst.opcode)
        kind = _classify(proc, inst, op)
        if kind is None:
            break
        step = _Step(ring, segno, wordno, word, inst, op, kind)
        if kind == S_XFER:
            step.taken = _taken(op, regs.a)
        elif kind == S_CALL and inst.indirect:
            if inst.offset >= sdw.bound:
                break
            iword = proc.memory._words[sdw.addr + inst.offset]
            if unpack_raw(iword)[3]:
                break  # multi-hop chains keep the per-step chase
            step.iword = iword
        if inst.prflag:
            pr = regs.prs[inst.prnum]
            step.pr = (pr.segno, pr.wordno, pr.ring)
        try:
            proc.step()
        except MachineHalted:
            return None, False, consumed + 1, True
        consumed += 1
        if proc.stats.faults != faults_before:
            return None, False, consumed, False
        step.post = (ipr.ring, ipr.segno, ipr.wordno)
        steps.append(step)
        if step.post == head:
            return steps, True, consumed, False
    return steps, False, consumed, False


def _taken(op: Op, a: int) -> bool:
    if op is Op.TRA:
        return True
    if op is Op.TZE:
        return a == 0
    if op is Op.TNZ:
        return a != 0
    negative = bool(a >> 35)
    return negative if op is Op.TMI else not negative


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


class _Abort(Exception):
    """The recorded path cannot be folded; give up on this compilation."""


class CompiledTrace:
    """One compiled path: the closure plus its invalidation footprint."""

    __slots__ = ("key", "fn", "length", "cyclic", "valid", "words", "source")

    def __init__(self, key, fn, length, cyclic, words, source):
        self.key = key  # (segno, wordno, ring)
        self.fn = fn  # fn(proc, budget, write_word) -> steps consumed
        self.length = length
        self.cyclic = cyclic
        self.valid = True
        #: segno -> set of covered code wordnos (precise invalidation)
        self.words: Dict[int, set] = words
        self.source = source  # kept for diagnostics


def _finish(proc, regs, acc, qreg, it, ex, itc):
    """Apply one exit point's batched counters and materialize state.

    ``ex`` holds the exit's prefix constants, ``itc`` the per-iteration
    constants (all zero for non-cyclic traces), both as
    ``(n, cycles, reads, sdw_hits, ptlb_hits, calls, returns,
    crossings)`` with the exit's IPR target appended to ``ex``.  This
    mirrors, in one batch, exactly the updates per-step execution would
    have made — the same contract as the block tier's exit flush.
    """
    n = it * itc[0] + ex[0]
    proc.cycles += it * itc[1] + ex[1]
    proc.memory.reads += it * itc[2] + ex[2]
    proc.sdw_cache.hits += it * itc[3] + ex[3]
    proc.access_cache.hits += it * itc[4] + ex[4]
    proc.inst_cache.hits += n
    stats = proc.stats
    stats.instructions += n
    stats.calls += it * itc[5] + ex[5]
    stats.returns += it * itc[6] + ex[6]
    stats.ring_crossings += it * itc[7] + ex[7]
    regs.a = acc
    regs.q = qreg
    ipr = regs.ipr
    ipr.ring = ex[8]
    ipr.segno = ex[9]
    ipr.wordno = ex[10]
    if proc.timer is not None:
        proc.timer -= n
    for event in proc._events:
        event[0] -= n
    return n


class _Compiler:
    """Source generator for one recorded path."""

    def __init__(self, proc, key, steps: List[_Step], cyclic: bool):
        self.proc = proc
        self.key = key
        self.steps = steps
        self.cyclic = cyclic
        self.head = (key[2], key[0], key[1])  # (ring, segno, wordno)
        self.body: List[str] = []
        self.consts: Dict[str, object] = {}
        self._const_names: Dict[int, str] = {}  # id(obj) -> name
        self._exit_names: Dict[tuple, str] = {}
        self.sdw_guards: Dict[int, object] = {}  # segno -> SDW
        self.pair_guards: Dict[tuple, int] = {}  # (segno, ring, group) -> segno
        self.code_words: Dict[int, Dict[int, int]] = {}
        self.prs_used: set = set()
        self.uses_ww = False
        # path accumulators: n, cyc, reads, sdwh, ptlbh, calls, rets, cross
        self.acc = [0] * 8
        # the accumulators as of the *start* of the current step: a
        # guard that exits before its instruction must commit exactly
        # the completed prefix — the per-step path re-fetches (and
        # re-charges) the instruction it exits in front of
        self.step_start = (0,) * 8
        self.pos = self.head

    # -- constants and guards ------------------------------------------------

    def sdw_const(self, segno: int):
        """Pin ``segno``'s SDW by identity; returns its constant name."""
        sdw = self.proc.sdw_cache._entries.get(segno)
        if sdw is None or sdw.paged:
            raise _Abort(f"segment {segno} has no usable cached SDW")
        held = self.sdw_guards.setdefault(segno, sdw)
        if held is not sdw:  # cannot happen; defensive
            raise _Abort("SDW identity changed during compilation")
        name = self._const_names.get(id(sdw))
        if name is None:
            name = f"S{len(self._const_names)}"
            self._const_names[id(sdw)] = name
            self.consts[name] = sdw
        return name

    def pair(self, segno: int, ring: int, group: str):
        """Require a live PTLB entry for ``(segno, ring, group)``.

        Folding a validation is sound only while the PTLB still holds
        this exact SDW for the pair — the same identity rule
        ``validate_access`` applies per reference, hoisted to trace
        entry.  Returns the SDW (a compile-time constant thereafter).
        """
        name = self.sdw_const(segno)
        sdw = self.sdw_guards[segno]
        held = self.proc.access_cache._entries.get((segno, ring, group))
        if held is not sdw:
            raise _Abort(f"no PTLB entry for ({segno}, {ring}, {group})")
        self.pair_guards[(segno, ring, group)] = segno
        return sdw

    def exit_call(self, pos, it_expr: str, prefix=None) -> str:
        """A ``return`` statement committing a counter prefix at ``pos``."""
        ex = tuple(self.acc if prefix is None else prefix) + pos
        name = self._exit_names.get(ex)
        if name is None:
            name = f"E{len(self._exit_names)}"
            self._exit_names[ex] = name
            self.consts[name] = ex
        return f"return _X(proc, regs, acc, qreg, {it_expr}, {name}, IT)"

    def exit_before(self, step: _Step, it_expr: str) -> str:
        """Exit in front of ``step``: prefix as of the step's start."""
        return self.exit_call(
            (step.ring, step.segno, step.wordno), it_expr, self.step_start
        )

    # -- per-kind emission ---------------------------------------------------

    def effective_address(self, step: _Step, it_expr: str):
        """Fold Figure 5's non-indirect case for ``step``.

        Returns ``(ring, segno, wordno_expr, const_wordno)`` where
        ``wordno_expr`` is source text and ``const_wordno`` is its value
        when compile-time constant (None when runtime).  Pointer-register
        fields are guarded inline against their recorded values, so the
        fold is exact whenever the guard passes.
        """
        inst = step.inst
        if inst.prflag:
            ps, pw, pring = step.pr
            n = inst.prnum
            self.prs_used.add(n)
            self.body.append(
                f"if p{n}.segno != {ps} or p{n}.wordno != {pw} "
                f"or p{n}.ring != {pring}: "
                + self.exit_before(step, it_expr)
            )
            ring = pring if pring > step.ring else step.ring
            if inst.indexed:
                expr = f"(({pw} + (({inst.offset} + (acc & HM)) & HM)) & HM)"
                return ring, ps, expr, None
            wordno = (pw + inst.offset) & HALF_MASK
            return ring, ps, str(wordno), wordno
        if inst.indexed:
            expr = f"(({inst.offset} + (acc & HM)) & HM)"
            return step.ring, step.segno, expr, None
        return step.ring, step.segno, str(inst.offset), inst.offset

    def emit_fetch(self, step: _Step):
        """Account one instruction fetch (base + word read + mirrors)."""
        sdw = self.pair(step.segno, step.ring, GROUP_EXECUTE)
        if step.wordno >= sdw.bound:
            raise _Abort("recorded fetch is outside the current bound")
        self.code_words.setdefault(step.segno, {})[step.wordno] = step.word
        cost = self.proc.cost
        self.acc[0] += 1
        self.acc[1] += cost.instruction_base + cost.memory_reference
        self.acc[2] += 1
        self.acc[3] += 1
        self.acc[4] += 1

    def emit_simple(self, step: _Step):
        op, inst = step.op, step.inst
        if op is Op.NOP:
            return
        if op is Op.LDCR:
            self.body.append("acc = regs.crr")
        elif op is Op.ARS:
            self.body.append(f"acc >>= {min(inst.offset, 35)}")
        elif op is Op.ALS:
            self.body.append(f"acc = (acc << {min(inst.offset, 35)}) & WM")
        else:
            self.emit_alu(op, str(inst.offset))

    def emit_alu(self, op: Op, value_expr: str):
        """A/Q arithmetic on an operand expression (masks maintained)."""
        if op is Op.LDA:
            self.body.append(f"acc = {value_expr}")
        elif op is Op.LDQ:
            self.body.append(f"qreg = {value_expr}")
        elif op is Op.ADA:
            self.body.append(f"acc = (acc + {value_expr}) & WM")
        elif op is Op.SBA:
            self.body.append(f"acc = (acc - {value_expr}) & WM")
        elif op is Op.ANA:
            self.body.append(f"acc &= {value_expr}")
        elif op is Op.ORA:
            self.body.append(f"acc |= {value_expr}")
        else:  # ERA
            self.body.append(f"acc ^= {value_expr}")

    def operand_site(self, step, ring, segno, wexpr, wconst, group, it_expr):
        """Validate-and-translate fold for one operand reference.

        Returns the memory index expression.  Constant word numbers are
        bound-checked at compile time (the entry guards pin the bound);
        runtime word numbers get an inline bound guard that exits before
        the instruction, exactly where per-step execution would fault.
        """
        sdw = self.pair(segno, ring, group)
        if wconst is not None:
            if wconst >= sdw.bound:
                raise _Abort("recorded operand is outside the current bound")
            index = str(sdw.addr + wconst)
        else:
            self.body.append(f"w = {wexpr}")
            self.body.append(
                f"if w >= {sdw.bound}: " + self.exit_before(step, it_expr)
            )
            index = f"{sdw.addr} + w"
        self.acc[3] += 1  # the mirrored SDW-cache hit
        self.acc[4] += 1  # the mirrored PTLB hit
        return index

    def emit_ea(self, step: _Step, it_expr: str):
        op = step.op
        ring, segno, wexpr, wconst = self.effective_address(step, it_expr)
        if op.is_eap:
            n = op.pr_index
            self.prs_used.add(n)
            if wconst is None:
                self.body.append(f"w = {wexpr}")
                wexpr = "w"
            self.body.append(
                f"p{n}.segno = {segno}; p{n}.wordno = {wexpr}; "
                f"p{n}.ring = {ring}"
            )
            return
        if op in _READ_OPS:
            index = self.operand_site(
                step, ring, segno, wexpr, wconst, GROUP_READ, it_expr
            )
            self.acc[1] += self.proc.cost.memory_reference  # the charged read
            self.acc[2] += 1
            self.emit_alu(op, f"mem[{index}]")
            return
        if op is Op.AOS:
            sdw = self.pair(segno, ring, GROUP_READ)
            if not (
                sdw.write
                and brackets_of(sdw).write_allowed(ring)
                and (wconst is None or wconst < sdw.bound)
            ):
                raise _Abort("AOS write half would fault")
            index = self.operand_site(
                step, ring, segno, wexpr, wconst, GROUP_READ, it_expr
            )
            self.acc[1] += self.proc.cost.memory_reference
            self.acc[2] += 1
            sname = self.sdw_const(segno)
            wno = "w" if wconst is None else str(wconst)
            self.emit_store(step, sname, segno, wno, f"(mem[{index}] + 1) & WM", it_expr)
            return
        # write group (STA/STQ/STZ)
        index = self.operand_site(
            step, ring, segno, wexpr, wconst, GROUP_WRITE, it_expr
        )
        sname = self.sdw_const(segno)
        wno = "w" if wconst is None else str(wconst)
        self.emit_store(step, sname, segno, wno, _WRITE_OPS[op], it_expr)

    def emit_store(self, step, sname, segno, wordno_expr, value_expr, it_expr):
        """A charged store through ``write_word`` plus the SMC backstop.

        The store keeps the per-word invalidation fan-out; if it landed
        in this very trace the ``valid`` flip exits after the current
        instruction — the block tier's self-modification rule.
        """
        self.uses_ww = True
        self.body.append(f"ww({sname}, {segno}, {wordno_expr}, {value_expr})")
        # Commit the store's instruction before exiting: position and
        # counters are those *after* this instruction completes.
        saved_pos, saved_acc = self.pos, list(self.acc)
        self.pos = (step.ring, step.segno, (step.wordno + 1) & HALF_MASK)
        self.body.append(
            "if not TR.valid: " + self.exit_call(self.pos, it_expr)
        )
        self.pos, self.acc = saved_pos, saved_acc

    def emit_xfer(self, step: _Step, it_expr: str):
        cond = _XFER_CONDS[step.op]
        target = step.inst.offset
        if step.taken:
            if cond is not None:
                self.body.append(
                    f"if not ({cond}): " + self.exit_before(step, it_expr)
                )
            sdw = self.pair(step.segno, step.ring, GROUP_EXECUTE)
            if target >= sdw.bound:
                raise _Abort("recorded transfer target is out of bounds")
            self.acc[3] += 1  # the advance check's mirrored hits
            self.acc[4] += 1
            self.pos = (step.ring, step.segno, target)
        else:
            self.body.append(
                f"if {cond}: " + self.exit_before(step, it_expr)
            )
            self.pos = (step.ring, step.segno, (step.wordno + 1) & HALF_MASK)

    def emit_call(self, step: _Step, it_expr: str):
        proc = self.proc
        inst = step.inst
        ering, tseg, tword = step.ring, step.segno, inst.offset
        if inst.indirect:
            src = self.pair(step.segno, step.ring, GROUP_READ)
            if inst.offset >= src.bound:
                raise _Abort("indirect word is outside the current bound")
            iaddr = src.addr + inst.offset
            self.body.append(
                f"if mem[{iaddr}] != {step.iword}: "
                + self.exit_before(step, it_expr)
            )
            self.acc[1] += self.proc.cost.memory_reference  # the hop's read
            self.acc[2] += 1
            self.acc[3] += 1  # its mirrored validation hits
            self.acc[4] += 1
            tseg, tword, iring, _ = unpack_raw(step.iword)
            ering = effective_ring_after_indirect(step.ring, iring, src.r1)
        self.sdw_const(tseg)
        tsdw = self.sdw_guards[tseg]
        self.acc[3] += 1  # op_call's fetch_sdw hits the associative memory
        if tword >= tsdw.bound:
            raise _Abort("CALL target is outside the current bound")
        decision = decide_call(
            eff_ring=ering,
            cur_ring=step.ring,
            brackets=brackets_of(tsdw),
            execute_flag=tsdw.execute,
            wordno=tword,
            gate_count=tsdw.gate,
            same_segment=tseg == step.segno,
        )
        if not decision.proceeds:
            raise _Abort("folded CALL decision does not proceed")
        new_ring = decision.new_ring
        if not proc.hardware_rings and new_ring != step.ring:
            raise _Abort("software-ring CALL crossing traps")
        if proc.auth_stack is not None and new_ring != step.ring:
            # auth_return_stack: the crossing mutates the MAC chain;
            # keep crossings on the interpreted path, like the 645 case.
            raise _Abort("authenticated-return-stack CALL crossing")
        if proc.stack_rule == "simple":
            stack = str(new_ring)
        elif new_ring == step.ring:
            self.prs_used.add(6)
            stack = "p6.segno"
        else:
            stack = str(proc.dbr.stack_segno(new_ring))
        self.prs_used.add(0)
        self.body.append(
            f"p0.segno = {stack}; p0.wordno = 0; p0.ring = {new_ring}; "
            f"regs.crr = {step.ring}"
        )
        self.acc[5] += 1
        if new_ring != step.ring:
            self.acc[7] += 1
            self.acc[1] += proc.cost.ring_crossing_extra
        self.pos = (new_ring, tseg, tword)
        if self.pos != step.post:
            raise _Abort("folded CALL disagrees with the recording")

    def emit_return(self, step: _Step, it_expr: str):
        proc = self.proc
        ering, tseg, wexpr, tword = self.effective_address(step, it_expr)
        if tword is None:
            raise _Abort("RETURN target is not constant under the guards")
        self.sdw_const(tseg)
        tsdw = self.sdw_guards[tseg]
        self.acc[3] += 1  # op_return's fetch_sdw hits the associative memory
        if tword >= tsdw.bound:
            raise _Abort("RETURN target is outside the current bound")
        decision = decide_return(
            eff_ring=ering,
            cur_ring=step.ring,
            brackets=brackets_of(tsdw),
            execute_flag=tsdw.execute,
        )
        if not decision.proceeds:
            raise _Abort("folded RETURN decision does not proceed")
        new_ring = decision.new_ring
        if not proc.hardware_rings and new_ring != step.ring:
            raise _Abort("software-ring RETURN crossing traps")
        if proc.auth_stack is not None and new_ring != step.ring:
            # auth_return_stack: the verification consumes a MAC frame;
            # keep crossings on the interpreted path.
            raise _Abort("authenticated-return-stack RETURN crossing")
        if new_ring > step.ring:
            self.body.append(f"regs.raise_pr_rings({new_ring})")
        self.acc[6] += 1
        if new_ring != step.ring:
            self.acc[7] += 1
            self.acc[1] += proc.cost.ring_crossing_extra
        self.pos = (new_ring, tseg, tword)
        if self.pos != step.post:
            raise _Abort("folded RETURN disagrees with the recording")

    # -- assembly ------------------------------------------------------------

    def compile(self) -> CompiledTrace:
        it_expr = "it" if self.cyclic else "0"
        for step in self.steps:
            if self.pos != (step.ring, step.segno, step.wordno):
                raise _Abort("recorded path is not position-consistent")
            self.step_start = tuple(self.acc)
            self.emit_fetch(step)
            if step.kind == S_SIMPLE:
                self.emit_simple(step)
                self.pos = (step.ring, step.segno, (step.wordno + 1) & HALF_MASK)
            elif step.kind == S_EA:
                self.emit_ea(step, it_expr)
                self.pos = (step.ring, step.segno, (step.wordno + 1) & HALF_MASK)
            elif step.kind == S_XFER:
                self.emit_xfer(step, it_expr)
            elif step.kind == S_CALL:
                self.emit_call(step, it_expr)
            else:
                self.emit_return(step, it_expr)
            if step.kind in (S_SIMPLE, S_EA) and self.pos != step.post:
                raise _Abort("straight-line step disagrees with the recording")
        if self.cyclic and self.pos != self.head:
            raise _Abort("cyclic recording does not close at its head")
        source = self._assemble(it_expr)
        namespace = dict(self.consts)
        namespace["_X"] = _finish
        namespace["WM"] = WORD_MASK
        namespace["HM"] = HALF_MASK
        segno, wordno, ring = self.key
        code = compile(source, f"<jit {segno}:{wordno} r{ring}>", "exec")
        exec(code, namespace)
        words = {
            segno: set(per_seg) for segno, per_seg in self.code_words.items()
        }
        trace = CompiledTrace(
            self.key, namespace["_trace"], len(self.steps), self.cyclic,
            words, source,
        )
        namespace["TR"] = trace
        return trace

    def _prologue(self) -> List[str]:
        lines = [
            "def _trace(proc, budget, ww):",
            "    regs = proc.registers",
            "    se = proc.sdw_cache._entries",
        ]
        if self.pair_guards:
            lines.append("    ac = proc.access_cache._entries")
        for i, (segno, sdw) in enumerate(sorted(self.sdw_guards.items())):
            name = self._const_names[id(sdw)]
            lines.append(f"    if se.get({segno}) is not {name}: return 0")
        for pair in sorted(self.pair_guards):
            name = self._const_names[id(self.sdw_guards[pair[0]])]
            pname = f"P{len([k for k in self.consts if k.startswith('P')])}"
            self.consts[pname] = pair
            lines.append(f"    if ac.get({pname}) is not {name}: return 0")
        lines.append("    mem = proc.memory._words")
        for segno in sorted(self.code_words):
            sdw = self.sdw_guards[segno]
            per_seg = self.code_words[segno]
            for start, values in _runs(per_seg):
                base = sdw.addr + start
                if len(values) == 1:
                    lines.append(
                        f"    if mem[{base}] != {values[0]}: return 0"
                    )
                else:
                    cname = f"C{len([k for k in self.consts if k.startswith('C')])}"
                    self.consts[cname] = list(values)
                    lines.append(
                        f"    if mem[{base}:{base + len(values)}] != {cname}:"
                        " return 0"
                    )
        lines += [
            "    limit = budget",
            "    timer = proc.timer",
            "    if timer is not None:",
            "        if timer <= 1: return 0",
            "        if timer - 1 < limit: limit = timer - 1",
            "    events = proc._events",
            "    if events:",
            "        soonest = min(event[0] for event in events)",
            "        if soonest <= 1: return 0",
            "        if soonest - 1 < limit: limit = soonest - 1",
        ]
        return lines

    def _assemble(self, it_expr: str) -> str:
        n_total = self.acc[0]
        lines = self._prologue()
        if self.cyclic:
            # Enter iteration ``it`` only when even a divergence exit at
            # the last instruction stays within ``limit`` — countdowns
            # can then never expire mid-trace.
            lines.append(f"    iters = (limit - {n_total - 1}) // {n_total}")
            lines.append("    if iters <= 0: return 0")
        else:
            lines.append(f"    if limit < {n_total}: return 0")
        lines.append("    acc = regs.a")
        lines.append("    qreg = regs.q")
        if self.prs_used:
            lines.append("    prs = regs.prs")
            for n in sorted(self.prs_used):
                lines.append(f"    p{n} = prs[{n}]")
        if self.cyclic:
            lines.append("    it = 0")
            lines.append("    while True:")
            lines += [f"        {line}" for line in self.body]
            lines.append("        it += 1")
            # ``it`` full iterations are complete here, so the head
            # exit's prefix is all-zero: the per-iteration constants
            # (IT) carry the whole batch.
            head_exit = self.exit_call(self.head, "it", prefix=(0,) * 8)
            lines.append(f"        if it >= iters: {head_exit}")
        else:
            lines += [f"    {line}" for line in self.body]
            lines.append(f"    {self.exit_call(self.pos, '0')}")
        self.consts["IT"] = tuple(self.acc) if self.cyclic else (0,) * 8
        return "\n".join(lines) + "\n"


def _runs(per_seg: Dict[int, int]):
    """Consecutive (start, [words...]) runs of a wordno -> word mapping."""
    run_start = None
    run: List[int] = []
    for wordno in sorted(per_seg):
        if run_start is not None and wordno == run_start + len(run):
            run.append(per_seg[wordno])
            continue
        if run:
            yield run_start, run
        run_start, run = wordno, [per_seg[wordno]]
    if run:
        yield run_start, run


def _compile(proc, key, steps, cyclic) -> Optional[CompiledTrace]:
    try:
        return _Compiler(proc, key, steps, cyclic).compile()
    except _Abort:
        return None


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class TraceCache:
    """Compiled traces keyed by ``(segno, wordno, ring)``.

    Mirrors the :class:`~repro.cpu.blockcache.SuperblockCache` shape:
    hotness counters decide when to record, precise invalidation drops
    traces covering a written code word, and DBR switches flush
    everything.  ``parity`` co-executes every trace against the
    per-step interpreter (see the module docstring).
    """

    def __init__(self, enabled: bool = False, parity: bool = False):
        self.enabled = enabled
        self.parity = parity
        self._traces: Dict[tuple, CompiledTrace] = {}
        #: segno -> traces whose code includes that segment
        self._by_seg: Dict[int, set] = {}
        self._hot: Dict[tuple, int] = {}
        self._fails: Dict[tuple, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.compiled = 0
        #: instructions retired inside compiled traces (host diagnostic)
        self.instructions = 0

    # -- dispatch ------------------------------------------------------------

    def note_dispatch(self, key: tuple) -> bool:
        """Count one trace-less dispatch; True when the head is hot.

        Backoff states (negative counts) delay re-recording after an
        invalidation or a failed compilation.
        """
        if len(self._hot) >= MAX_HOT_COUNTERS:
            self._hot.clear()
        count = self._hot.get(key, 0) + 1
        self._hot[key] = count
        return count >= HOT_THRESHOLD

    def warming(self, key: tuple) -> bool:
        """Could this head still become a trace?  (Clamp signal.)"""
        return self._hot.get(key, 0) > GIVEN_UP

    def record_and_compile(self, proc, budget: int):
        """Record the path at the current IPR and install its trace.

        Returns ``(consumed, halted)`` — the recording steps through
        the ordinary interpreter, so the instructions it covers are
        executed (and charged) exactly regardless of the outcome.
        """
        ipr = proc.registers.ipr
        key = (ipr.segno, ipr.wordno, ipr.ring)
        steps, cyclic, consumed, halted = _record(proc, budget)
        if halted:
            return consumed, True
        trace = None
        if steps and (cyclic or len(steps) >= MIN_LINEAR_LEN):
            trace = _compile(proc, key, steps, cyclic)
        if trace is None:
            failures = self._fails.get(key, 0) + 1
            self._fails[key] = failures
            self._hot[key] = (
                GIVEN_UP
                if failures >= MAX_COMPILE_FAILURES
                else 1 - REBUILD_BACKOFF
            )
        else:
            self.install(trace)
        return consumed, False

    def execute(self, proc, trace: CompiledTrace, budget: int) -> int:
        """Run one trace (optionally under the parity backstop)."""
        if not self.parity:
            consumed = trace.fn(proc, budget, proc.write_word)
            if consumed:
                self.hits += 1
                self.instructions += consumed
            else:
                self.misses += 1
            return consumed
        return self._execute_parity(proc, trace, budget)

    def _execute_parity(self, proc, trace: CompiledTrace, budget: int) -> int:
        before = _capture(proc)
        writes: List[Tuple[int, int]] = []
        real_ww = proc.write_word
        words = proc.memory._words

        def logging_ww(sdw, segno, wordno, value):
            # Traces only reference unpaged segments, so the address
            # arithmetic below is the whole translation.
            addr = sdw.addr + wordno
            writes.append((addr, words[addr]))
            real_ww(sdw, segno, wordno, value)

        consumed = trace.fn(proc, budget, logging_ww)
        if consumed == 0:
            self.misses += 1
            return 0
        after_trace = _capture(proc)
        _restore(proc, before, writes)
        try:
            for _ in range(consumed):
                proc.step()
        except Exception as exc:  # the reference diverged structurally
            raise JitParityError(
                f"trace {trace.key}: replay raised {exc!r}"
            ) from exc
        after_replay = _capture(proc)
        if after_trace != after_replay:
            # Decoded-icache counters are host diagnostics outside the
            # exactness contract: the trace mirrors the block tier's
            # every-fetch-hits convention, while the per-step reference
            # consults real cache content — a store to a trace's own
            # code word (self-modifying loop) leaves the entry cold at
            # the next fetch and the two legitimately disagree.  All
            # architectural counters must still match bit for bit.
            diffs = [
                f"{name}: trace={t!r} replay={r!r}"
                for name, t, r in zip(
                    _CAPTURE_FIELDS, after_trace, after_replay
                )
                if t != r and name not in _DIAGNOSTIC_FIELDS
            ]
            if diffs:
                raise JitParityError(
                    f"trace {trace.key} diverged over {consumed} "
                    "instructions: " + "; ".join(diffs)
                )
        # Keep the trace tier's icache figures so a parity run is
        # bit-for-bit indistinguishable from a non-parity jit run.
        icache = proc.inst_cache
        icache.hits, icache.misses, icache.invalidations = (
            after_trace[_ICACHE_SLICE]
        )
        self.hits += 1
        self.instructions += consumed
        return consumed

    # -- installation and invalidation --------------------------------------

    def get(self, key: tuple) -> Optional[CompiledTrace]:
        """The installed trace at ``(segno, wordno, ring)``, if any."""
        return self._traces.get(key)

    def install(self, trace: CompiledTrace) -> None:
        """Install ``trace``, replacing any prior trace at its key."""
        if not self.enabled:
            return
        if len(self._traces) >= MAX_TRACES:
            self.invalidate()
        old = self._traces.get(trace.key)
        if old is not None:
            self._drop(old)
        self._traces[trace.key] = trace
        for segno in trace.words:
            self._by_seg.setdefault(segno, set()).add(trace)
        self.compiled += 1
        self._fails.pop(trace.key, None)

    def _drop(self, trace: CompiledTrace) -> None:
        trace.valid = False
        if self._traces.get(trace.key) is trace:
            del self._traces[trace.key]
        for segno in trace.words:
            traces = self._by_seg.get(segno)
            if traces is not None:
                traces.discard(trace)
                if not traces:
                    del self._by_seg[segno]

    def invalidate_word(self, segno: int, wordno: int) -> None:
        """Drop every trace whose *code* covers one written word.

        Flips ``valid`` so an executing trace exits after the current
        instruction (the store that got here came from inside it), and
        applies the rebuild backoff against recompile churn.
        """
        traces = self._by_seg.get(segno)
        if not traces:
            return
        stale = [
            trace for trace in traces if wordno in trace.words.get(segno, ())
        ]
        for trace in stale:
            self._drop(trace)
            self.invalidations += 1
            self._hot[trace.key] = 1 - REBUILD_BACKOFF

    def pause_segment(self, segno: int) -> None:
        """Stop and drop traces touching a segment whose SDW was evicted."""
        traces = self._by_seg.get(segno)
        if not traces:
            return
        for trace in list(traces):
            self._drop(trace)
        self.invalidations += 1

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop a segment's traces, or everything when ``segno`` is None."""
        self.invalidations += 1
        if segno is None:
            for trace in self._traces.values():
                trace.valid = False
            self._traces.clear()
            self._by_seg.clear()
            self._hot.clear()
            self._fails.clear()
            return
        traces = self._by_seg.get(segno)
        if traces:
            for trace in list(traces):
                self._drop(trace)

    # -- accounting ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._traces)

    def reset_stats(self) -> None:
        """Zero the counters (benchmark hygiene); traces survive."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.compiled = 0
        self.instructions = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for benchmarks and metrics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "compiled": self.compiled,
            "jit_instructions": self.instructions,
            "entries": len(self._traces),
        }


# ---------------------------------------------------------------------------
# parity capture
# ---------------------------------------------------------------------------

_CAPTURE_FIELDS = (
    "ipr", "prs", "a", "q", "crr", "cycles", "stats", "memory.reads",
    "memory.writes", "sdw_cache.hits", "sdw_cache.misses",
    "access_cache.hits", "access_cache.misses", "inst_cache.hits",
    "inst_cache.misses", "inst_cache.invalidations", "timer", "events",
)

#: Capture fields outside the exactness contract (see
#: :meth:`TraceCache._execute_parity`): decoded-icache counters follow
#: the block tier's mirroring convention, not real cache content.
_DIAGNOSTIC_FIELDS = frozenset(
    {"inst_cache.hits", "inst_cache.misses", "inst_cache.invalidations"}
)

#: Slice of a capture tuple holding the decoded-icache counters.
_ICACHE_SLICE = slice(
    _CAPTURE_FIELDS.index("inst_cache.hits"),
    _CAPTURE_FIELDS.index("inst_cache.invalidations") + 1,
)


def _capture(proc) -> tuple:
    """Freeze every counter and register a trace may touch."""
    regs = proc.registers
    stats = proc.stats
    memory = proc.memory
    return (
        (regs.ipr.ring, regs.ipr.segno, regs.ipr.wordno),
        tuple((pr.segno, pr.wordno, pr.ring) for pr in regs.prs),
        regs.a,
        regs.q,
        regs.crr,
        proc.cycles,
        (
            stats.instructions, stats.faults, stats.traps_delivered,
            stats.calls, stats.returns, stats.ring_crossings,
        ),
        memory.reads,
        memory.writes,
        proc.sdw_cache.hits,
        proc.sdw_cache.misses,
        proc.access_cache.hits,
        proc.access_cache.misses,
        proc.inst_cache.hits,
        proc.inst_cache.misses,
        proc.inst_cache.invalidations,
        proc.timer,
        tuple(event[0] for event in proc._events),
    )


def _restore(proc, snap: tuple, writes: List[Tuple[int, int]]) -> None:
    """Rewind the processor to ``snap``, undoing the logged stores.

    All restores are in place (the register *objects* are preserved —
    the dispatcher holds references to them).  Host-cache entries the
    trace invalidated stay invalidated — dropping them is always safe
    — except the decoded-icache entries of written words, which the
    caller re-fills so the replay's fetch counters match the original
    execution's.
    """
    (
        (iring, isegno, iwordno), prs, a, q, crr, cycles, stats_t,
        reads, mem_writes, sdw_h, sdw_m, ac_h, ac_m, ic_h, ic_m, ic_i,
        timer, events,
    ) = snap
    regs = proc.registers
    regs.ipr.ring, regs.ipr.segno, regs.ipr.wordno = iring, isegno, iwordno
    for pr, (segno, wordno, ring) in zip(regs.prs, prs):
        pr.segno, pr.wordno, pr.ring = segno, wordno, ring
    regs.a, regs.q, regs.crr = a, q, crr
    proc.cycles = cycles
    stats = proc.stats
    (
        stats.instructions, stats.faults, stats.traps_delivered,
        stats.calls, stats.returns, stats.ring_crossings,
    ) = stats_t
    memory = proc.memory
    memory.reads = reads
    memory.writes = mem_writes
    proc.sdw_cache.hits, proc.sdw_cache.misses = sdw_h, sdw_m
    proc.access_cache.hits, proc.access_cache.misses = ac_h, ac_m
    proc.inst_cache.hits, proc.inst_cache.misses = ic_h, ic_m
    proc.inst_cache.invalidations = ic_i
    proc.timer = timer
    for event, countdown in zip(proc._events, events):
        event[0] = countdown
    words = memory._words
    for addr, old in reversed(writes):
        words[addr] = old
