"""Instruction implementations.

Each function here *performs* one instruction after the processor has
fetched and decoded it.  The access-validation structure follows the
paper's three operand groups (pp. 27–28):

* **read group** — validate per Figure 6 (left), then fetch the operand;
* **write group** — validate per Figure 6 (right), then store;
* **no-reference group** — EAP-type loads (no validation at all) and
  transfers (advance check per Figure 7); CALL and RETURN carry the full
  Figure 8 / Figure 9 decision procedures.

A hard rule maintained throughout: *no architectural state is mutated
before every fault this instruction can raise has been checked*.  The
trap machinery depends on it — a faulting instruction must be cleanly
retryable after the supervisor repairs the world.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..core.gates import CallOutcome, ReturnOutcome, decide_call, decide_return
from ..errors import MachineHalted
from ..hardening.authstack import RETURN_PTR_PR
from ..formats.instruction import Instruction
from ..words import WORD_MASK, add_words, sub_words
from .access_cache import GROUP_EXECUTE, GROUP_READ, GROUP_WRITE
from .faults import Fault, FaultCode
from .isa import Op
from .registers import STACK_BASE_PR, TPR
from .validate import brackets_of, check_bound, validate_write

if TYPE_CHECKING:  # pragma: no cover
    from .processor import Processor

#: Outcome -> fault code for the CALL decision's refusals.
_CALL_FAULTS: Dict[CallOutcome, FaultCode] = {
    CallOutcome.FAULT_NO_EXECUTE: FaultCode.ACV_NO_EXECUTE,
    CallOutcome.FAULT_RING_RAISED: FaultCode.ACV_RING_RAISED,
    CallOutcome.FAULT_OUTSIDE_BRACKET: FaultCode.ACV_OUTSIDE_CALL_BRACKET,
    CallOutcome.FAULT_NOT_GATE: FaultCode.ACV_NOT_GATE,
    CallOutcome.TRAP_UPWARD_CALL: FaultCode.TRAP_UPWARD_CALL,
}

#: Outcome -> fault code for the RETURN decision's refusals.
_RETURN_FAULTS: Dict[ReturnOutcome, FaultCode] = {
    ReturnOutcome.FAULT_NO_EXECUTE: FaultCode.ACV_NO_EXECUTE,
    ReturnOutcome.FAULT_EXECUTE_BRACKET: FaultCode.ACV_EXECUTE_BRACKET,
    ReturnOutcome.TRAP_DOWNWARD_RETURN: FaultCode.TRAP_DOWNWARD_RETURN,
}


def _operand_fault(code: FaultCode, proc: "Processor", tpr: TPR, detail: str = "") -> Fault:
    """Build a fault carrying the standard operand-reference context."""
    return Fault(
        code,
        segno=tpr.segno,
        wordno=tpr.wordno,
        ring=tpr.ring,
        cur_ring=proc.registers.ipr.ring,
        detail=detail,
    )


# ---------------------------------------------------------------------------
# operand access helpers
# ---------------------------------------------------------------------------


def read_operand(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> int:
    """Fetch a read-group operand (immediate operands skip memory)."""
    if inst.immediate:
        return inst.offset
    assert tpr is not None
    sdw, code = proc.validate_access(tpr.segno, tpr.ring, tpr.wordno, GROUP_READ)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "operand read")
    return proc.read_word(sdw, tpr.segno, tpr.wordno)


def write_operand(proc: "Processor", tpr: TPR, value: int) -> None:
    """Store a write-group operand after Figure 6 validation."""
    sdw, code = proc.validate_access(tpr.segno, tpr.ring, tpr.wordno, GROUP_WRITE)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "operand write")
    proc.write_word(sdw, tpr.segno, tpr.wordno, value)


# ---------------------------------------------------------------------------
# read group
# ---------------------------------------------------------------------------


def op_lda(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """LDA: A := operand."""
    proc.registers.set_a(read_operand(proc, inst, tpr))


def op_ldq(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """LDQ: Q := operand."""
    proc.registers.set_q(read_operand(proc, inst, tpr))


def op_ada(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """ADA: A := A + operand, 36-bit wrap."""
    proc.registers.set_a(add_words(proc.registers.a, read_operand(proc, inst, tpr)))


def op_sba(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """SBA: A := A - operand, 36-bit wrap."""
    proc.registers.set_a(sub_words(proc.registers.a, read_operand(proc, inst, tpr)))


def op_ana(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """ANA: A := A AND operand."""
    proc.registers.set_a(proc.registers.a & read_operand(proc, inst, tpr))


def op_ora(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """ORA: A := A OR operand."""
    proc.registers.set_a(proc.registers.a | read_operand(proc, inst, tpr))


def op_era(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """ERA: A := A XOR operand."""
    proc.registers.set_a(proc.registers.a ^ read_operand(proc, inst, tpr))


# ---------------------------------------------------------------------------
# write group
# ---------------------------------------------------------------------------


def op_sta(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """STA: operand := A."""
    write_operand(proc, tpr, proc.registers.a)


def op_stq(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """STQ: operand := Q."""
    write_operand(proc, tpr, proc.registers.q)


def op_stz(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """STZ: operand := 0."""
    write_operand(proc, tpr, 0)


def op_aos(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """Add one to storage: a read-modify-write needing both permissions.

    The read half rides the PTLB; the write half revalidates against the
    same SDW (no second fetch, so the cycle accounting matches the
    single SDW fetch the hardware would do).
    """
    sdw, code = proc.validate_access(tpr.segno, tpr.ring, tpr.wordno, GROUP_READ)
    if code is None:
        code = validate_write(sdw, tpr.ring, tpr.wordno)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "read-modify-write")
    value = proc.read_word(sdw, tpr.segno, tpr.wordno)
    proc.write_word(sdw, tpr.segno, tpr.wordno, add_words(value, 1))


def op_spr(proc: "Processor", inst: Instruction, tpr: TPR, op: Op) -> None:
    """Store pointer register ``n`` as an indirect word."""
    packed = proc.registers.pr(op.pr_index).packed().pack()
    write_operand(proc, tpr, packed)


# ---------------------------------------------------------------------------
# no-reference group: EAP-type loads
# ---------------------------------------------------------------------------


def op_eap(proc: "Processor", inst: Instruction, tpr: TPR, op: Op) -> None:
    """Load PRn from TPR — the only way a PR can be loaded (paper p. 28).

    No access validation is performed: "The operand is not referenced,
    so no access validation is required."  The ring transferred is the
    effective ring, which is what makes argument pointers safe to
    re-base (paper p. 33).
    """
    proc.registers.pr(op.pr_index).load(tpr.segno, tpr.wordno, tpr.ring)


# ---------------------------------------------------------------------------
# no-reference group: plain transfers (Figure 7)
# ---------------------------------------------------------------------------


def _transfer_condition(proc: "Processor", op: Op) -> bool:
    """Evaluate the condition of a conditional transfer against A."""
    a = proc.registers.a
    negative = bool(a >> 35)
    if op is Op.TRA:
        return True
    if op is Op.TZE:
        return a == 0
    if op is Op.TNZ:
        return a != 0
    if op is Op.TMI:
        return negative
    if op is Op.TPL:
        return not negative
    raise AssertionError(f"not a plain transfer: {op}")


def op_plain_transfer(proc: "Processor", inst: Instruction, tpr: TPR, op: Op) -> None:
    """Plain transfers: advance-checked, forbidden from changing rings.

    The Figure 7 decision (``validate_transfer``) is split so the
    advance fetch check can ride the PTLB: the ring-equality test is
    wordno- and SDW-independent, and what remains *is* ``validate_fetch``.
    """
    if not _transfer_condition(proc, op):
        return
    ipr = proc.registers.ipr
    if tpr.ring != ipr.ring:
        raise _operand_fault(
            FaultCode.ACV_TRANSFER_RING, proc, tpr, f"{op.name} advance check"
        )
    _, code = proc.validate_access(tpr.segno, ipr.ring, tpr.wordno, GROUP_EXECUTE)
    if code is not None:
        raise _operand_fault(code, proc, tpr, f"{op.name} advance check")
    ipr.set(ipr.ring, tpr.segno, tpr.wordno)


# ---------------------------------------------------------------------------
# CALL (Figure 8)
# ---------------------------------------------------------------------------


def op_call(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """The CALL instruction: validation and performance of Figure 8."""
    regs = proc.registers
    sdw = proc.fetch_sdw(tpr.segno, tpr.wordno)

    code = check_bound(sdw, tpr.wordno)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "CALL target")

    same_segment = tpr.segno == regs.ipr.segno
    decision = decide_call(
        eff_ring=tpr.ring,
        cur_ring=regs.ipr.ring,
        brackets=brackets_of(sdw),
        execute_flag=sdw.execute,
        wordno=tpr.wordno,
        gate_count=sdw.gate,
        same_segment=same_segment,
    )
    if not decision.proceeds:
        raise _operand_fault(_CALL_FAULTS[decision.outcome], proc, tpr, "CALL")

    new_ring = decision.new_ring
    assert new_ring is not None
    old_ring = regs.ipr.ring

    if not proc.hardware_rings and new_ring != old_ring:
        # 645 baseline: the hardware cannot switch rings; trap so the
        # supervisor can perform the crossing in software.
        raise _operand_fault(
            FaultCode.TRAP_RING_CROSS_CALL, proc, tpr, "software rings"
        )

    auth = proc.auth_stack
    if auth is not None and new_ring != old_ring:
        # Authenticated return stack: commit to the caller's return
        # point (PR4 by the save-stack convention) under the MAC chain
        # before the crossing is performed.  The matching verification
        # happens in op_return.
        proc.charge(proc.cost.auth_mac_cycles)
        rp = regs.pr(RETURN_PTR_PR)
        auth.push(old_ring, rp.segno, rp.wordno)

    # Performance: generate the stack base pointer in PR0 (carrying the
    # new ring, so the called procedure can immediately reference its
    # own stack), record the caller's ring in the program-accessible
    # caller-ring register (paper p. 19), and transfer.
    stack_segno = proc.stack_segno_for_call(new_ring, old_ring)
    regs.pr(STACK_BASE_PR).load(stack_segno, 0, new_ring)
    regs.crr = old_ring
    regs.ipr.set(new_ring, tpr.segno, tpr.wordno)


# ---------------------------------------------------------------------------
# RETURN (Figure 9)
# ---------------------------------------------------------------------------


def op_return(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """The RETURN instruction: validation and performance of Figure 9."""
    regs = proc.registers
    sdw = proc.fetch_sdw(tpr.segno, tpr.wordno)

    code = check_bound(sdw, tpr.wordno)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "RETURN target")

    decision = decide_return(
        eff_ring=tpr.ring,
        cur_ring=regs.ipr.ring,
        brackets=brackets_of(sdw),
        execute_flag=sdw.execute,
    )
    if not decision.proceeds:
        raise _operand_fault(_RETURN_FAULTS[decision.outcome], proc, tpr, "RETURN")

    new_ring = decision.new_ring
    assert new_ring is not None

    auth = proc.auth_stack
    if auth is not None and new_ring > regs.ipr.ring:
        # Authenticated return stack: the upward return must go to
        # exactly the point the matching downward CALL committed to.
        # Verified before the 645 software-rings trap so both ring
        # profiles refuse a forged return identically; the pop below
        # is safe ahead of that trap because the software assist
        # always completes a return whose decision proceeded.  The MAC
        # recomputation overlaps the return's crossing sequence, so the
        # chain is charged once per frame — at the push.
        if not auth.verify(new_ring, tpr.segno, tpr.wordno):
            raise _operand_fault(
                FaultCode.ACV_AUTH_RETURN, proc, tpr, "AUTH"
            )
        auth.pop()

    if not proc.hardware_rings and new_ring != regs.ipr.ring:
        raise _operand_fault(
            FaultCode.TRAP_RING_CROSS_RETURN, proc, tpr, "software rings"
        )

    if new_ring > regs.ipr.ring:
        # Upward return: no PR may retain a ring below the new ring of
        # execution, preserving the PRn.RING >= IPR.RING invariant.
        regs.raise_pr_rings(new_ring)
    regs.ipr.set(new_ring, tpr.segno, tpr.wordno)


# ---------------------------------------------------------------------------
# miscellany and privileged instructions
# ---------------------------------------------------------------------------


def op_nop(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """NOP: no operation."""
    return None


def op_ldcr(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """Load A from the caller-ring register CALL maintains."""
    proc.registers.set_a(proc.registers.crr)


def op_ars(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """A right shift; the count is the OFFSET field (max 35)."""
    count = min(inst.offset, 35)
    proc.registers.set_a(proc.registers.a >> count)


def op_als(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """A left shift (bits shifted out are lost); count is OFFSET."""
    count = min(inst.offset, 35)
    proc.registers.set_a((proc.registers.a << count) & WORD_MASK)


def op_halt(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """HALT: stop the machine (raises MachineHalted to the host)."""
    raise MachineHalted(cycles=proc.cycles)


def op_ldbr(proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    """Load the descriptor base register from a two-word operand.

    Privileged (checked by the dispatcher).  Loading the DBR switches
    virtual memories, so the SDW associative memory is cleared.
    """
    sdw, code = proc.validate_access(tpr.segno, tpr.ring, tpr.wordno, GROUP_READ)
    if code is None:
        code = check_bound(sdw, tpr.wordno + 1)
    if code is not None:
        raise _operand_fault(code, proc, tpr, "LDBR operand")
    w0 = proc.read_word(sdw, tpr.segno, tpr.wordno)
    w1 = proc.read_word(sdw, tpr.segno, tpr.wordno + 1)
    proc.load_dbr_words(w0, w1)


def op_cioc(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """Connect I/O channel: hand the operand word to the I/O subsystem."""
    value = read_operand(proc, inst, tpr)
    proc.connect_io(value)


def op_rcu(proc: "Processor", inst: Instruction, tpr: Optional[TPR]) -> None:
    """Restore processor state saved at the last trap (privileged)."""
    proc.restore_control_unit()


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

_SIMPLE: Dict[Op, Callable] = {
    Op.NOP: op_nop,
    Op.HALT: op_halt,
    Op.LDCR: op_ldcr,
    Op.ARS: op_ars,
    Op.ALS: op_als,
    Op.LDA: op_lda,
    Op.LDQ: op_ldq,
    Op.ADA: op_ada,
    Op.SBA: op_sba,
    Op.ANA: op_ana,
    Op.ORA: op_ora,
    Op.ERA: op_era,
    Op.STA: op_sta,
    Op.STQ: op_stq,
    Op.STZ: op_stz,
    Op.AOS: op_aos,
    Op.CALL: op_call,
    Op.RETURN: op_return,
    Op.LDBR: op_ldbr,
    Op.CIOC: op_cioc,
    Op.RCU: op_rcu,
}


def needs_effective_address(op: Op, inst: Instruction) -> bool:
    """Does this instruction form an effective address at all?

    Immediate-tagged read-group instructions take their operand from the
    instruction word; NOP/HALT/RCU have no operand.
    """
    if op in (Op.NOP, Op.HALT, Op.RCU, Op.LDCR, Op.ARS, Op.ALS):
        return False
    if inst.immediate and op.operand == "read":
        return False
    return True


def _eap_entry(op: Op, proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    op_eap(proc, inst, tpr, op)


def _spr_entry(op: Op, proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    op_spr(proc, inst, tpr, op)


def _transfer_entry(op: Op, proc: "Processor", inst: Instruction, tpr: TPR) -> None:
    op_plain_transfer(proc, inst, tpr, op)


def resolve_handler(
    op: Op, inst: Instruction
) -> Optional[Callable[["Processor", Instruction, Optional[TPR]], None]]:
    """Pre-resolve :func:`execute`'s dispatch for one decoded instruction.

    The decoded-instruction cache stores the result so repeat executions
    skip the group tests below.  Returns None for the combinations the
    generic path must reject at run time (illegal immediate tags,
    unassigned handlers) — those stay on :func:`execute` so the faults
    raised are identical with the cache on or off.
    """
    if inst.immediate and (op.is_eap or op.is_spr or op.transfer):
        return None
    if op.is_eap:
        return partial(_eap_entry, op)
    if op.is_spr:
        return partial(_spr_entry, op)
    if op.transfer and op not in (Op.CALL, Op.RETURN):
        return partial(_transfer_entry, op)
    return _SIMPLE.get(op)


def execute(proc: "Processor", op: Op, inst: Instruction, tpr: Optional[TPR]) -> None:
    """Perform one decoded instruction (effective address pre-computed)."""
    if inst.immediate and (op.is_eap or op.is_spr or op.transfer):
        raise Fault(
            FaultCode.ILLEGAL_OPCODE,
            cur_ring=proc.registers.ipr.ring,
            detail=f"immediate tag is illegal with {op.name}",
        )
    if op.is_eap:
        assert tpr is not None
        op_eap(proc, inst, tpr, op)
        return
    if op.is_spr:
        assert tpr is not None
        op_spr(proc, inst, tpr, op)
        return
    if op.transfer and op not in (Op.CALL, Op.RETURN):
        assert tpr is not None
        op_plain_transfer(proc, inst, tpr, op)
        return
    handler = _SIMPLE.get(op)
    if handler is None:
        raise Fault(
            FaultCode.ILLEGAL_OPCODE,
            cur_ring=proc.registers.ipr.ring,
            detail=f"unimplemented opcode {op.name}",
        )
    handler(proc, inst, tpr)
