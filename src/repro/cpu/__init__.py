"""The simulated processor.

Submodules follow the paper's hardware description section:

* :mod:`repro.cpu.registers` — IPR, TPR, PR0–PR7, A/Q, DBR holder;
* :mod:`repro.cpu.faults` — fault codes and the simulated-trap signal;
* :mod:`repro.cpu.validate` — per-reference validation (Figures 4 & 6)
  binding the pure ring policy to SDW contents;
* :mod:`repro.cpu.sdwcache` — the descriptor associative memory;
* :mod:`repro.cpu.isa` — opcode assignments and operand semantics;
* :mod:`repro.cpu.address` — effective-address formation (Figure 5);
* :mod:`repro.cpu.operations` — instruction implementations, including
  CALL (Figure 8) and RETURN (Figure 9);
* :mod:`repro.cpu.processor` — the instruction cycle, trap machinery,
  privileged-instruction enforcement, and cycle accounting.
"""

from .faults import Fault, FaultCode, FaultClass
from .registers import IPR, PointerRegister, RegisterFile, TPR
from .isa import Op, OPERAND_NONE, OPERAND_READ, OPERAND_WRITE, OPERAND_RMW
from .processor import Processor, CostModel
from .sdwcache import SDWCache

__all__ = [
    "Fault",
    "FaultCode",
    "FaultClass",
    "IPR",
    "TPR",
    "PointerRegister",
    "RegisterFile",
    "Op",
    "OPERAND_NONE",
    "OPERAND_READ",
    "OPERAND_WRITE",
    "OPERAND_RMW",
    "Processor",
    "CostModel",
    "SDWCache",
]
