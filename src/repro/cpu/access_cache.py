"""The two-tier interpreter fast path: PTLB and decoded-instruction cache.

The paper's descriptor associative memory keeps recently used SDWs next
to the processor so validation "does not cost two extra memory
references per virtual reference".  Real hardware descendants go one
step further and cache the *outcome* of the permission check alongside
the translation (per-ring protection bits in the TLB).  This module is
that generalisation for the simulator's host-side hot loop:

* :class:`ValidatedTranslationCache` (the "PTLB") is keyed by
  ``(segno, ring, access-group)`` and remembers that a reference of that
  group, validated at that ring, against that exact SDW, succeeded.  A
  hit skips the SDW fetch, the permission-flag test, and the bracket
  comparison; only the per-word bound check remains (it depends on the
  word number, which is deliberately not part of the key).

* :class:`DecodedInstructionCache` is keyed by ``(segno, wordno)`` and
  remembers the result of decoding one instruction word —
  ``Instruction.unpack``, the opcode dispatch, the
  ``needs_effective_address`` decision, and the pre-resolved execute
  handler.

Both tiers are **host-side only**: simulated cycles, memory-traffic
counters, and SDW-cache hit/miss accounting are charged identically on
hit and miss (the processor mirrors the counters a slow-path reference
would have bumped).  Architecturally the caches are invisible.

Coherence — the paper's "immediately effective" promise about SDW
changes (p. 9) — is maintained two ways:

1. **Precise invalidation.**  The supervisor's existing notifications
   (:meth:`Processor.invalidate_sdw`, DBR loads and switches) flush the
   affected entries, and every store through the processor drops the
   decoded entry for the written word (self-modifying code).

2. **Validity checks as backstop.**  A PTLB entry is honoured only while
   the SDW associative memory still holds the *identical* SDW object —
   any SDW refetch, eviction, or invalidation silently retires dependent
   PTLB entries.  A decoded entry is honoured only when the word just
   read from memory equals the word it was decoded from, so even
   mutation channels the processor cannot observe (supervisor
   ``load_image`` patches, DBR switches that re-map a segment number)
   can never execute a stale decode.

The processor reads ``_entries`` directly on the hot path; the mappings
are private to the ``repro.cpu`` package by convention.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..formats.sdw import SDW

#: PTLB access-group keys, matching the paper's three reference kinds
#: (Figures 4 and 6).  Values are the validator names for readability in
#: stats dumps and traces.
GROUP_READ = "read"
GROUP_WRITE = "write"
GROUP_EXECUTE = "execute"


class ValidatedTranslationCache:
    """Memoized validation outcomes keyed by ``(segno, ring, group)``.

    An entry records that the permission flag and ring bracket of
    ``group`` passed at ``ring`` against the stored SDW.  Entries are
    filled only on successful slow-path validation and consulted only
    while the SDW associative memory still holds the identical SDW
    object (checked by the processor), so a stale entry can never grant
    access the current descriptor would refuse.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[Tuple[int, int, str], SDW] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def fill(self, segno: int, ring: int, group: str, sdw: SDW) -> None:
        """Record one successful validation."""
        if self.enabled:
            self._entries[(segno, ring, group)] = sdw

    def get(self, segno: int, ring: int, group: str) -> Optional[SDW]:
        """The SDW a previous successful validation ran against, if any.

        Uncounted; the processor bumps ``hits``/``misses`` itself after
        it has also checked SDW identity and the bound.
        """
        return self._entries.get((segno, ring, group))

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop all entries for ``segno``, or everything when None."""
        self.invalidations += 1
        if segno is None:
            self._entries.clear()
            return
        stale = [key for key in self._entries if key[0] == segno]
        for key in stale:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)

    def reset_stats(self) -> None:
        """Zero the counters (benchmark hygiene); entries survive."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for benchmarks and metrics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }


class DecodedInstructionCache:
    """Memoized instruction decode keyed by ``(segno, wordno)``.

    Each entry is the tuple ``(word, op, inst, needs_ea, handler)``:
    the raw instruction word it was decoded from, the decoded
    :class:`~repro.formats.instruction.Instruction`, its
    :class:`~repro.cpu.isa.Op`, the memoized
    ``needs_effective_address`` decision, and the pre-resolved execute
    handler (or None when the generic dispatch must run).

    Entries are honoured only when the word just read from memory equals
    the stored word, which makes the cache correct by construction: the
    decode is a pure function of the word.  The explicit invalidations
    (stores, SDW changes, DBR loads) exist to keep the table small and
    its statistics meaningful, not to carry correctness.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 8192):
        self.enabled = enabled
        self.max_entries = max(1, max_entries)
        #: segno -> wordno -> entry tuple
        self._entries: Dict[int, Dict[int, tuple]] = {}
        self._count = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, segno: int, wordno: int) -> Optional[tuple]:
        """The cached entry for ``(segno, wordno)``, uncounted."""
        seg = self._entries.get(segno)
        if seg is None:
            return None
        return seg.get(wordno)

    def fill(self, segno: int, wordno: int, entry: tuple) -> None:
        """Install one decoded instruction."""
        if not self.enabled:
            return
        if self._count >= self.max_entries:
            # Wholesale flush on overflow: simple, rare, and cheap —
            # the hardware-flavoured alternative to tracking LRU.
            self._entries.clear()
            self._count = 0
        seg = self._entries.get(segno)
        if seg is None:
            seg = self._entries[segno] = {}
        if wordno not in seg:
            self._count += 1
        seg[wordno] = entry

    def invalidate_word(self, segno: int, wordno: int) -> None:
        """Drop the entry for one written word (self-modifying code)."""
        seg = self._entries.get(segno)
        if seg is not None and seg.pop(wordno, None) is not None:
            self._count -= 1
            self.invalidations += 1

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop all entries for ``segno``, or everything when None."""
        self.invalidations += 1
        if segno is None:
            self._entries.clear()
            self._count = 0
            return
        seg = self._entries.pop(segno, None)
        if seg is not None:
            self._count -= len(seg)

    def __len__(self) -> int:
        return self._count

    def reset_stats(self) -> None:
        """Zero the counters (benchmark hygiene); entries survive."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for benchmarks and metrics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": self._count,
        }
