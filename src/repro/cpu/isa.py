"""Instruction set of the simulated processor.

The ISA is deliberately small but complete enough to write real
programs: accumulator arithmetic, stores, the EAP-type pointer loads the
paper makes load-bearing ("they are the only way to load PR's", p. 28),
pointer stores, plain transfers, the ring-changing CALL and RETURN, and
the ring-0-only privileged instructions (load DBR, connect I/O, restore
state — the examples of p. 31).

For access validation instructions fall into the three groups of the
paper (pp. 27–28): those which **read** their operands, those which
**write** their operands, and those which **do not reference** their
operands (EAP-type loads and transfers).  The group is part of each
opcode's metadata here, and the dispatcher uses it to decide which of
the Figure 6 / Figure 7 paths to run.
"""

from __future__ import annotations

import enum
from typing import Dict

#: Operand semantics groups (paper pp. 27-28).
OPERAND_READ = "read"
OPERAND_WRITE = "write"
OPERAND_RMW = "read-modify-write"
OPERAND_NONE = "none"


class Op(enum.Enum):
    """Every opcode, with its number and operand-reference semantics.

    Each member's value is ``(opcode number, operand group, transfer?,
    privileged?)``.
    """

    # -- miscellany -------------------------------------------------------
    NOP = (0o000, OPERAND_NONE, False, False)
    HALT = (0o001, OPERAND_NONE, False, False)
    #: load A from the caller-ring register CALL maintains (paper p. 19:
    #: the processor leaves the pre-call ring "in a program accessible
    #: register"; LDCR is how programs read it)
    LDCR = (0o002, OPERAND_NONE, False, False)
    #: A right/left shifts; the shift count is the OFFSET field
    ARS = (0o004, OPERAND_NONE, False, False)
    ALS = (0o005, OPERAND_NONE, False, False)

    # -- accumulator loads / arithmetic (read group) -----------------------
    LDA = (0o010, OPERAND_READ, False, False)
    LDQ = (0o011, OPERAND_READ, False, False)
    ADA = (0o012, OPERAND_READ, False, False)
    SBA = (0o013, OPERAND_READ, False, False)
    ANA = (0o014, OPERAND_READ, False, False)
    ORA = (0o015, OPERAND_READ, False, False)
    ERA = (0o016, OPERAND_READ, False, False)

    # -- stores (write group) ----------------------------------------------
    STA = (0o020, OPERAND_WRITE, False, False)
    STQ = (0o021, OPERAND_WRITE, False, False)
    STZ = (0o022, OPERAND_WRITE, False, False)
    AOS = (0o023, OPERAND_RMW, False, False)

    # -- pointer stores (write group): SPR0..SPR7 ---------------------------
    SPR0 = (0o030, OPERAND_WRITE, False, False)
    SPR1 = (0o031, OPERAND_WRITE, False, False)
    SPR2 = (0o032, OPERAND_WRITE, False, False)
    SPR3 = (0o033, OPERAND_WRITE, False, False)
    SPR4 = (0o034, OPERAND_WRITE, False, False)
    SPR5 = (0o035, OPERAND_WRITE, False, False)
    SPR6 = (0o036, OPERAND_WRITE, False, False)
    SPR7 = (0o037, OPERAND_WRITE, False, False)

    # -- EAP-type pointer loads (no operand reference): EAP0..EAP7 ----------
    EAP0 = (0o040, OPERAND_NONE, False, False)
    EAP1 = (0o041, OPERAND_NONE, False, False)
    EAP2 = (0o042, OPERAND_NONE, False, False)
    EAP3 = (0o043, OPERAND_NONE, False, False)
    EAP4 = (0o044, OPERAND_NONE, False, False)
    EAP5 = (0o045, OPERAND_NONE, False, False)
    EAP6 = (0o046, OPERAND_NONE, False, False)
    EAP7 = (0o047, OPERAND_NONE, False, False)

    # -- plain transfers (no operand reference, advance-checked) ------------
    TRA = (0o050, OPERAND_NONE, True, False)
    TZE = (0o051, OPERAND_NONE, True, False)
    TNZ = (0o052, OPERAND_NONE, True, False)
    TMI = (0o053, OPERAND_NONE, True, False)
    TPL = (0o054, OPERAND_NONE, True, False)

    # -- ring-changing transfers (Figures 8 and 9) ---------------------------
    CALL = (0o060, OPERAND_NONE, True, False)
    RETURN = (0o061, OPERAND_NONE, True, False)

    # -- privileged (ring 0 only, paper p. 31) -------------------------------
    LDBR = (0o070, OPERAND_READ, False, True)
    CIOC = (0o071, OPERAND_READ, False, True)
    RCU = (0o072, OPERAND_NONE, False, True)

    def __init__(self, number: int, operand: str, transfer: bool, privileged: bool):
        self.number = number
        self.operand = operand
        self.transfer = transfer
        self.privileged = privileged

    @property
    def is_eap(self) -> bool:
        """True for the EAP-type pointer-register loads."""
        return Op.EAP0.number <= self.number <= Op.EAP7.number

    @property
    def is_spr(self) -> bool:
        """True for the pointer-register stores."""
        return Op.SPR0.number <= self.number <= Op.SPR7.number

    @property
    def pr_index(self) -> int:
        """The pointer-register index encoded in an EAPn/SPRn opcode."""
        return self.number & 0o7


#: opcode number -> Op member, for the decoder.
BY_NUMBER: Dict[int, Op] = {op.number: op for op in Op}

#: mnemonic (lower case) -> Op member, for the assembler.
BY_NAME: Dict[str, Op] = {op.name.lower(): op for op in Op}


def decode_opcode(number: int) -> Op:
    """Opcode number -> member; raises KeyError for unassigned numbers."""
    return BY_NUMBER[number]
