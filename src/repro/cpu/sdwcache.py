"""The descriptor associative memory (SDW cache).

Real Multics processors kept recently used SDWs in a small associative
memory so that address translation did not cost two extra memory
references per virtual reference.  The cache is architecturally visible
only through timing — *except* that the supervisor must clear it when it
changes a descriptor segment, or stale access constraints would persist
(the paper's "immediately effective" promise about SDW changes, p. 9,
holds on real hardware precisely because the supervisor issues the
clear).

The replacement policy is round-robin over a fixed number of slots,
matching the simplicity of the era's hardware: entries are kept in an
insertion-ordered mapping and the oldest fill is the victim, all O(1).

The fast-path layer (:mod:`repro.cpu.access_cache`) additionally keys
its validated-translation entries to the *identity* of the SDW object
stored here, via :meth:`SDWCache.peek`: any eviction, refetch, or
invalidation in this cache silently retires every dependent fast-path
entry.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..formats.sdw import SDW


class SDWCache:
    """A small segno → SDW associative memory with round-robin eviction."""

    def __init__(self, slots: int = 16, enabled: bool = True):
        self.slots = max(1, slots)
        self.enabled = enabled
        self._entries: "OrderedDict[int, SDW]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: called with the victim segno on every capacity eviction —
        #: the superblock tier stops a mid-flight block whose segment
        #: just lost its SDW (per-step execution would pay a refetch at
        #: the next fetch, so the block must stop mirroring hits)
        self.on_evict: Optional[Callable[[int], None]] = None

    def lookup(self, segno: int) -> Optional[SDW]:
        """Return the cached SDW for ``segno`` or None on a miss.

        A disabled cache returns None without counting a miss — it is
        not participating, and counting would skew the ablation's
        hit-rate figures.
        """
        if not self.enabled:
            return None
        sdw = self._entries.get(segno)
        if sdw is None:
            self.misses += 1
            return None
        self.hits += 1
        return sdw

    def peek(self, segno: int) -> Optional[SDW]:
        """The cached SDW without touching the hit/miss counters.

        Used by the fast path's identity check, which mirrors the
        slow-path counters itself only once it commits to a hit.
        """
        return self._entries.get(segno)

    def fill(self, segno: int, sdw: SDW) -> None:
        """Install an SDW fetched from the descriptor segment."""
        if not self.enabled:
            return
        entries = self._entries
        if segno in entries:
            entries[segno] = sdw
            return
        if len(entries) >= self.slots:
            victim, _ = entries.popitem(last=False)
            if self.on_evict is not None:
                self.on_evict(victim)
        entries[segno] = sdw

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop one entry, or the whole cache when ``segno`` is None.

        The supervisor calls this after any SDW store and on every DBR
        load (a DBR load switches descriptor segments, so every cached
        translation is for the wrong virtual memory).
        """
        self.invalidations += 1
        if segno is None:
            self._entries.clear()
        else:
            self._entries.pop(segno, None)

    def reset_stats(self) -> None:
        """Zero the counters (benchmark hygiene); entries survive."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for the ablation benchmark."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
