"""The descriptor associative memory (SDW cache).

Real Multics processors kept recently used SDWs in a small associative
memory so that address translation did not cost two extra memory
references per virtual reference.  The cache is architecturally visible
only through timing — *except* that the supervisor must clear it when it
changes a descriptor segment, or stale access constraints would persist
(the paper's "immediately effective" promise about SDW changes, p. 9,
holds on real hardware precisely because the supervisor issues the
clear).

The replacement policy is round-robin over a fixed number of slots,
matching the simplicity of the era's hardware.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..formats.sdw import SDW


class SDWCache:
    """A small segno → SDW associative memory with round-robin eviction."""

    def __init__(self, slots: int = 16, enabled: bool = True):
        self.slots = max(1, slots)
        self.enabled = enabled
        self._entries: Dict[int, SDW] = {}
        self._order: list = []
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, segno: int) -> Optional[SDW]:
        """Return the cached SDW for ``segno`` or None on a miss."""
        if not self.enabled:
            self.misses += 1
            return None
        sdw = self._entries.get(segno)
        if sdw is None:
            self.misses += 1
            return None
        self.hits += 1
        return sdw

    def fill(self, segno: int, sdw: SDW) -> None:
        """Install an SDW fetched from the descriptor segment."""
        if not self.enabled:
            return
        if segno in self._entries:
            self._entries[segno] = sdw
            return
        if len(self._order) >= self.slots:
            victim = self._order.pop(0)
            del self._entries[victim]
        self._entries[segno] = sdw
        self._order.append(segno)

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop one entry, or the whole cache when ``segno`` is None.

        The supervisor calls this after any SDW store and on every DBR
        load (a DBR load switches descriptor segments, so every cached
        translation is for the wrong virtual memory).
        """
        self.invalidations += 1
        if segno is None:
            self._entries.clear()
            self._order.clear()
        elif segno in self._entries:
            del self._entries[segno]
            self._order.remove(segno)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for the ablation benchmark."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
