"""Simulated faults and traps.

Every condition in Figures 4–9 that "generates a trap, derailing the
instruction cycle" (paper p. 25) is represented by a :class:`FaultCode`.
A :class:`Fault` is raised inside the simulated instruction cycle and is
fielded by the processor's trap machinery: the processor forces ring 0,
saves state, and hands control to the configured supervisor — or, when
no supervisor is installed (bare-machine unit tests), propagates the
fault to the host caller.

Fault codes are grouped into :class:`FaultClass` because the paper
distinguishes *access violations* (program errors: the reference is
simply illegal) from *software-assist traps* (legal operations the
hardware chose not to implement: upward calls, downward returns, missing
segments and pages) and *events* (I/O completion and the like).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class FaultClass(enum.Enum):
    """Coarse classification of fault codes."""

    #: Illegal reference; the supervisor normally aborts or signals.
    ACCESS_VIOLATION = "access violation"
    #: Legal operation requiring supervisor completion, then resumption.
    SOFTWARE_ASSIST = "software assist"
    #: Environmental event, unrelated to the running program's behaviour.
    EVENT = "event"
    #: Program malformation (bad opcode and the like).
    ILLEGAL = "illegal"


class FaultCode(enum.Enum):
    """Every trap condition the simulated hardware can raise."""

    # -- access violations: permission flags (Figures 4, 6) --
    ACV_NO_READ = ("segment not readable", FaultClass.ACCESS_VIOLATION)
    ACV_NO_WRITE = ("segment not writable", FaultClass.ACCESS_VIOLATION)
    ACV_NO_EXECUTE = ("segment not executable", FaultClass.ACCESS_VIOLATION)

    # -- access violations: ring brackets (Figures 4, 6) --
    ACV_READ_BRACKET = ("ring above read bracket", FaultClass.ACCESS_VIOLATION)
    ACV_WRITE_BRACKET = ("ring above write bracket", FaultClass.ACCESS_VIOLATION)
    ACV_EXECUTE_BRACKET = (
        "ring outside execute bracket",
        FaultClass.ACCESS_VIOLATION,
    )

    # -- access violations: addressing --
    ACV_OUT_OF_BOUNDS = ("word number above segment bound", FaultClass.ACCESS_VIOLATION)
    ACV_SEGNO_BOUND = (
        "segment number above descriptor bound",
        FaultClass.ACCESS_VIOLATION,
    )

    # -- access violations: transfers, CALL and RETURN (Figures 7-9) --
    ACV_TRANSFER_RING = (
        "plain transfer may not change the ring",
        FaultClass.ACCESS_VIOLATION,
    )
    ACV_NOT_GATE = ("call target is not a gate", FaultClass.ACCESS_VIOLATION)
    ACV_OUTSIDE_CALL_BRACKET = (
        "ring above gate extension",
        FaultClass.ACCESS_VIOLATION,
    )
    ACV_RING_RAISED = (
        "effective ring above ring of execution on CALL",
        FaultClass.ACCESS_VIOLATION,
    )

    # -- access violations: privilege --
    ACV_PRIVILEGED = (
        "privileged instruction outside ring 0",
        FaultClass.ACCESS_VIOLATION,
    )

    # -- access violations: hardening extensions (repro.hardening) --
    ACV_AUTH_RETURN = (
        "return target fails authenticated-return-stack verification",
        FaultClass.ACCESS_VIOLATION,
    )
    ACV_DOMAIN = (
        "cross-domain reference without a domain gate",
        FaultClass.ACCESS_VIOLATION,
    )
    ACV_NX = (
        "execute on a writable segment (NX bracket mode)",
        FaultClass.ACCESS_VIOLATION,
    )

    # -- software-assist traps --
    TRAP_UPWARD_CALL = ("upward call", FaultClass.SOFTWARE_ASSIST)
    TRAP_DOWNWARD_RETURN = ("downward return", FaultClass.SOFTWARE_ASSIST)
    MISSING_SEGMENT = ("missing segment", FaultClass.SOFTWARE_ASSIST)
    MISSING_PAGE = ("missing page", FaultClass.SOFTWARE_ASSIST)
    GATE_SERVICE = ("supervisor gate service", FaultClass.SOFTWARE_ASSIST)

    # -- 645-baseline-only traps (see repro.krnl.baseline645) --
    TRAP_RING_CROSS_CALL = (
        "software-ring crossing on call (645 baseline)",
        FaultClass.SOFTWARE_ASSIST,
    )
    TRAP_RING_CROSS_RETURN = (
        "software-ring crossing on return (645 baseline)",
        FaultClass.SOFTWARE_ASSIST,
    )

    # -- events --
    IO_COMPLETION = ("I/O completion", FaultClass.EVENT)
    TIMER = ("timer runout", FaultClass.EVENT)

    # -- malformation --
    ILLEGAL_OPCODE = ("illegal opcode", FaultClass.ILLEGAL)
    INVALID_SDW = (
        "malformed SDW in descriptor segment (bracket order violated)",
        FaultClass.ILLEGAL,
    )

    def __init__(self, label: str, fclass: FaultClass):
        self.label = label
        self.fclass = fclass

    @property
    def is_access_violation(self) -> bool:
        return self.fclass is FaultClass.ACCESS_VIOLATION

    @property
    def is_software_assist(self) -> bool:
        return self.fclass is FaultClass.SOFTWARE_ASSIST


@dataclass
class Fault(Exception):
    """A simulated trap, carrying the context the supervisor needs.

    ``segno``/``wordno`` locate the offending reference; ``ring`` is the
    validation ring in force (``TPR.RING``); ``cur_ring`` is the ring of
    execution when the fault fired; ``detail`` is free text for traces.
    """

    code: FaultCode
    segno: Optional[int] = None
    wordno: Optional[int] = None
    ring: Optional[int] = None
    cur_ring: Optional[int] = None
    detail: str = ""
    #: filled in by the processor when the fault derails an instruction
    at_segno: Optional[int] = None
    at_wordno: Optional[int] = None

    def __post_init__(self) -> None:
        super().__init__(self.describe())

    def describe(self) -> str:
        """One-line human-readable account of the fault."""
        where = ""
        if self.segno is not None:
            where = f" target=({self.segno},{self.wordno})"
        rings = ""
        if self.ring is not None:
            rings = f" eff-ring={self.ring}"
        if self.cur_ring is not None:
            rings += f" cur-ring={self.cur_ring}"
        at = ""
        if self.at_segno is not None:
            at = f" at=({self.at_segno},{self.at_wordno})"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{self.code.name}: {self.code.label}{where}{rings}{at}{tail}"
