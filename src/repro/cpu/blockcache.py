"""The superblock execution tier: straight-line blocks of decoded work.

The PR 1 fast path (:mod:`repro.cpu.access_cache`) made each *individual*
instruction cheap to re-execute, but the interpreter still paid full
Python dispatch per instruction: a ``step()`` frame, a
``fetch_instruction`` call, a PTLB probe, a charged word read, and a
decoded-cache probe for every word, every time.  The same observation
that motivates block-granular validation in hardware descendants of the
paper applies host-side: a straight-line run of instructions in one
segment, executed at one ring, revalidates *nothing* between its first
and last word — so validate once per ``(segno, ring)`` per entry, and
execute the pre-resolved handler chain in a tight loop.

A **superblock** is the decoded form of a maximal straight-line sequence
starting at ``(segno, wordno)``:

* it extends forward one word at a time, and **ends inclusively** at the
  first control transfer (CALL, RETURN, TRA/TZE/TNZ/TMI/TPL) or at any
  instruction with an indirect effective address (the chase may fault and
  re-enter arbitrary segments, so the block boundary forces revalidation
  afterwards);
* it **stops before** privileged instructions, HALT, unassigned opcodes,
  illegal tag combinations, the segment bound, and ``MAX_BLOCK_LEN``.

Entry conditions (checked by the processor on every dispatch) reuse the
PR 1 machinery instead of duplicating it:

* the PTLB must hold a validated ``(segno, ring, execute)`` entry whose
  SDW is still the identical object in the SDW associative memory — one
  check validates the execute bracket for the whole block at the current
  ring;
* the block's last word must be inside the SDW's current bound;
* every cached word must equal the word now in memory (the word-compare
  backstop, mirroring the decoded-instruction cache's per-fetch compare —
  this is what catches supervisor ``load_image`` patches that no
  invalidation call announces).

Coherence reuses PR 1's precise invalidation: ``write_word`` drops the
blocks covering a written word (and flips their ``valid`` flag so a block
that rewrites *itself* stops executing from stale entries immediately),
``invalidate_sdw`` drops a segment's blocks, and DBR loads/switches flush
everything.  Wholesale invalidations can never happen mid-block: they are
only triggered from fault handlers (which abort the block) or host-side
supervisor calls (which run between ``run`` calls), so only
``invalidate_word`` needs the in-flight ``valid`` check.

Like the PR 1 tiers the superblock cache is **host-side only**: the
processor mirrors, in batch, exactly the counters per-step execution
would have bumped (cycles, memory reads, SDW/PTLB/icache hits), so
simulated figures are bit-identical with the tier on or off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..formats.instruction import Instruction
from . import operations
from .isa import BY_NUMBER, Op

#: Entry kinds, dense small ints the execution loop switches on.
#: Kinds >= K_TERM_EA are terminal: they end their block (inclusively).
K_SIMPLE = 0  #: no effective address (NOP, shifts, immediate read group)
K_EA = 1  #: direct effective address, non-transfer
K_TERM_EA = 2  #: indirect effective address, non-transfer (block ends)
K_XFER = 3  #: plain transfer TRA/TZE/TNZ/TMI/TPL (ring cannot change)
K_CALL = 4  #: CALL — call/return stats and ring-crossing bookkeeping
K_RETURN = 5  #: RETURN — ditto

#: Longest straight-line run one block may cover.
MAX_BLOCK_LEN = 64

#: Dispatches of a block-less address before a block is built there.
HOT_THRESHOLD = 2

#: Extra dispatches required to rebuild after a self-modifying-code
#: invalidation — keeps store-into-own-block loops from paying a full
#: decode per iteration.
REBUILD_BACKOFF = 8

#: Wholesale-flush ceiling on cached blocks (the icache's policy).
MAX_BLOCKS = 2048

#: Ceiling on the hotness-counter table.
MAX_HOT_COUNTERS = 4096


class Superblock:
    """One decoded straight-line sequence starting at ``start``.

    ``entries`` holds, for the consecutive words
    ``start .. start + len(entries) - 1``, tuples of

        ``(word, inst, handler, kind, indirect, offset, indexed,
        prflag, prnum)``

    — the raw word, the decode, the pre-resolved handler, the entry
    kind, and the pre-extracted addressing fields the executor's
    in-line direct-EA formation reads.  ``words`` is the raw words
    alone, kept as a list so the entry backstop is one slice compare.
    ``last`` is the final covered word number (= ``start`` even when
    ``entries`` is empty, so negative results still occupy their
    address for invalidation purposes).  ``valid`` is flipped by
    precise invalidation while the block may be executing.
    """

    __slots__ = ("start", "entries", "words", "last", "valid")

    def __init__(self, start: int, entries: List[tuple]):
        self.start = start
        self.entries = entries
        self.words = [entry[0] for entry in entries]
        self.last = start + max(len(entries), 1) - 1
        self.valid = True


def build_superblock(
    words: List[int], base: int, start: int, bound: int
) -> Superblock:
    """Decode the straight-line run beginning at ``start``.

    ``words``/``base`` address the segment's physical image (uncounted
    host peeks — the simulated fetch traffic is charged per executed
    instruction by the processor's batch accounting).  Returns a block
    with zero entries when the very first word cannot be block-executed
    (privileged, HALT, unassigned opcode): a negative result that stops
    the dispatcher from re-attempting a build every visit.
    """
    entries: List[tuple] = []
    wordno = start
    while wordno < bound and len(entries) < MAX_BLOCK_LEN:
        word = words[base + wordno]
        inst = Instruction.unpack(word)
        op = BY_NUMBER.get(inst.opcode)
        if op is None or op.privileged or op is Op.HALT:
            break
        handler = operations.resolve_handler(op, inst)
        if handler is None:
            # Illegal tag combinations fault through the generic path.
            break
        if op is Op.CALL:
            kind = K_CALL
        elif op is Op.RETURN:
            kind = K_RETURN
        elif op.transfer:
            kind = K_XFER
        elif not operations.needs_effective_address(op, inst):
            kind = K_SIMPLE
        elif inst.indirect:
            kind = K_TERM_EA
        else:
            kind = K_EA
        entries.append(
            (
                word,
                inst,
                handler,
                kind,
                inst.indirect,
                inst.offset,
                inst.indexed,
                inst.prflag,
                inst.prnum,
            )
        )
        wordno += 1
        if kind >= K_TERM_EA:
            break
    return Superblock(start, entries)


class SuperblockCache:
    """Discovered superblocks keyed by ``(segno, start wordno)``.

    The processor reads ``_blocks`` directly on the hot path, exactly
    like the PR 1 tiers; the mapping is private to ``repro.cpu`` by
    convention.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        #: segno -> start wordno -> Superblock
        self._blocks: Dict[int, Dict[int, Superblock]] = {}
        #: (segno, wordno) -> dispatch count while no block exists there
        self._hot: Dict[Tuple[int, int], int] = {}
        self._count = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.built = 0
        #: instructions retired under block execution (host diagnostic)
        self.block_instructions = 0

    # -- lookup and installation ------------------------------------------

    def get(self, segno: int, wordno: int) -> Optional[Superblock]:
        """The block starting at ``(segno, wordno)``, uncounted."""
        seg = self._blocks.get(segno)
        if seg is None:
            return None
        return seg.get(wordno)

    def note_dispatch(self, segno: int, wordno: int) -> bool:
        """Count one block-less dispatch; True when the address is hot."""
        if len(self._hot) >= MAX_HOT_COUNTERS:
            self._hot.clear()
        key = (segno, wordno)
        count = self._hot.get(key, 0) + 1
        self._hot[key] = count
        return count >= HOT_THRESHOLD

    def install(self, segno: int, block: Superblock) -> None:
        """Add one freshly built block (wholesale flush on overflow)."""
        if not self.enabled:
            return
        if self._count >= MAX_BLOCKS:
            self._blocks.clear()
            self._count = 0
        seg = self._blocks.get(segno)
        if seg is None:
            seg = self._blocks[segno] = {}
        if block.start not in seg:
            self._count += 1
        seg[block.start] = block
        self.built += 1

    # -- invalidation -------------------------------------------------------

    def invalidate_word(self, segno: int, wordno: int) -> None:
        """Drop every block covering one written word (self-modifying
        code).  Flips ``valid`` so an executing block notices, and
        applies the rebuild backoff so a store-into-own-block loop does
        not pay a fresh decode per iteration."""
        seg = self._blocks.get(segno)
        if not seg:
            return
        stale = [
            block
            for block in seg.values()
            if block.start <= wordno <= block.last
        ]
        for block in stale:
            block.valid = False
            del seg[block.start]
            self._count -= 1
            self.invalidations += 1
            self._hot[(segno, block.start)] = 1 - REBUILD_BACKOFF

    def discard(self, segno: int, block: Superblock) -> None:
        """Retire one block whose word-compare backstop failed."""
        block.valid = False
        seg = self._blocks.get(segno)
        if seg is not None and seg.get(block.start) is block:
            del seg[block.start]
            self._count -= 1
        self.invalidations += 1

    def pause_segment(self, segno: int) -> None:
        """Stop and drop a segment's blocks (its SDW was evicted).

        Called from the SDW associative memory's eviction hook: once
        the SDW is gone, per-step execution would pay an SDW refetch at
        the next instruction fetch, so a block mid-flight must stop
        mirroring hit counters immediately — the ``valid`` flip ends it
        after the current instruction, and the dispatcher then takes
        the per-step path that performs (and charges) the refetch.
        """
        seg = self._blocks.pop(segno, None)
        if not seg:
            return
        for block in seg.values():
            block.valid = False
        self._count -= len(seg)
        self.invalidations += 1

    def invalidate(self, segno: Optional[int] = None) -> None:
        """Drop all blocks for ``segno``, or everything when None.

        Never reached while a block is executing (wholesale
        invalidations originate in fault handlers or host-side
        supervisor calls, both outside block execution), so the
        ``valid`` flags need not be walked.
        """
        self.invalidations += 1
        if segno is None:
            self._blocks.clear()
            self._hot.clear()
            self._count = 0
            return
        seg = self._blocks.pop(segno, None)
        if seg is not None:
            self._count -= len(seg)

    # -- accounting -----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def reset_stats(self) -> None:
        """Zero the counters (benchmark hygiene); blocks survive."""
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.built = 0
        self.block_instructions = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters for benchmarks and metrics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "built": self.built,
            "block_instructions": self.block_instructions,
            "entries": self._count,
        }
