"""The processor: instruction cycle, traps, and cycle accounting.

The instruction cycle follows the paper's narrative exactly:

1. **fetch** (Figure 4) — the next instruction's SDW is obtained and the
   ring of execution is matched against the execute bracket before the
   instruction word is read;
2. **effective address** (Figure 5) — when the instruction has an
   operand, the two-part address *and the effective ring* are formed in
   the TPR, validating each indirect-word retrieval on the way;
3. **perform** (Figures 6–9) — the operand reference is validated by
   group and the operation executed.

Any violation raises a :class:`~repro.cpu.faults.Fault`, "derailing the
instruction cycle": the processor charges the trap overhead, conceptually
switches to ring 0, and hands the fault to the installed supervisor
handler.  Without a handler (bare machine) the fault propagates to the
host caller — convenient for unit tests that assert on fault codes.

Cycle accounting is a deterministic cost model, not a timing claim: one
cycle per memory word moved (instruction words, operands, indirect
words, SDW fetches, page-table words) plus a per-instruction base cost
and a fixed trap overhead.  Relative costs — what the paper argues
about — are therefore meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import BracketOrderError, ConfigurationError, MachineHalted
from ..formats.instruction import Instruction
from ..hardening import AuthReturnStack, DomainMap, HardeningConfig
from ..formats.sdw import SDW, SDW_WORDS
from ..mem.descriptor import DBR
from ..mem.paging import PageFaultSignal, translate_paged
from ..mem.physical import PhysicalMemory
from ..words import HALF_MASK
from . import operations
from .access_cache import (
    DecodedInstructionCache,
    GROUP_EXECUTE,
    GROUP_READ,
    GROUP_WRITE,
    ValidatedTranslationCache,
)
from .address import form_effective_address
from .blockcache import (
    K_CALL,
    K_SIMPLE,
    K_XFER,
    SuperblockCache,
    build_superblock,
)
from .faults import Fault, FaultCode
from .isa import BY_NUMBER, Op
from .jit import WARMUP_CHUNK as JIT_WARMUP_CHUNK, TraceCache, parity_requested
from .registers import RegisterFile, STACK_PTR_PR, TPR
from .sdwcache import SDWCache
from .validate import validate_fetch, validate_read, validate_write

#: PTLB access-group -> slow-path validator (Figures 4 and 6).
_VALIDATORS = {
    GROUP_READ: validate_read,
    GROUP_WRITE: validate_write,
    GROUP_EXECUTE: validate_fetch,
}

#: Action strings a fault handler may return.
HANDLER_RETRY = "retry"
HANDLER_CONTINUE = "continue"
HANDLER_ABORT = "abort"

#: Signature of a supervisor fault handler.
FaultHandler = Callable[["Processor", Fault], Optional[str]]


@dataclass
class CostModel:
    """The deterministic cycle-cost parameters of the simulation.

    ``trap_overhead`` models what the hardware does on every trap —
    saving processor state, forcing ring 0, vectoring into the
    supervisor, and the eventual privileged restore — and is charged on
    top of whatever work the software handler itself performs.
    """

    #: cycles per word moved to or from memory
    memory_reference: int = 1
    #: base cycles per instruction, on top of its memory traffic
    instruction_base: int = 1
    #: cycles for trap entry + state save + restore instruction
    trap_overhead: int = 30
    #: extra cycles CALL/RETURN spend on ring bookkeeping (tiny: the
    #: paper stresses the "very small additional costs in hardware
    #: logic and processor speed", p. 39)
    ring_crossing_extra: int = 1
    #: cycles per MAC operation of the authenticated return stack
    #: (repro.hardening.authstack); charged once per downward CALL and
    #: once per verified upward RETURN when ``auth_return_stack`` is on
    auth_mac_cycles: int = 1


@dataclass
class ProcessorStats:
    """Counters the benchmarks and experiments read out."""

    instructions: int = 0
    faults: int = 0
    traps_delivered: int = 0
    calls: int = 0
    returns: int = 0
    ring_crossings: int = 0


class Processor:
    """One simulated processor attached to a physical memory.

    ``stack_rule`` selects the stack-segment selection rule for CALL:
    ``"simple"`` is the body-text rule (stack segno = new ring number);
    ``"dbr"`` is the footnote's refined rule (same-ring calls keep the
    current stack pointer's segment, cross-ring calls use
    ``DBR.STACK + new ring``).

    ``hardware_rings=False`` turns the processor into the Honeywell-645
    baseline: CALL and RETURN still run their full validation, but any
    ring change traps to the supervisor instead of being performed — the
    "before" machine of the paper's comparison.
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        dbr: Optional[DBR] = None,
        cost: Optional[CostModel] = None,
        sdw_cache: Optional[SDWCache] = None,
        stack_rule: str = "dbr",
        hardware_rings: bool = True,
        nrings: int = 8,
        fast_path: bool = True,
        block_tier: Optional[bool] = None,
        jit_tier: Optional[bool] = None,
        hardening: Optional[HardeningConfig] = None,
    ):
        if stack_rule not in ("simple", "dbr"):
            raise ConfigurationError(f"unknown stack rule {stack_rule!r}")
        if not 2 <= nrings <= 8:
            raise ConfigurationError(f"nrings must be in [2, 8], got {nrings}")
        if block_tier is None:
            block_tier = fast_path
        if block_tier and not fast_path:
            raise ConfigurationError(
                "the superblock tier rides the fast-path PTLB; "
                "block_tier=True requires fast_path=True"
            )
        # REPRO_JIT_PARITY=1 is the parity-backstop mode: force the
        # trace tier on wherever the block tier is on, and co-execute
        # every trace against the per-step interpreter.
        parity = parity_requested()
        if jit_tier is None:
            jit_tier = parity and block_tier
        if jit_tier and not block_tier:
            raise ConfigurationError(
                "the trace-compile tier records through superblock "
                "dispatch; jit_tier=True requires block_tier=True"
            )
        self.memory = memory
        self.dbr = dbr or DBR()
        self.cost = cost or CostModel()
        self.sdw_cache = sdw_cache or SDWCache()
        #: host-side fast path (see repro.cpu.access_cache): cycle
        #: accounting is identical with these on or off
        self.access_cache = ValidatedTranslationCache(enabled=fast_path)
        self.inst_cache = DecodedInstructionCache(enabled=fast_path)
        #: superblock execution tier (see repro.cpu.blockcache): also
        #: architecturally invisible, also an ablation knob
        self.block_cache = SuperblockCache(enabled=block_tier)
        #: trace-compile execution tier (see repro.cpu.jit): compiled
        #: traces above the superblocks, architecturally invisible
        self.jit_cache = TraceCache(enabled=jit_tier, parity=parity)
        if block_tier:
            # An SDW capacity eviction must stop any mid-flight block
            # or compiled trace of the victim segment: per-step
            # execution would pay (and charge) an SDW refetch at its
            # next instruction fetch.
            self.sdw_cache.on_evict = self._on_sdw_evict
        self.stack_rule = stack_rule
        self.hardware_rings = hardware_rings
        self.nrings = nrings
        #: hardening extensions (repro.hardening): each off by default
        self.hardening = hardening or HardeningConfig()
        self.auth_stack: Optional[AuthReturnStack] = (
            AuthReturnStack(self.hardening.auth_key_seed)
            if self.hardening.auth_return_stack
            else None
        )
        self.domains: Optional[DomainMap] = (
            DomainMap(self.hardening.domains)
            if self.hardening.ring_domains
            else None
        )
        self.nx_brackets = self.hardening.nx_brackets
        self.registers = RegisterFile()
        self.cycles = 0
        self.stats = ProcessorStats()
        self.fault_handler: Optional[FaultHandler] = None
        self.io_handler: Optional[Callable[["Processor", int], None]] = None
        self.trace_hook: Optional[Callable[[str], None]] = None
        #: snapshots pushed by trap delivery, popped by RCU
        self._save_stack: List[RegisterFile] = []
        self.halted = False
        #: scratch TPR the block executor's in-line EA formation reuses
        #: (handlers copy its fields and never retain the object)
        self._block_tpr = TPR()
        #: interval timer: instructions until a TIMER fault (None = off)
        self.timer: Optional[int] = None
        #: pending asynchronous events: [countdown, code, detail]
        self._events: List[list] = []

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Advance the simulated clock."""
        self.cycles += cycles

    def reset_counters(self) -> None:
        """Zero the clock and statistics (benchmark hygiene).

        Covers every counter a benchmark can read: the clock, the
        processor stats, memory traffic, and the hit/miss/invalidation
        statistics of the SDW associative memory and both fast-path
        tiers — otherwise warm-up runs pollute the measured figures.
        Cache *contents* survive, exactly like real hardware across a
        counter reset.
        """
        self.cycles = 0
        self.stats = ProcessorStats()
        self.memory.reset_counters()
        self.sdw_cache.reset_stats()
        self.access_cache.reset_stats()
        self.inst_cache.reset_stats()
        self.block_cache.reset_stats()
        self.jit_cache.reset_stats()

    def _on_sdw_evict(self, segno: int) -> None:
        """SDW capacity eviction: stop both upper execution tiers."""
        self.block_cache.pause_segment(segno)
        if self.jit_cache.enabled:
            self.jit_cache.pause_segment(segno)

    def drop_host_caches(self) -> None:
        """Empty every host-side cache; counters and SDWs survive.

        Checkpoint hook: a snapshot never records host-tier contents, so
        a worker that keeps running past a checkpoint must continue from
        the same cold host caches a restored successor would start with
        — that is what keeps a snapshot-resumed replay bit-identical in
        *every* counter, host tiers included.
        """
        self.access_cache.invalidate()
        self.inst_cache.invalidate()
        self.block_cache.invalidate()
        if self.jit_cache.enabled:
            self.jit_cache.invalidate()

    def warm_sdw_cache(self, segnos: List[int]) -> None:
        """Refill the SDW associative memory from descriptor memory.

        Restore hook for :mod:`repro.state.snapshot`: a snapshot records
        only which segment numbers were cached (in fill order), never the
        SDW bits — descriptor memory is authoritative.  The refill is
        uncharged and uncounted (no cycles, no memory traffic, no
        hit/miss accounting) so a restored machine continues with exactly
        the cycle and counter stream of the uninterrupted one.
        """
        self.sdw_cache._entries.clear()
        for segno in segnos:
            if segno >= self.dbr.bound:
                continue
            base = self.dbr.sdw_addr(segno)
            w0, w1 = self.memory.peek_block(base, SDW_WORDS)
            sdw = SDW.unpack(w0, w1)
            if sdw.present:
                self.sdw_cache._entries[segno] = sdw

    # ------------------------------------------------------------------
    # address translation and memory access
    # ------------------------------------------------------------------

    def fetch_sdw(self, segno: int, wordno: Optional[int] = None) -> SDW:
        """Obtain the SDW for ``segno``, via the associative memory.

        Faults when the segment number exceeds the descriptor bound or
        the segment is missing (present bit clear).  ``wordno`` is pure
        fault context: the word number the reference was aimed at (the
        linkage-fault machinery reads the link id out of it).
        """
        if segno >= self.dbr.bound:
            raise Fault(
                FaultCode.ACV_SEGNO_BOUND,
                segno=segno,
                wordno=wordno,
                cur_ring=self.registers.ipr.ring,
                detail=f"descriptor bound is {self.dbr.bound}",
            )
        sdw = self.sdw_cache.lookup(segno)
        if sdw is None:
            self.charge(self.cost.memory_reference * SDW_WORDS)
            base = self.dbr.sdw_addr(segno)
            w0 = self.memory.read(base)
            w1 = self.memory.read(base + 1)
            try:
                sdw = SDW.unpack(w0, w1)
            except BracketOrderError as exc:
                # Corrupted descriptor memory is a machine event, not a
                # host bug: trap so the supervisor can decide.
                raise Fault(
                    FaultCode.INVALID_SDW,
                    segno=segno,
                    cur_ring=self.registers.ipr.ring,
                    detail=str(exc),
                ) from None
            if sdw.present:
                self.sdw_cache.fill(segno, sdw)
        if not sdw.present:
            raise Fault(
                FaultCode.MISSING_SEGMENT,
                segno=segno,
                wordno=wordno,
                cur_ring=self.registers.ipr.ring,
            )
        return sdw

    def translate(self, sdw: SDW, segno: int, wordno: int) -> int:
        """Two-part address -> absolute address (transparent paging)."""
        if not sdw.paged:
            return sdw.addr + wordno
        self.charge(self.cost.memory_reference)  # the PTW fetch
        try:
            return translate_paged(self.memory, sdw.addr, wordno)
        except PageFaultSignal as sig:
            raise Fault(
                FaultCode.MISSING_PAGE,
                segno=segno,
                wordno=wordno,
                cur_ring=self.registers.ipr.ring,
                detail=f"page {sig.page_index}",
            ) from None

    def validate_access(
        self, segno: int, ring: int, wordno: int, group: str
    ) -> Tuple[SDW, Optional[FaultCode]]:
        """``fetch_sdw`` + Figure 4/6 validation, memoized in the PTLB.

        Returns ``(sdw, code)`` with ``code`` None on success; raises
        :class:`~repro.cpu.faults.Fault` exactly like :meth:`fetch_sdw`
        for descriptor-bound and missing-segment conditions.

        A PTLB entry is honoured only while the SDW associative memory
        still holds the identical SDW object, so any eviction, refetch,
        or supervisor invalidation retires it automatically; the bound
        check is repeated per word because the word number is not part
        of the key.  On a hit the counters a slow-path reference would
        have bumped (an SDW-cache hit) are mirrored and no cycles are
        charged — exactly what the slow path does when the SDW is in
        the associative memory, which the identity check guarantees.

        With ``ring_domains`` on, the domain check runs *before* the
        PTLB consult on every reference: the PTLB key carries no
        executing segment, so a validation cached for code in one
        domain must not be honoured for code in another.  Ring 0 is
        outside the domain system — domains compartmentalize the
        non-privileged rings the way LOTRx86's domains partition user
        mode, and the supervisor must reach every compartment to
        service it.  With ``nx_brackets`` on, an execute validation of
        a segment that is also writable fails with ``ACV_NX`` (W^X);
        the check lives on the slow path only, which is sound because
        failed validations are never cached.
        """
        domains = self.domains
        if domains is not None:
            ipr = self.registers.ipr
            if ipr.ring != 0:
                target_domain = domains.by_segno.get(segno)
                if target_domain is not None and target_domain != (
                    domains.by_segno.get(ipr.segno)
                ):
                    raise Fault(
                        FaultCode.ACV_DOMAIN,
                        segno=segno,
                        wordno=wordno,
                        ring=ring,
                        cur_ring=ipr.ring,
                        detail=f"target domain {target_domain!r}",
                    )
        cache = self.access_cache
        if cache.enabled:
            sdw = cache._entries.get((segno, ring, group))
            if (
                sdw is not None
                and self.sdw_cache._entries.get(segno) is sdw
                and wordno < sdw.bound
            ):
                cache.hits += 1
                self.sdw_cache.hits += 1
                return sdw, None
            cache.misses += 1
        sdw = self.fetch_sdw(segno, wordno)
        if (
            self.nx_brackets
            and group is GROUP_EXECUTE
            and sdw.execute
            and sdw.write
        ):
            return sdw, FaultCode.ACV_NX
        code = _VALIDATORS[group](sdw, ring, wordno)
        if code is None and cache.enabled:
            cache._entries[(segno, ring, group)] = sdw
        return sdw, code

    def read_word(self, sdw: SDW, segno: int, wordno: int) -> int:
        """Charged, translated read of one virtual word (pre-validated)."""
        addr = self.translate(sdw, segno, wordno)
        self.charge(self.cost.memory_reference)
        return self.memory.read(addr)

    def write_word(self, sdw: SDW, segno: int, wordno: int, value: int) -> None:
        """Charged, translated write of one virtual word (pre-validated)."""
        addr = self.translate(sdw, segno, wordno)
        self.charge(self.cost.memory_reference)
        self.memory.write(addr, value)
        # Self-modifying code: drop the decoded entry and any superblock
        # covering the written word (writes the processor cannot see are
        # caught by the word-compare backstops on the next fetch or
        # block entry).
        if self.inst_cache.enabled:
            self.inst_cache.invalidate_word(segno, wordno)
        if self.block_cache.enabled:
            self.block_cache.invalidate_word(segno, wordno)
        if self.jit_cache.enabled:
            self.jit_cache.invalidate_word(segno, wordno)

    # ------------------------------------------------------------------
    # instruction cycle
    # ------------------------------------------------------------------

    def fetch_instruction(self) -> tuple:
        """Figure 4: validate, retrieve, and decode the next instruction.

        Returns the decoded-instruction-cache entry tuple
        ``(word, op, inst, needs_ea, handler)``; see
        :class:`~repro.cpu.access_cache.DecodedInstructionCache`.  The
        instruction word is always read (and charged) through the
        normal translated path; only the host-side decode work is
        memoized, and a cached decode is used only when the word just
        read equals the word it was decoded from.
        """
        ipr = self.registers.ipr
        segno, wordno, ring = ipr.segno, ipr.wordno, ipr.ring
        sdw, code = self.validate_access(segno, ring, wordno, GROUP_EXECUTE)
        if code is not None:
            raise Fault(
                code,
                segno=segno,
                wordno=wordno,
                ring=ring,
                cur_ring=ring,
                detail="instruction fetch",
            )
        word = self.read_word(sdw, segno, wordno)
        icache = self.inst_cache
        if icache.enabled:
            seg = icache._entries.get(segno)
            if seg is not None:
                entry = seg.get(wordno)
                if entry is not None and entry[0] == word:
                    icache.hits += 1
                    return entry
            icache.misses += 1
        inst = Instruction.unpack(word)
        op = BY_NUMBER.get(inst.opcode)
        if op is None:
            raise Fault(
                FaultCode.ILLEGAL_OPCODE,
                segno=segno,
                wordno=wordno,
                cur_ring=ring,
                detail=f"opcode {inst.opcode:#o}",
            )
        entry = (
            word,
            op,
            inst,
            operations.needs_effective_address(op, inst),
            operations.resolve_handler(op, inst),
        )
        if icache.enabled:
            icache.fill(segno, wordno, entry)
        return entry

    def step(self) -> None:
        """Execute one instruction, delivering any fault it raises."""
        ipr = self.registers.ipr
        at = (ipr.ring, ipr.segno, ipr.wordno)
        try:
            self.charge(self.cost.instruction_base)
            _, op, inst, needs_ea, handler = self.fetch_instruction()
            if op.privileged and ipr.ring != 0:
                raise Fault(
                    FaultCode.ACV_PRIVILEGED,
                    segno=ipr.segno,
                    wordno=ipr.wordno,
                    cur_ring=ipr.ring,
                    detail=op.name,
                )
            self.registers.ipr.advance()
            tpr: Optional[TPR] = None
            if needs_ea:
                tpr = form_effective_address(self, inst)
            before_ring = self.registers.ipr.ring
            try:
                if handler is not None:
                    handler(self, inst, tpr)
                else:
                    operations.execute(self, op, inst, tpr)
            except MachineHalted:
                self.stats.instructions += 1
                raise
            # Completed instructions only: a CALL that faulted (e.g. for
            # demand initiation) and is retried must not double-count.
            if op is Op.CALL:
                self.stats.calls += 1
            elif op is Op.RETURN:
                self.stats.returns += 1
            if self.registers.ipr.ring != before_ring:
                self.stats.ring_crossings += 1
                self.charge(self.cost.ring_crossing_extra)
            self.stats.instructions += 1
            if self.trace_hook is not None:
                self.trace_hook(
                    f"({at[0]},{at[1]},{at[2]}) {op.name} "
                    f"-> ring {self.registers.ipr.ring}"
                )
        except Fault as fault:
            fault.at_segno, fault.at_wordno = at[1], at[2]
            if fault.cur_ring is None:
                fault.cur_ring = at[0]
            self._deliver_fault(fault, at)
            return
        # Only completed instructions advance the interval timer and the
        # event countdowns; both are delivered *between* instructions so
        # the interrupted computation is resumable.
        self._tick_timer()
        self._tick_events()

    def set_timer(self, instructions: Optional[int]) -> None:
        """Arm (or disarm with None) the interval timer.

        When the count reaches zero a TIMER fault fires *between*
        instructions — the interrupted computation is resumable exactly
        where it stopped, which is what makes the timer usable for
        preemption and runaway control.
        """
        if instructions is not None and instructions <= 0:
            raise ConfigurationError("timer count must be positive")
        self.timer = instructions

    def schedule_event(
        self, after_instructions: int, code: FaultCode, detail: str = ""
    ) -> None:
        """Arrange an asynchronous event (I/O completion and the like).

        After ``after_instructions`` further completed instructions a
        fault of ``code`` is delivered between instructions — the
        device-interrupt model: the running program is oblivious, the
        supervisor fields the event and returns control.
        """
        if after_instructions <= 0:
            raise ConfigurationError("event delay must be positive")
        self._events.append([after_instructions, code, detail])

    @property
    def pending_events(self) -> int:
        """Number of scheduled events that have not yet fired."""
        return len(self._events)

    def _tick_events(self) -> None:
        if not self._events:
            return
        due = []
        for event in self._events:
            event[0] -= 1
            if event[0] <= 0:
                due.append(event)
        for event in due:
            self._events.remove(event)
            ipr = self.registers.ipr
            fault = Fault(
                event[1],
                cur_ring=ipr.ring,
                at_segno=ipr.segno,
                at_wordno=ipr.wordno,
                detail=event[2],
            )
            self._deliver_fault(fault, (ipr.ring, ipr.segno, ipr.wordno))

    def _tick_timer(self) -> None:
        if self.timer is None:
            return
        self.timer -= 1
        if self.timer > 0:
            return
        self.timer = None
        ipr = self.registers.ipr
        fault = Fault(
            FaultCode.TIMER,
            cur_ring=ipr.ring,
            at_segno=ipr.segno,
            at_wordno=ipr.wordno,
            detail="interval timer runout",
        )
        # Delivered between instructions: "retry" and "continue" agree.
        self._deliver_fault(fault, (ipr.ring, ipr.segno, ipr.wordno))

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until HALT; returns the number of instructions executed.

        Raises :class:`~repro.errors.ConfigurationError` if the step
        budget is exhausted (runaway program) and propagates unhandled
        faults when no supervisor is installed.  With the superblock
        tier enabled the loop dispatches through discovered blocks; the
        simulated figures are bit-identical either way.
        """
        self.halted = False
        if self.block_cache.enabled:
            return self._run_blocks(max_steps)
        for _ in range(max_steps):
            try:
                self.step()
            except MachineHalted:
                self.halted = True
                return self.stats.instructions
        self._runaway(max_steps)

    def _runaway(self, max_steps: int) -> None:
        raise ConfigurationError(
            f"program did not halt within {max_steps} steps "
            f"(at ring {self.registers.ipr.ring}, segment "
            f"{self.registers.ipr.segno}, word {self.registers.ipr.wordno})"
        )

    # ------------------------------------------------------------------
    # superblock execution tier (see repro.cpu.blockcache)
    # ------------------------------------------------------------------

    def _run_blocks(self, max_steps: int) -> int:
        """The block-dispatch run loop.

        Each iteration either executes one superblock (consuming as many
        step slots as instructions attempted), builds a block at a hot
        address (free: pure host work), or falls back to one
        :meth:`step`.  Tracing disables block dispatch so the per-step
        hook fires for every instruction.
        """
        blocks = self.block_cache
        table = blocks._blocks
        jit = self.jit_cache
        jit_on = jit.enabled
        traces = jit._traces
        ipr = self.registers.ipr
        remaining = max_steps
        while remaining > 0:
            if self.trace_hook is None:
                segno = ipr.segno
                wordno = ipr.wordno
                seg = table.get(segno)
                block_budget = remaining
                if jit_on:
                    # The trace tier dispatches above the blocks: a
                    # compiled trace at this (segno, wordno, ring) runs
                    # first; a hot trace-less head records one (the
                    # recording itself single-steps, so it is exact).
                    # While a head is still warming toward a trace the
                    # superblock budget below is clamped — block chains
                    # would otherwise swallow the whole run in a single
                    # dispatch and the head could never get hot.  The
                    # clamp also keeps the block tier executing (and
                    # its diagnostic counters meaningful) before the
                    # first trace records.
                    tkey = (segno, wordno, ipr.ring)
                    trace = traces.get(tkey)
                    if trace is not None:
                        consumed = jit.execute(self, trace, remaining)
                        if consumed:
                            remaining -= consumed
                            continue
                    elif jit.note_dispatch(tkey):
                        consumed, halted = jit.record_and_compile(
                            self, remaining
                        )
                        if halted:
                            self.halted = True
                            return self.stats.instructions
                        if consumed:
                            remaining -= consumed
                            continue
                    elif jit.warming(tkey):
                        block_budget = min(remaining, JIT_WARMUP_CHUNK)
                block = None if seg is None else seg.get(wordno)
                if block is None:
                    if blocks.note_dispatch(segno, wordno) and self._build_block(
                        segno, wordno
                    ):
                        continue
                elif block.entries:
                    consumed = self._enter_block(block, block_budget)
                    if consumed:
                        remaining -= consumed
                        continue
                blocks.misses += 1
            try:
                self.step()
            except MachineHalted:
                self.halted = True
                return self.stats.instructions
            remaining -= 1
        self._runaway(max_steps)

    def _build_block(self, segno: int, wordno: int) -> bool:
        """Decode and install the superblock starting at ``wordno``.

        Requires the segment's SDW to be in the associative memory
        already (the prior per-step executions that made the address hot
        guarantee it) and the segment to be unpaged — paged code keeps
        per-word translation on the per-step path.  Returns True when a
        non-empty block is now installed.
        """
        sdw = self.sdw_cache._entries.get(segno)
        if sdw is None or sdw.paged or wordno >= sdw.bound:
            return False
        block = build_superblock(
            self.memory._words, sdw.addr, wordno, sdw.bound
        )
        self.block_cache.install(segno, block)
        return bool(block.entries)

    def _enter_block(self, block, budget: int) -> int:
        """Validate and execute superblocks; returns steps consumed.

        Returns 0 (and touches nothing) when the entry conditions fail
        and the dispatcher must fall back to :meth:`step`.  Otherwise
        executes up to ``budget`` entries — further bounded by the
        nearest pending timer/event countdown so every tick still lands
        *between* instructions — **chaining** into the next discovered
        block whenever a terminal leaves the IPR in the same segment at
        the same ring (the one validation covers any block of that
        ``(segno, ring)``; only the bound and word-compare checks rerun
        per chained block).  Applies, in batch, exactly the counter
        updates per-step execution would have made: cycles, memory
        reads, SDW/PTLB/icache hit mirrors, and the interval
        decrements.  A fault mid-block is delivered with the identical
        context (and identical partial charges) per-step delivery would
        have produced.
        """
        ipr = self.registers.ipr
        segno = ipr.segno
        ring = ipr.ring
        cache = self.access_cache
        # One validation covers the whole block: the PTLB entry proves
        # (segno, ring, execute) passed against this exact SDW, and the
        # bound check on the last word covers every word of the block.
        sdw = cache._entries.get((segno, ring, GROUP_EXECUTE))
        if (
            sdw is None
            or self.sdw_cache._entries.get(segno) is not sdw
            or sdw.paged
            or block.last >= sdw.bound
        ):
            return 0
        # Blocks are bounded by the nearest pending timer/event
        # countdown: at most (countdown - 1) instructions execute here,
        # so the batch decrement below can never reach zero mid-block
        # and the tick fires between instructions on the per-step path.
        limit = budget
        timer = self.timer
        if timer is not None:
            if timer <= 1:
                return 0
            if timer - 1 < limit:
                limit = timer - 1
        events = self._events
        if events:
            soonest = min(event[0] for event in events)
            if soonest <= 1:
                return 0
            if soonest - 1 < limit:
                limit = soonest - 1
        # Word-compare backstop: each word about to execute must equal
        # the word it was decoded from (catches supervisor load_image
        # patches that announce no invalidation).
        blocks = self.block_cache
        words = self.memory._words
        seg_addr = sdw.addr
        bound = sdw.bound
        entries = block.entries
        n = len(entries)
        if n > limit:
            n = limit
        base = seg_addr + block.start
        block_words = block.words
        if words[base : base + n] != (
            block_words if n == len(block_words) else block_words[:n]
        ):
            blocks.discard(segno, block)
            return 0
        regs = self.registers
        prs = regs.prs
        scratch = self._block_tpr
        stats = self.stats
        cost = self.cost
        fetch_cycles = cost.instruction_base + cost.memory_reference
        crossing_extra = cost.ring_crossing_extra
        seg_table = blocks._blocks.get(segno) or {}
        start = block.start
        cycles_acc = 0
        executed = 0
        idx = 0
        blocks.hits += 1
        try:
            while True:
                entry = entries[idx]
                kind = entry[3]
                # Per-step order: charge base + fetch, advance, form the
                # effective address, perform.  The fetch's counters are
                # accumulated locally and flushed on every exit path.
                cycles_acc += fetch_cycles
                ipr.wordno = (start + idx + 1) & HALF_MASK
                if kind == K_SIMPLE:
                    entry[2](self, entry[1], None)
                else:
                    _, inst, handler, _, indirect, offset, indexed, prflag, prnum = entry
                    if indirect:
                        tpr = form_effective_address(self, inst)
                    else:
                        # In-line direct EA (form_effective_address's
                        # non-indirect fast case with ipr.ring == ring
                        # and ipr.segno == segno, both loop invariants).
                        # The scratch TPR is safe to reuse: handlers
                        # copy its fields and never retain the object.
                        if indexed:
                            offset = (offset + (regs.a & HALF_MASK)) & HALF_MASK
                        tpr = scratch
                        if prflag:
                            pr = prs[prnum]
                            pring = pr.ring
                            tpr.ring = pring if pring > ring else ring
                            tpr.segno = pr.segno
                            tpr.wordno = (pr.wordno + offset) & HALF_MASK
                        else:
                            tpr.ring = ring
                            tpr.segno = segno
                            tpr.wordno = offset
                    handler(self, inst, tpr)
                    if kind >= K_CALL:  # CALL / RETURN bookkeeping
                        if kind == K_CALL:
                            stats.calls += 1
                        else:
                            stats.returns += 1
                        if ipr.ring != ring:
                            stats.ring_crossings += 1
                            cycles_acc += crossing_extra
                executed += 1
                idx += 1
                if not block.valid:
                    break  # the block rewrote itself: stop trusting it
                if idx < n:
                    continue
                if executed >= limit:
                    break
                # Chain into the next discovered block.  Same segment,
                # same ring: the entry validation still covers it, only
                # the bound and word checks rerun.  A CALL, RETURN, or
                # cross-segment transfer changed (segno, ring): rerun
                # the full PTLB validation for the new pair, exactly
                # the dispatch-time entry check.
                new_segno = ipr.segno
                new_ring = ipr.ring
                if new_segno != segno or new_ring != ring:
                    sdw = cache._entries.get(
                        (new_segno, new_ring, GROUP_EXECUTE)
                    )
                    if (
                        sdw is None
                        or self.sdw_cache._entries.get(new_segno) is not sdw
                        or sdw.paged
                    ):
                        break
                    seg_table = blocks._blocks.get(new_segno)
                    if seg_table is None:
                        break
                    segno = new_segno
                    ring = new_ring
                    seg_addr = sdw.addr
                    bound = sdw.bound
                nxt = seg_table.get(ipr.wordno)
                if (
                    nxt is None
                    or not nxt.valid
                    or not nxt.entries
                    or nxt.last >= bound
                ):
                    break
                m = len(nxt.entries)
                remaining = limit - executed
                if m > remaining:
                    m = remaining
                base = seg_addr + nxt.start
                block_words = nxt.words
                if words[base : base + m] != (
                    block_words if m == len(block_words) else block_words[:m]
                ):
                    blocks.discard(segno, nxt)
                    break
                block = nxt
                entries = nxt.entries
                start = nxt.start
                n = m
                idx = 0
                blocks.hits += 1
        except Fault as fault:
            # The faulting attempt charged its fetch (base + word read +
            # mirrored validation hits) before derailing, exactly like
            # fetch_instruction does per-step.
            attempts = executed + 1
            self.cycles += cycles_acc
            self.memory.reads += attempts
            self.sdw_cache.hits += attempts
            cache.hits += attempts
            self.inst_cache.hits += attempts
            stats.instructions += executed
            blocks.block_instructions += executed
            if timer is not None:
                self.timer = timer - executed
            for event in events:
                event[0] -= executed
            at = (ring, segno, start + idx)
            fault.at_segno, fault.at_wordno = at[1], at[2]
            if fault.cur_ring is None:
                fault.cur_ring = ring
            self._deliver_fault(fault, at)
            return attempts
        self.cycles += cycles_acc
        self.memory.reads += executed
        self.sdw_cache.hits += executed
        cache.hits += executed
        self.inst_cache.hits += executed
        stats.instructions += executed
        blocks.block_instructions += executed
        if timer is not None:
            self.timer = timer - executed
        for event in events:
            event[0] -= executed
        return executed

    # ------------------------------------------------------------------
    # traps
    # ------------------------------------------------------------------

    def _deliver_fault(self, fault: Fault, at: Tuple[int, int, int]) -> None:
        """Trap: save state, force ring 0, invoke the supervisor handler.

        With no handler installed the fault propagates to the host (the
        bare-machine mode unit tests rely on).
        """
        self.stats.faults += 1
        if self.fault_handler is None:
            raise fault
        self.stats.traps_delivered += 1
        self.charge(self.cost.trap_overhead)
        depth = len(self._save_stack)
        self._save_stack.append(self.registers.snapshot())
        # The handler conceptually executes in ring 0 at the trap vector.
        action = self.fault_handler(self, fault)
        if action == HANDLER_ABORT:
            # The aborted program is done with: discard everything this
            # trap pushed, or an attack that faults repeatedly would
            # grow the save stack without bound (and leak the aborted
            # registers into snapshots).
            del self._save_stack[depth:]
            raise fault
        if action == HANDLER_RETRY:
            ring, segno, wordno = at
            self.registers.ipr.set(ring, segno, wordno)
        # HANDLER_CONTINUE (or None after the handler rewrote the IPR):
        # execution proceeds wherever the registers now point.  Pop our
        # frame only if the handler did not already consume it via RCU.
        if len(self._save_stack) > depth:
            self._save_stack.pop()

    def restore_control_unit(self) -> None:
        """RCU: reload the register state saved at the last trap."""
        if not self._save_stack:
            raise Fault(
                FaultCode.ILLEGAL_OPCODE,
                cur_ring=self.registers.ipr.ring,
                detail="RCU with no saved state",
            )
        self.registers.restore(self._save_stack.pop())

    # ------------------------------------------------------------------
    # instruction support (called from repro.cpu.operations)
    # ------------------------------------------------------------------

    def stack_segno_for_call(self, new_ring: int, old_ring: int) -> int:
        """The stack-segment selection rule (paper p. 30 + footnote)."""
        if self.stack_rule == "simple":
            return new_ring
        if new_ring == old_ring:
            return self.registers.pr(STACK_PTR_PR).segno
        return self.dbr.stack_segno(new_ring)

    def load_dbr_words(self, w0: int, w1: int) -> None:
        """LDBR: install a new DBR and clear the SDW associative memory.

        Both fast-path tiers are flushed too: a DBR load switches
        descriptor segments, so every cached validation and every
        cached decode is for the wrong virtual memory.
        """
        self.dbr = DBR.unpack(w0, w1)
        self.sdw_cache.invalidate()
        self.access_cache.invalidate()
        self.inst_cache.invalidate()
        self.block_cache.invalidate()
        if self.jit_cache.enabled:
            self.jit_cache.invalidate()

    def set_dbr(self, dbr: DBR) -> None:
        """Supervisor-side DBR switch (process dispatch)."""
        self.dbr = dbr
        self.sdw_cache.invalidate()
        self.access_cache.invalidate()
        self.inst_cache.invalidate()
        self.block_cache.invalidate()
        if self.jit_cache.enabled:
            self.jit_cache.invalidate()

    def connect_io(self, word: int) -> None:
        """CIOC: hand a channel-program word to the attached I/O system."""
        if self.io_handler is not None:
            self.io_handler(self, word)

    def invalidate_sdw(self, segno: Optional[int] = None) -> None:
        """Supervisor notification that SDWs changed in memory.

        Clears the affected entries in the SDW associative memory and
        in both fast-path tiers, making the change immediately
        effective (paper p. 9): the next reference revalidates against
        the descriptor segment's current contents.
        """
        self.sdw_cache.invalidate(segno)
        self.access_cache.invalidate(segno)
        self.inst_cache.invalidate(segno)
        self.block_cache.invalidate(segno)
        if self.jit_cache.enabled:
            self.jit_cache.invalidate(segno)
