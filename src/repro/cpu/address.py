"""Effective-address formation — Figure 5 of the paper.

The processor forms every operand address in the temporary pointer
register: a two-part address plus the *effective ring* with respect to
which the eventual reference is validated.  The ring evolves by the max
rule of :mod:`repro.core.effective`:

1. it starts at the ring of execution;
2. pointer-register-relative addressing raises it to ``PRn.RING``;
3. each indirect word retrieved raises it to the maximum of the word's
   own RING field and ``SDW.R1`` of the segment holding the word — the
   highest ring that could have written the word.

Retrieving an indirect word is itself a validated *read* at the
effective ring in force at that moment (paper p. 27), so a procedure can
never be tricked into chasing a pointer chain through a segment it could
not legitimately read at the influencing ring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.effective import (
    effective_ring_after_indirect,
    effective_ring_after_pr,
    initial_effective_ring,
)
from ..formats.indirect import IndirectWord
from ..formats.instruction import Instruction
from ..words import HALF_MASK
from .faults import Fault, FaultCode
from .registers import TPR
from .validate import validate_read

if TYPE_CHECKING:  # pragma: no cover
    from .processor import Processor

#: Hardware limit on indirection depth; a longer chain faults rather
#: than hanging the simulated processor (real hardware would spin until
#: interrupted — the limit substitutes for the timer).
MAX_INDIRECTION = 16


def form_effective_address(proc: "Processor", inst: Instruction) -> TPR:
    """Compute the complete effective address of ``inst``'s operand.

    Returns a fresh :class:`~repro.cpu.registers.TPR`.  Raises
    :class:`~repro.cpu.faults.Fault` on any violation encountered while
    retrieving indirect words.
    """
    regs = proc.registers
    tpr = TPR()
    tpr.ring = initial_effective_ring(regs.ipr.ring)

    offset = inst.offset
    if inst.indexed:
        offset = (offset + (regs.a & HALF_MASK)) & HALF_MASK

    if inst.prflag:
        pr = regs.pr(inst.prnum)
        tpr.segno = pr.segno
        tpr.wordno = (pr.wordno + offset) & HALF_MASK
        tpr.ring = effective_ring_after_pr(tpr.ring, pr.ring)
    else:
        tpr.segno = regs.ipr.segno
        tpr.wordno = offset

    chase = inst.indirect
    hops = 0
    while chase:
        hops += 1
        if hops > MAX_INDIRECTION:
            raise Fault(
                FaultCode.ILLEGAL_OPCODE,
                segno=tpr.segno,
                wordno=tpr.wordno,
                ring=tpr.ring,
                cur_ring=regs.ipr.ring,
                detail=f"indirection chain exceeds {MAX_INDIRECTION}",
            )
        sdw = proc.fetch_sdw(tpr.segno, tpr.wordno)
        code = validate_read(sdw, tpr.ring, tpr.wordno)
        if code is not None:
            raise Fault(
                code,
                segno=tpr.segno,
                wordno=tpr.wordno,
                ring=tpr.ring,
                cur_ring=regs.ipr.ring,
                detail="retrieving indirect word",
            )
        word = proc.read_word(sdw, tpr.segno, tpr.wordno)
        ind = IndirectWord.unpack(word)
        tpr.ring = effective_ring_after_indirect(tpr.ring, ind.ring, sdw.r1)
        tpr.segno = ind.segno
        tpr.wordno = ind.wordno
        chase = ind.indirect

    return tpr
