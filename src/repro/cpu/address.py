"""Effective-address formation — Figure 5 of the paper.

The processor forms every operand address in the temporary pointer
register: a two-part address plus the *effective ring* with respect to
which the eventual reference is validated.  The ring evolves by the max
rule of :mod:`repro.core.effective`:

1. it starts at the ring of execution;
2. pointer-register-relative addressing raises it to ``PRn.RING``;
3. each indirect word retrieved raises it to the maximum of the word's
   own RING field and ``SDW.R1`` of the segment holding the word — the
   highest ring that could have written the word.

Retrieving an indirect word is itself a validated *read* at the
effective ring in force at that moment (paper p. 27), so a procedure can
never be tricked into chasing a pointer chain through a segment it could
not legitimately read at the influencing ring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.effective import effective_ring_after_indirect
from ..formats.indirect import unpack_raw
from ..formats.instruction import Instruction
from ..words import HALF_MASK
from .access_cache import GROUP_READ
from .faults import Fault, FaultCode
from .registers import TPR

if TYPE_CHECKING:  # pragma: no cover
    from .processor import Processor

#: Hardware limit on indirection depth; a longer chain faults rather
#: than hanging the simulated processor (real hardware would spin until
#: interrupted — the limit substitutes for the timer).
MAX_INDIRECTION = 16


def form_effective_address(proc: "Processor", inst: Instruction) -> TPR:
    """Compute the complete effective address of ``inst``'s operand.

    Returns a fresh :class:`~repro.cpu.registers.TPR`.  Raises
    :class:`~repro.cpu.faults.Fault` on any violation encountered while
    retrieving indirect words.

    The overwhelmingly common non-indirect case is a single specialised
    step (the in-line arithmetic below implements
    :func:`~repro.core.effective.initial_effective_ring` and
    :func:`~repro.core.effective.effective_ring_after_pr`, which the
    instruction fast path relies on being loop-free); indirect chains
    take the full Figure 5 walk in :func:`_chase_indirect`.
    """
    regs = proc.registers
    ring = regs.ipr.ring  # initial_effective_ring is the identity

    offset = inst.offset
    if inst.indexed:
        offset = (offset + (regs.a & HALF_MASK)) & HALF_MASK

    if inst.prflag:
        pr = regs.prs[inst.prnum]  # PRNUM is 3 bits: always a valid index
        segno = pr.segno
        wordno = (pr.wordno + offset) & HALF_MASK
        if pr.ring > ring:  # effective_ring_after_pr's max rule
            ring = pr.ring
    else:
        segno = regs.ipr.segno
        wordno = offset

    tpr = TPR(ring, segno, wordno)
    if not inst.indirect:
        return tpr
    return _chase_indirect(proc, tpr)


def _chase_indirect(proc: "Processor", tpr: TPR) -> TPR:
    """Follow an indirection chain, validating each retrieval.

    Each indirect-word read is a validated *read* at the effective ring
    in force at that moment (it rides the processor's PTLB like any
    other read), and each retrieved word raises the effective ring per
    the Figure 5 max rule.
    """
    regs = proc.registers
    hops = 0
    while True:
        hops += 1
        if hops > MAX_INDIRECTION:
            raise Fault(
                FaultCode.ILLEGAL_OPCODE,
                segno=tpr.segno,
                wordno=tpr.wordno,
                ring=tpr.ring,
                cur_ring=regs.ipr.ring,
                detail=f"indirection chain exceeds {MAX_INDIRECTION}",
            )
        sdw, code = proc.validate_access(
            tpr.segno, tpr.ring, tpr.wordno, GROUP_READ
        )
        if code is not None:
            raise Fault(
                code,
                segno=tpr.segno,
                wordno=tpr.wordno,
                ring=tpr.ring,
                cur_ring=regs.ipr.ring,
                detail="retrieving indirect word",
            )
        word = proc.read_word(sdw, tpr.segno, tpr.wordno)
        segno, wordno, ring, further = unpack_raw(word)
        tpr.ring = effective_ring_after_indirect(tpr.ring, ring, sdw.r1)
        tpr.segno = segno
        tpr.wordno = wordno
        if not further:
            return tpr
