"""Processor registers (Figure 3, right-hand side).

* :class:`IPR` — instruction pointer: current ring of execution plus the
  two-part address of the next instruction;
* :class:`PointerRegister` — PR0–PR7: a two-part address plus a ring
  number used as a validation level;
* :class:`TPR` — the temporary pointer register in which every effective
  address (including its effective ring) is formed; not program
  accessible;
* :class:`RegisterFile` — the full program-visible register state, plus
  the accumulators A and Q used by the data instructions.

The central machine invariant — ``PRn.RING >= IPR.RING`` for every n,
maintained because PRs are loadable only by EAP-type instructions and
RETURN raises them on upward returns — is checkable at any time with
:meth:`RegisterFile.check_ring_invariant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigurationError
from ..formats.pointerfmt import PackedPointer
from ..words import HALF_MASK, SEGNO_MASK, WORD_MASK, check_field

#: Number of pointer registers.
NUM_PR = 8

#: The PR that CALL loads with the new ring's stack base (paper p. 30).
STACK_BASE_PR = 0

#: The PR conventionally used as the stack pointer by software.
STACK_PTR_PR = 6

#: The PR conventionally holding the argument-list pointer ("PRa", p. 32).
ARG_PTR_PR = 1


@dataclass
class PointerRegister:
    """One program-accessible pointer register."""

    segno: int = 0
    wordno: int = 0
    ring: int = 0

    def load(self, segno: int, wordno: int, ring: int) -> None:
        """Replace all three fields (EAP-type instructions only)."""
        # In-line width guard on the hot path (EAP, CALL's stack base);
        # the check_field calls below carry the real error reporting.
        if not (
            segno.__class__ is int
            and wordno.__class__ is int
            and ring.__class__ is int
            and 0 <= segno < 0o40000
            and 0 <= wordno < 0o1000000
            and 0 <= ring < 8
        ):
            check_field("PR.SEGNO", segno, 14)
            check_field("PR.WORDNO", wordno, 18)
            check_field("PR.RING", ring, 3)
        self.segno = segno
        self.wordno = wordno
        self.ring = ring

    def raise_ring(self, floor: int) -> None:
        """RETURN's upward adjustment: ``ring := max(ring, floor)``."""
        if floor > self.ring:
            self.ring = floor

    def packed(self) -> PackedPointer:
        """The memory image SPR stores."""
        return PackedPointer(segno=self.segno, wordno=self.wordno, ring=self.ring)

    def copy(self) -> "PointerRegister":
        """An independent copy (trap save areas, schedulers)."""
        return PointerRegister(self.segno, self.wordno, self.ring)


@dataclass
class IPR:
    """Instruction pointer register: ring of execution + next instruction."""

    ring: int = 0
    segno: int = 0
    wordno: int = 0

    def set(self, ring: int, segno: int, wordno: int) -> None:
        """Replace the ring of execution and the next-instruction address."""
        # In-line width guard: this runs once per transfer, call, and
        # return; check_field below carries the real error reporting.
        if not (
            ring.__class__ is int
            and segno.__class__ is int
            and wordno.__class__ is int
            and 0 <= ring < 8
            and 0 <= segno < 0o40000
            and 0 <= wordno < 0o1000000
        ):
            check_field("IPR.RING", ring, 3)
            check_field("IPR.SEGNO", segno, 14)
            check_field("IPR.WORDNO", wordno, 18)
        self.ring = ring
        self.segno = segno
        self.wordno = wordno

    def advance(self) -> None:
        """Step to the next sequential instruction."""
        self.wordno = (self.wordno + 1) & HALF_MASK

    def copy(self) -> "IPR":
        """An independent copy."""
        return IPR(self.ring, self.segno, self.wordno)


@dataclass
class TPR:
    """Temporary pointer register: the effective address under formation.

    Not program accessible; the processor rebuilds it for every virtual
    memory reference.  ``ring`` is the effective ring with respect to
    which the reference will be validated.
    """

    ring: int = 0
    segno: int = 0
    wordno: int = 0

    def set(self, ring: int, segno: int, wordno: int) -> None:
        """Replace all three fields (masked to their widths)."""
        self.ring = ring & 0o7
        self.segno = segno & SEGNO_MASK
        self.wordno = wordno & HALF_MASK

    def raise_ring(self, value: int) -> None:
        """The Figure 5 max rule: the effective ring only ever increases."""
        if value > self.ring:
            self.ring = value

    def copy(self) -> "TPR":
        """An independent copy."""
        return TPR(self.ring, self.segno, self.wordno)


@dataclass
class RegisterFile:
    """Complete register state of one simulated processor."""

    ipr: IPR = field(default_factory=IPR)
    prs: List[PointerRegister] = field(
        default_factory=lambda: [PointerRegister() for _ in range(NUM_PR)]
    )
    a: int = 0
    q: int = 0
    #: caller-ring register: CALL records the pre-call ring of execution
    #: here — the "program accessible register" of paper p. 19
    crr: int = 0

    def pr(self, n: int) -> PointerRegister:
        """Pointer register ``n`` (0–7)."""
        if not 0 <= n < NUM_PR:
            raise ConfigurationError(f"no pointer register {n}")
        return self.prs[n]

    def set_a(self, value: int) -> None:
        """Load the A accumulator (truncated to a word)."""
        self.a = value & WORD_MASK

    def set_q(self, value: int) -> None:
        """Load the Q accumulator (truncated to a word)."""
        self.q = value & WORD_MASK

    def raise_pr_rings(self, floor: int) -> None:
        """RETURN's upward sweep over every pointer register (Figure 9)."""
        for pr in self.prs:
            if floor > pr.ring:
                pr.ring = floor

    def check_ring_invariant(self) -> bool:
        """True when every ``PRn.RING >= IPR.RING`` (paper p. 31)."""
        return all(pr.ring >= self.ipr.ring for pr in self.prs)

    def snapshot(self) -> "RegisterFile":
        """Deep copy for the trap save area."""
        copy = RegisterFile(
            ipr=self.ipr.copy(),
            prs=[pr.copy() for pr in self.prs],
            a=self.a,
            q=self.q,
            crr=self.crr,
        )
        return copy

    def restore(self, saved: "RegisterFile") -> None:
        """Reload all register state from a snapshot (RCU instruction)."""
        self.ipr = saved.ipr.copy()
        self.prs = [pr.copy() for pr in saved.prs]
        self.a = saved.a
        self.q = saved.q
        self.crr = saved.crr
