"""Per-reference access validation.

These functions bind the pure ring policy (:mod:`repro.core.rings`) to
the SDW contents for one concrete reference, returning ``None`` on
success or the :class:`~repro.cpu.faults.FaultCode` the hardware would
raise.  They are the executable versions of the decision diamonds in
Figures 4 and 6 and of the advance checks in Figure 7.

Check ordering follows the hardware: segment presence is established
during SDW fetch (before any of these run); then the permission flag,
then the ring bracket, then the bound.  Tests in
``tests/test_validate.py`` pin this ordering because supervisor software
can observe it through which fault code arrives first.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from ..core.rings import RingBrackets
from ..formats.sdw import SDW
from .faults import FaultCode


@lru_cache(maxsize=512)
def _brackets(r1: int, r2: int, r3: int) -> RingBrackets:
    # RingBrackets is frozen, so instances are safely shared; there are
    # at most 8**3 triples, so the cache can never thrash.
    return RingBrackets(r1, r2, r3)


def brackets_of(sdw: SDW) -> RingBrackets:
    """The policy view of an SDW's bracket triple (memoized)."""
    return _brackets(sdw.r1, sdw.r2, sdw.r3)


def check_bound(sdw: SDW, wordno: int) -> Optional[FaultCode]:
    """Word numbers must satisfy ``wordno < BOUND``."""
    if wordno >= sdw.bound:
        return FaultCode.ACV_OUT_OF_BOUNDS
    return None


def validate_fetch(sdw: SDW, ring: int, wordno: int) -> Optional[FaultCode]:
    """Figure 4: may an instruction be fetched from (segment, wordno)?

    ``ring`` is the ring of execution (for a fetch, ``TPR.RING`` equals
    ``IPR.RING``).
    """
    if not sdw.execute:
        return FaultCode.ACV_NO_EXECUTE
    if not brackets_of(sdw).execute_allowed(ring):
        return FaultCode.ACV_EXECUTE_BRACKET
    return check_bound(sdw, wordno)


def validate_read(sdw: SDW, ring: int, wordno: int) -> Optional[FaultCode]:
    """Figure 6, left side: may the operand be read?

    ``ring`` is the effective ring (``TPR.RING``).  Also used for
    retrieving indirect words during address formation (Figure 5), which
    the paper requires to be validated "with respect to the value in
    TPR.RING at the time the indirect word is encountered" (p. 27).
    """
    if not sdw.read:
        return FaultCode.ACV_NO_READ
    if not brackets_of(sdw).read_allowed(ring):
        return FaultCode.ACV_READ_BRACKET
    return check_bound(sdw, wordno)


def validate_write(sdw: SDW, ring: int, wordno: int) -> Optional[FaultCode]:
    """Figure 6, right side: may the operand be written?"""
    if not sdw.write:
        return FaultCode.ACV_NO_WRITE
    if not brackets_of(sdw).write_allowed(ring):
        return FaultCode.ACV_WRITE_BRACKET
    return check_bound(sdw, wordno)


def validate_transfer(
    sdw: SDW, eff_ring: int, cur_ring: int, wordno: int
) -> Optional[FaultCode]:
    """Figure 7: advance check for transfers other than CALL and RETURN.

    Plain transfers are "constrained from" changing the ring of
    execution (p. 28).  An effective ring above the ring of execution
    means a higher ring influenced the target address; honouring the
    transfer in the current ring would launder that influence, so it is
    an access violation.  The remaining checks pre-validate the fetch
    that will follow, so the violation is caught "while it is still
    possible to identify the instruction which made the illegal
    transfer".
    """
    if eff_ring != cur_ring:
        return FaultCode.ACV_TRANSFER_RING
    return validate_fetch(sdw, cur_ring, wordno)
