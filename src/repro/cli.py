"""Command-line interface.

Subcommands, all runnable as ``python -m repro <cmd>``:

``figures``
    Print the reproductions of all nine paper figures.
``experiments``
    Run and print the crossing-cost experiment (C1).
``asm FILE``
    Assemble a source file and print its listing (and disassembly with
    ``--disasm``).
``run FILE``
    Assemble a program, install it on a fresh machine (with the standard
    supervisor gate services), execute ``segment$ENTRY`` in the chosen
    ring, and report console output and counters.
``serve``
    Start the ring gateway (:mod:`repro.serve`): gate calls as a
    multi-tenant JSON-lines-over-TCP service in front of a pool of
    persistent machine workers (optionally durable: per-worker
    snapshots plus a write-ahead gate-call journal).
``loadgen``
    Drive a burst of concurrent gate calls against a running gateway
    and report client-side and gateway-side figures.
``checkpoint``
    Assemble a program, execute a bounded number of instructions, and
    write the whole machine — registers, memory, descriptors,
    supervisor, counters — to a verified snapshot file.
``restore``
    Restore a machine from a snapshot (optionally continuing execution
    to HALT) and report its counters.
``replay``
    Replay a gate-call journal through a fresh machine, optionally
    verifying every replayed outcome against the journaled one.
``standby``
    Run a standalone warm standby that receives shipped journal
    records from a replicated gateway (``serve --replica-endpoint``),
    maintains replica machines, and serves promotion on failover.
``journal dump``
    List a gate-call journal's records (seq, CRC, call id, outcome)
    human-readably or as JSON.
``adversary run``
    Sweep the seeded ring-violation attack corpus across the
    execution-tier matrix (interpreter, fast path, block, JIT, fast
    gate, snapshot-restore) asserting every attack faults with the
    expected code, bit-identically on every tier.
``adversary dump``
    List the generated attack corpus — or, with ``--json``, emit the
    full program summaries — without executing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .asm import assemble, listing
from .asm.disasm import disassemble_image
from .core.acl import AclEntry, RingBracketSpec
from .errors import ReproError
from .sim.machine import Machine


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import render_all_figures

    text = render_all_figures()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.report import crossing_cost_table

    print(crossing_cost_table())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis.verify import render_report, verify_all

    results = verify_all()
    print(render_report(results))
    return 0 if all(result.ok for result in results) else 1


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    image = assemble(source, name=args.name or "program")
    print(listing(image, source))
    if args.disasm:
        print()
        print(disassemble_image(image))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    machine = Machine()
    image, process = _install_source(machine, source, args.ring, args.name)
    trace = None
    if args.trace:
        from .sim.trace import TraceLog

        trace = TraceLog()
        trace.attach(machine.processor)
    result = machine.run(
        process, f"{image.name}${args.entry}", ring=args.ring,
        max_steps=args.max_steps,
    )
    if trace is not None:
        trace.detach()
        print(trace.render())
    if args.metrics_json:
        payload = dict(result.metrics.as_dict())
        payload.update(result.metrics.rates())
        payload["halted"] = result.halted
        payload["ring"] = result.ring
        payload["a"] = result.a
        payload["q"] = result.q
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.metrics_json == "-":
            print(text)
        else:
            with open(args.metrics_json, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.metrics_json}")
        return 0
    print(f"halted:         {result.halted}")
    print(f"ring:           {result.ring}")
    print(f"A register:     {result.a}")
    print(f"Q register:     {result.q}")
    print(f"instructions:   {result.instructions}")
    print(f"cycles:         {result.cycles}")
    print(f"ring crossings: {result.ring_crossings}")
    if result.console:
        print(f"console:        {result.console}")
    return 0


def _install_source(machine: Machine, source: str, ring: int, name):
    """``run``/``checkpoint`` shared setup: store, login, initiate."""
    user = machine.add_user("operator")
    if ring <= 3:
        spec = RingBracketSpec.procedure(ring, callable_from=5)
    else:
        spec = RingBracketSpec.procedure(ring)
    image = machine.store_program(
        ">run>program", source, acl=[AclEntry("*", spec)], name=name
    )
    process = machine.login(user)
    machine.initiate(process, ">run>program")
    return image, process


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from .errors import MachineHalted
    from .state.snapshot import snapshot_machine, write_snapshot_file

    with open(args.file) as handle:
        source = handle.read()
    machine = Machine()
    image, process = _install_source(machine, source, args.ring, args.name)
    machine.start(process, f"{image.name}${args.entry}", ring=args.ring)
    processor = machine.processor
    halted = False
    for _ in range(args.steps):
        try:
            processor.step()
        except MachineHalted:
            halted = True
            break
    processor.halted = halted
    digest = write_snapshot_file(
        snapshot_machine(machine), args.out, compress=args.compress
    )
    print(f"wrote {args.out}")
    print(f"sha256:         {digest}")
    print(f"halted:         {halted}")
    print(f"ring:           {processor.registers.ipr.ring}")
    print(f"instructions:   {processor.stats.instructions}")
    print(f"cycles:         {processor.cycles}")
    print(f"ring crossings: {processor.stats.ring_crossings}")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    from .state.snapshot import read_snapshot_file, restore_machine

    snap = read_snapshot_file(args.snapshot)
    machine = restore_machine(snap)
    processor = machine.processor
    print(f"restored {args.snapshot} (integrity verified)")
    if args.run and not processor.halted:
        processor.run(max_steps=args.max_steps)
    print(f"halted:         {processor.halted}")
    print(f"ring:           {processor.registers.ipr.ring}")
    print(f"A register:     {processor.registers.a}")
    print(f"Q register:     {processor.registers.q}")
    print(f"instructions:   {processor.stats.instructions}")
    print(f"cycles:         {processor.cycles}")
    print(f"ring crossings: {processor.stats.ring_crossings}")
    if machine.console:
        print(f"console:        {machine.console}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import os

    from .state.recover import JOURNAL_NAME, replay_journal

    path = args.journal
    if os.path.isdir(path):
        path = os.path.join(path, JOURNAL_NAME)
    report = replay_journal(path, verify=args.verify, strict=args.strict)
    engine = report.engine
    print(f"replayed {report.replayed} journaled call(s) from {path}")
    if args.verify:
        print(f"verified {report.verified} outcome(s) against the journal")
    print(f"last sequence:  {report.last_seq}")
    print(f"calls counted:  {engine.calls}")
    for counter, value in sorted(engine.total.architectural().items()):
        print(f"  {counter}: {value}")
    return 0


def _cmd_journal_dump(args: argparse.Namespace) -> int:
    import os

    from .state.recover import JOURNAL_NAME
    from .state.replication import read_frames

    path = args.journal
    if os.path.isdir(path):
        path = os.path.join(path, JOURNAL_NAME)
    frames = read_frames(path, limit=args.limit)
    if args.json:
        payload = {
            "path": path,
            "count": len(frames),
            "last_seq": frames[-1].seq if frames else 0,
            "records": [
                {"seq": f.seq, "crc": f.crc, **f.record} for f in frames
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{path}: {len(frames)} record(s)")
    header = (
        f"{'seq':>6}  {'crc':>8}  {'call_id':<32}  "
        f"{'user':<10} {'ring':>4}  {'program':<12} {'outcome':<14} "
        f"{'cycles':>8}"
    )
    print(header)
    for frame in frames:
        record = frame.record
        job = record.get("job", {})
        result = record.get("result", {})
        if "error" in result:
            outcome = result["error"]
            cycles = ""
        else:
            outcome = "ok"
            cycles = str(result.get("metrics", {}).get("cycles", ""))
        print(
            f"{frame.seq:>6}  {frame.crc:08x}  "
            f"{str(record.get('call_id', ''))[:32]:<32}  "
            f"{str(job.get('user', ''))[:10]:<10} "
            f"{job.get('ring', ''):>4}  "
            f"{str(job.get('program', ''))[:12]:<12} "
            f"{outcome[:14]:<14} {cycles:>8}"
        )
    return 0


def _cmd_standby(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve.standby import StandbyConfig, StandbyServer

    async def main() -> int:
        server = StandbyServer(
            StandbyConfig(dir=args.dir, host=args.host, port=args.port)
        )
        await server.start()
        print(
            f"ring standby listening on {args.host}:{server.port} "
            f"(mirroring slots under {args.dir})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        await server.stop()
        for slot, applier in sorted(server._appliers.items()):
            print(
                f"slot {slot}: applied {applier.applied} record(s) "
                f"through seq {applier.applied_seq} "
                f"({applier.promotions} promotion(s))",
                flush=True,
            )
        return 0

    return asyncio.run(main())


def _parse_ring_limit(text: str):
    """``RING=RATE[:BURST[:PENDING]]`` -> (ring, RingPolicy)."""
    from .serve.admission import RingPolicy

    try:
        ring_text, spec = text.split("=", 1)
        parts = spec.split(":")
        ring = int(ring_text)
        rate = float(parts[0])
        burst = int(parts[1]) if len(parts) > 1 else 32
        pending = int(parts[2]) if len(parts) > 2 else 64
    except (ValueError, IndexError):
        raise argparse.ArgumentTypeError(
            f"expected RING=RATE[:BURST[:PENDING]], got {text!r}"
        )
    return ring, RingPolicy(rate=rate, burst=burst, max_pending=pending)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve.admission import RingPolicy
    from .serve.gateway import GatewayConfig, RingGateway

    def gateway_config(host: str, port: int) -> GatewayConfig:
        return GatewayConfig(
            host=host,
            port=port,
            workers=args.workers,
            backend=args.backend,
            call_timeout=args.call_timeout,
            drain_timeout=args.drain_timeout,
            durability_dir=args.durability_dir,
            checkpoint_interval=args.checkpoint_interval,
            fsync_every=args.fsync_every,
            max_sessions=args.max_sessions,
            session_store_dir=args.session_store,
            prefetch_interval=args.prefetch_interval,
            replicas=args.replicas,
            ship_every=args.ship_every,
            ack_window=args.ack_window,
            replica_endpoints=tuple(args.replica_endpoint or ()),
            machine_profile=args.machine_profile,
            hardening=tuple(args.hardening or ()),
            default_policy=RingPolicy(
                rate=args.rate,
                burst=args.burst,
                max_pending=args.max_pending,
            ),
            ring_policies=dict(args.ring_limit or []),
        )

    async def wait_for_shutdown() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()

    async def main_single() -> int:
        gateway = RingGateway(gateway_config(args.host, args.port))
        await gateway.start()
        durable = (
            f", durable in {args.durability_dir}"
            if args.durability_dir
            else ""
        )
        paged = (
            f", {args.max_sessions} live session slots"
            if args.max_sessions
            else ""
        )
        replica_count = args.replicas + len(args.replica_endpoint or ())
        replicated = (
            f", {replica_count} replica(s)" if replica_count else ""
        )
        profile = (
            f", {args.machine_profile} machines"
            if args.machine_profile != "ringed"
            else ""
        )
        hardened = (
            f", hardening: {'+'.join(args.hardening)}"
            if args.hardening
            else ""
        )
        print(
            f"ring gateway listening on {args.host}:{gateway.port} "
            f"({gateway.pool.backend} backend, "
            f"{args.workers} workers{durable}{paged}{replicated}{profile}"
            f"{hardened})",
            flush=True,
        )
        await wait_for_shutdown()
        print("draining...", flush=True)
        await gateway.stop()
        counters = gateway.counters
        print(
            f"served {counters.completed} calls "
            f"({counters.timed_out} timed out, "
            f"{counters.rejected_rate_limited + counters.rejected_queue_full}"
            f" rejected, {counters.recoveries} pool recoveries, "
            f"{counters.promotions} promotions)",
            flush=True,
        )
        return 0

    async def main_routed() -> int:
        from .serve.router import RouterConfig, SessionRouter

        router = SessionRouter(
            RouterConfig(
                host=args.host,
                port=args.port,
                call_timeout=args.call_timeout,
            )
        )
        await router.start()
        for index in range(args.gateways):
            await router.spawn(
                f"gw{index}", gateway_config("127.0.0.1", 0)
            )
        print(
            f"session router listening on {args.host}:{router.port} "
            f"({args.gateways} gateways x {args.workers} workers, "
            f"{args.max_sessions} live session slots each)",
            flush=True,
        )
        await wait_for_shutdown()
        print("draining...", flush=True)
        await router.stop()
        counters = router.counters
        print(
            f"routed {counters.calls_forwarded} calls across "
            f"{args.gateways} gateways "
            f"({counters.migrations} migrations, "
            f"{counters.rebinds} rebinds)",
            flush=True,
        )
        return 0

    if args.gateways > 1:
        if not args.max_sessions:
            raise ReproError(
                "--gateways > 1 requires --max-sessions (the router "
                "migrates sessions by parking them to the shared store)"
            )
        if not args.session_store:
            raise ReproError(
                "--gateways > 1 requires --session-store so migrated "
                "sessions hydrate on their new owner"
            )
        return asyncio.run(main_routed())
    return asyncio.run(main_single())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.loadgen import run_load

    call_args = {}
    if args.count is not None:
        call_args["count"] = args.count
    if args.target_ring is not None:
        call_args["target_ring"] = args.target_ring
    if args.n is not None:
        call_args["n"] = args.n
    if args.value is not None:
        call_args["value"] = args.value
    if args.family is not None:
        call_args["family"] = args.family
    if args.seed is not None:
        call_args["seed"] = args.seed
    if args.attack_ring is not None:
        call_args["ring"] = args.attack_ring

    report = asyncio.run(
        run_load(
            args.host,
            args.port,
            sessions=args.sessions,
            calls=args.calls,
            program=args.program,
            args=call_args,
            rings=tuple(args.ring) or (4,),
            concurrency=args.concurrency,
            expect_fault=args.expect_fault,
            expect_profile=args.expect_profile,
            expect_hardening=(
                None
                if args.expect_hardening is None
                else tuple(args.expect_hardening)
            ),
        )
    )
    payload = report.as_dict()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json}")
    else:
        print(text)
    if args.expect_fault:
        print(
            f"{payload['expected_faults']}/{payload['sent']} faulted "
            f"{args.expect_fault} as expected at "
            f"{payload['throughput_calls_per_second']} calls/s "
            f"(p50 {payload['latency_p50_ms']} ms, "
            f"p99 {payload['latency_p99_ms']} ms)",
            file=sys.stderr,
        )
    else:
        print(
            f"{payload['ok']}/{payload['sent']} OK at "
            f"{payload['throughput_calls_per_second']} calls/s "
            f"(p50 {payload['latency_p50_ms']} ms, "
            f"p99 {payload['latency_p99_ms']} ms)",
            file=sys.stderr,
        )
    problems = payload["problems"]
    if problems:
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
    if args.check and problems:
        return 1
    return 0


def _cmd_adversary_run(args: argparse.Namespace) -> int:
    from .adversary.harness import TIER_NAMES, run_corpus

    report = run_corpus(
        seed=args.seed,
        per_family=args.per_family,
        families=tuple(args.family) if args.family else None,
        tiers=tuple(args.tier) if args.tier else TIER_NAMES,
        hardware_rings=not args.baseline645,
        ring=args.attack_ring,
    )
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.json}")
    else:
        profile = "baseline645" if args.baseline645 else "ringed"
        print(
            f"adversary sweep: {report['total']} attack program(s) x "
            f"{len(report['tiers'])} tier(s) [{profile}]"
        )
        for entry in report["programs"]:
            verdict = "ok" if entry["ok"] else "FAIL"
            print(
                f"  {verdict:<4} {entry['name']:<16} "
                f"{entry['family']:<18} expects "
                f"{entry['expected']['code']}"
            )
            for problem in entry["problems"]:
                print(f"       problem: {problem}")
        print(
            f"{report['total'] - report['failed']}/{report['total']} "
            f"held the oracle bit-identically across "
            f"{', '.join(report['tiers'])}"
        )
    return 0 if report["ok"] else 1


def _cmd_adversary_dump(args: argparse.Namespace) -> int:
    from .adversary.corpus import generate_corpus

    corpus = generate_corpus(
        seed=args.seed,
        per_family=args.per_family,
        families=tuple(args.family) if args.family else None,
        ring=args.attack_ring,
    )
    if args.json:
        payload = {
            "seed": args.seed,
            "count": len(corpus),
            "programs": [program.summary() for program in corpus],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{len(corpus)} attack program(s) (seed {args.seed})")
    header = (
        f"{'name':<16} {'family':<18} {'ring':>4}  "
        f"{'expected fault':<24} {'at ring':>7}  {'at segment':<18} "
        f"{'needs flag':<18} {'victim rule violated'}"
    )
    print(header)
    for program in corpus:
        oracle_ring = "any" if program.expect_ring is None else program.expect_ring
        oracle_seg = program.expect_segment or "any"
        print(
            f"{program.name:<16} {program.family:<18} "
            f"{program.ring:>4}  {program.expect_code.name:<24} "
            f"{oracle_ring:>7}  {oracle_seg:<18} "
            f"{program.hardening or '-':<18} {program.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Schroeder & Saltzer protection rings, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="print all figure reproductions")
    figures.add_argument("--out", help="write to a file instead of stdout")
    figures.set_defaults(func=_cmd_figures)
    sub.add_parser(
        "experiments", help="run the crossing-cost experiment"
    ).set_defaults(func=_cmd_experiments)
    sub.add_parser(
        "verify", help="run the built-in self-verification checks"
    ).set_defaults(func=_cmd_verify)

    asm = sub.add_parser("asm", help="assemble a source file")
    asm.add_argument("file")
    asm.add_argument("--name", help="segment name (default: .seg directive)")
    asm.add_argument(
        "--disasm", action="store_true", help="also print the disassembly"
    )
    asm.set_defaults(func=_cmd_asm)

    run = sub.add_parser("run", help="assemble and execute a program")
    run.add_argument("file")
    run.add_argument("--ring", type=int, default=4, help="ring of execution")
    run.add_argument("--entry", default="main", help="entry symbol")
    run.add_argument("--name", help="segment name override")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.add_argument(
        "--trace", action="store_true", help="print the instruction trace"
    )
    run.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="dump the full metrics snapshot (cycles, faults, PTLB/icache/"
        "block-tier hit rates, ...) as JSON to FILE ('-' for stdout) "
        "instead of the plain-text counters",
    )
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve", help="start the ring gateway (gate calls as a service)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7117, help="TCP port (0: kernel-chosen)"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="worker pool backend (process pools fall back to threads "
        "where unavailable)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="default per-ring sustained calls/s (default: unlimited)",
    )
    serve.add_argument("--burst", type=int, default=64)
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="per-ring bound on queued+executing calls",
    )
    serve.add_argument(
        "--ring-limit",
        type=_parse_ring_limit,
        action="append",
        metavar="RING=RATE[:BURST[:PENDING]]",
        help="override the admission policy for one ring (repeatable)",
    )
    serve.add_argument("--call-timeout", type=float, default=10.0)
    serve.add_argument("--drain-timeout", type=float, default=10.0)
    serve.add_argument(
        "--durability-dir",
        metavar="DIR",
        help="persist per-worker snapshots and write-ahead gate-call "
        "journals under DIR; a replacement worker restores a crashed "
        "worker's machine from them (default: off)",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=64,
        help="snapshot each worker machine every N executed calls",
    )
    serve.add_argument(
        "--fsync-every",
        type=int,
        default=8,
        help="fsync the journal every N appends (a crash can lose at "
        "most N-1 journaled calls; retries absorb that)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="N",
        help="spawn N in-process warm standbys and ship every slot's "
        "journal to them; on a pool crash the lowest-lag follower is "
        "promoted instead of cold-restoring (requires --durability-dir)",
    )
    serve.add_argument(
        "--ship-every",
        type=int,
        default=8,
        metavar="K",
        help="journal records per shipped replication frame",
    )
    serve.add_argument(
        "--ack-window",
        type=int,
        default=4,
        metavar="W",
        help="shipped frames in flight before the shipper waits for "
        "a standby ack",
    )
    serve.add_argument(
        "--replica-endpoint",
        action="append",
        metavar="HOST:PORT",
        help="also ship to an external `repro standby` (repeatable; "
        "the standby must see the same --durability-dir filesystem)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="serve each user on a private machine, paging idle ones "
        "to copy-on-write parked snapshots and keeping at most N live "
        "(default: classic shared-worker mode)",
    )
    serve.add_argument(
        "--session-store",
        metavar="DIR",
        help="persist parked sessions under DIR (default: in-memory; "
        "required when --gateways > 1)",
    )
    serve.add_argument(
        "--prefetch-interval",
        type=float,
        default=0.05,
        help="idle-tick period for warm-pool prefetching of recently "
        "parked sessions (0: off)",
    )
    serve.add_argument(
        "--gateways",
        type=int,
        default=1,
        metavar="N",
        help="front N session gateways with a consistent-hash router "
        "(requires --max-sessions and --session-store)",
    )
    serve.add_argument(
        "--machine-profile",
        choices=("ringed", "baseline645"),
        default="ringed",
        help="worker machine hardware profile: 'ringed' (hardware ring "
        "checks) or 'baseline645' (GE 645 software rings, identical "
        "fault verdicts, slower crossings) for live A/B comparison",
    )
    serve.add_argument(
        "--hardening",
        action="append",
        default=[],
        choices=("auth_return_stack", "ring_domains", "nx_brackets"),
        metavar="FLAG",
        help="enable a hardening extension on every worker machine "
        "(repeatable): auth_return_stack, ring_domains, nx_brackets",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="drive gate-call load against a running gateway"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7117)
    loadgen.add_argument("--sessions", type=int, default=16)
    loadgen.add_argument(
        "--calls", type=int, default=50, help="calls per session"
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=None,
        metavar="N",
        help="cap in-flight sessions at N (default: all at once)",
    )
    loadgen.add_argument(
        "--program", default="call_loop", help="catalog program to call"
    )
    loadgen.add_argument(
        "--ring",
        type=int,
        action="append",
        default=[],
        help="session ring; repeat for a mixed-ring burst (default: 4)",
    )
    loadgen.add_argument("--count", type=int, help="call_loop: pairs per call")
    loadgen.add_argument(
        "--target-ring", type=int, help="call_loop: gate's ring"
    )
    loadgen.add_argument("--n", type=int, help="compute: loop iterations")
    loadgen.add_argument("--value", type=int, help="echo: value to return")
    loadgen.add_argument(
        "--family", help="attack: adversary corpus family to build"
    )
    loadgen.add_argument("--seed", type=int, help="attack: corpus seed")
    loadgen.add_argument(
        "--attack-ring", type=int, help="attack: attacker's ring"
    )
    loadgen.add_argument(
        "--expect-fault",
        metavar="CODE",
        help="adversarial mode: every call must FAIL with this fault "
        "code (e.g. ACV_NOT_GATE); a call that succeeds, or faults "
        "differently, is reported as a problem",
    )
    loadgen.add_argument(
        "--expect-profile",
        choices=("ringed", "baseline645"),
        help="assert the gateway's advertised machine profile",
    )
    loadgen.add_argument(
        "--expect-hardening",
        action="append",
        default=None,
        choices=("auth_return_stack", "ring_domains", "nx_brackets"),
        metavar="FLAG",
        help="assert the gateway's advertised hardening flags "
        "(repeatable; the set must match exactly)",
    )
    loadgen.add_argument("--json", metavar="FILE", help="write the report")
    loadgen.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every request completed and the gateway's "
        "figures are self-consistent",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="execute a program for a bounded number of instructions "
        "and write the machine to a verified snapshot file",
    )
    checkpoint.add_argument("file", help="assembly source file")
    checkpoint.add_argument("--out", required=True, help="snapshot file")
    checkpoint.add_argument(
        "--steps",
        type=int,
        default=1_000_000,
        help="instructions to execute before snapshotting (stops early "
        "on HALT)",
    )
    checkpoint.add_argument("--ring", type=int, default=4)
    checkpoint.add_argument("--entry", default="main")
    checkpoint.add_argument("--name", help="segment name override")
    checkpoint.add_argument(
        "--compress",
        action="store_true",
        help="zlib-compress the snapshot body (the checksum still "
        "covers the uncompressed bytes; restore auto-detects)",
    )
    checkpoint.set_defaults(func=_cmd_checkpoint)

    restore = sub.add_parser(
        "restore",
        help="restore a machine from a snapshot and report its counters",
    )
    restore.add_argument("snapshot", help="snapshot file")
    restore.add_argument(
        "--run",
        action="store_true",
        help="continue executing the restored machine until HALT",
    )
    restore.add_argument("--max-steps", type=int, default=1_000_000)
    restore.set_defaults(func=_cmd_restore)

    replay = sub.add_parser(
        "replay",
        help="replay a gate-call journal through a fresh machine",
    )
    replay.add_argument(
        "journal", help="journal file, or a worker slot directory"
    )
    replay.add_argument(
        "--verify",
        action="store_true",
        help="check every replayed outcome against the journaled one "
        "(exit 1 on any divergence or journal corruption)",
    )
    replay.add_argument(
        "--strict",
        action="store_true",
        help="refuse a torn journal tail instead of ignoring it",
    )
    replay.set_defaults(func=_cmd_replay)

    standby = sub.add_parser(
        "standby",
        help="run a standalone warm standby for a replicated gateway",
    )
    standby.add_argument(
        "--dir",
        required=True,
        metavar="DIR",
        help="the gateway's --durability-dir (shared filesystem): "
        "promotion replays journal tails from it and writes promotion "
        "snapshots into it",
    )
    standby.add_argument("--host", default="127.0.0.1")
    standby.add_argument(
        "--port", type=int, default=7118, help="TCP port (0: kernel-chosen)"
    )
    standby.set_defaults(func=_cmd_standby)

    journal = sub.add_parser(
        "journal", help="gate-call journal inspection utilities"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    dump = journal_sub.add_parser(
        "dump", help="list a journal's records (seq, CRC, call id, outcome)"
    )
    dump.add_argument(
        "journal", help="journal file, or a worker slot directory"
    )
    dump.add_argument(
        "--json",
        action="store_true",
        help="emit the full records as one JSON document",
    )
    dump.add_argument(
        "--limit", type=int, default=None, help="stop after N records"
    )
    dump.set_defaults(func=_cmd_journal_dump)

    adversary = sub.add_parser(
        "adversary",
        help="ring-violation attack corpus and fault-oracle harness",
    )
    adversary_sub = adversary.add_subparsers(
        dest="adversary_command", required=True
    )

    def _corpus_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--seed",
            type=int,
            default=1971,
            help="corpus seed (every program is derived deterministically)",
        )
        p.add_argument(
            "--per-family",
            type=int,
            default=1,
            help="attack programs generated per family",
        )
        p.add_argument(
            "--family",
            action="append",
            default=[],
            metavar="NAME",
            help="restrict to one attack family (repeatable; "
            "default: all families)",
        )
        p.add_argument(
            "--attack-ring",
            type=int,
            default=None,
            metavar="RING",
            help="pin the attacker's ring of execution (default: drawn "
            "per program from the seed)",
        )

    adv_run = adversary_sub.add_parser(
        "run",
        help="sweep the attack corpus across the execution-tier matrix, "
        "asserting every attack faults bit-identically with the "
        "expected code",
    )
    _corpus_arguments(adv_run)
    adv_run.add_argument(
        "--tier",
        action="append",
        default=[],
        metavar="NAME",
        help="restrict to one execution tier (repeatable; default: "
        "interp, fast_path, block, jit, fast_gate, restore)",
    )
    adv_run.add_argument(
        "--baseline645",
        action="store_true",
        help="run with hardware rings off (the GE 645 software-ring "
        "profile); the fault verdicts must not change",
    )
    adv_run.add_argument(
        "--json",
        metavar="FILE",
        help="write the full sweep report as JSON ('-' for stdout)",
    )
    adv_run.set_defaults(func=_cmd_adversary_run)

    adv_dump = adversary_sub.add_parser(
        "dump",
        help="list the generated attack corpus (name, family, ring, "
        "expected fault) without executing it",
    )
    _corpus_arguments(adv_dump)
    adv_dump.add_argument(
        "--json",
        action="store_true",
        help="emit the full program summaries (segments, oracle, "
        "entry) as one JSON document",
    )
    adv_dump.set_defaults(func=_cmd_adversary_dump)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
