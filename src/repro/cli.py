"""Command-line interface.

Four subcommands, all runnable as ``python -m repro <cmd>``:

``figures``
    Print the reproductions of all nine paper figures.
``experiments``
    Run and print the crossing-cost experiment (C1).
``asm FILE``
    Assemble a source file and print its listing (and disassembly with
    ``--disasm``).
``run FILE``
    Assemble a program, install it on a fresh machine (with the standard
    supervisor gate services), execute ``segment$ENTRY`` in the chosen
    ring, and report console output and counters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .asm import assemble, listing
from .asm.disasm import disassemble_image
from .core.acl import AclEntry, RingBracketSpec
from .errors import ReproError
from .sim.machine import Machine


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis.figures import render_all_figures

    text = render_all_figures()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis.report import crossing_cost_table

    print(crossing_cost_table())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis.verify import render_report, verify_all

    results = verify_all()
    print(render_report(results))
    return 0 if all(result.ok for result in results) else 1


def _cmd_asm(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    image = assemble(source, name=args.name or "program")
    print(listing(image, source))
    if args.disasm:
        print()
        print(disassemble_image(image))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    machine = Machine()
    user = machine.add_user("operator")
    if args.ring <= 3:
        spec = RingBracketSpec.procedure(args.ring, callable_from=5)
    else:
        spec = RingBracketSpec.procedure(args.ring)
    image = machine.store_program(
        ">run>program", source, acl=[AclEntry("*", spec)], name=args.name
    )
    process = machine.login(user)
    machine.initiate(process, ">run>program")
    trace = None
    if args.trace:
        from .sim.trace import TraceLog

        trace = TraceLog()
        trace.attach(machine.processor)
    result = machine.run(
        process, f"{image.name}${args.entry}", ring=args.ring,
        max_steps=args.max_steps,
    )
    if trace is not None:
        trace.detach()
        print(trace.render())
    if args.metrics_json:
        payload = dict(result.metrics.as_dict())
        for tier in ("sdw", "ptlb", "icache", "block"):
            hits = payload[f"{tier}_hits"]
            misses = payload[f"{tier}_misses"]
            payload[f"{tier}_hit_rate"] = (
                round(hits / (hits + misses), 4) if hits + misses else None
            )
        payload["halted"] = result.halted
        payload["ring"] = result.ring
        payload["a"] = result.a
        payload["q"] = result.q
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.metrics_json == "-":
            print(text)
        else:
            with open(args.metrics_json, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.metrics_json}")
        return 0
    print(f"halted:         {result.halted}")
    print(f"ring:           {result.ring}")
    print(f"A register:     {result.a}")
    print(f"Q register:     {result.q}")
    print(f"instructions:   {result.instructions}")
    print(f"cycles:         {result.cycles}")
    print(f"ring crossings: {result.ring_crossings}")
    if result.console:
        print(f"console:        {result.console}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Schroeder & Saltzer protection rings, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="print all figure reproductions")
    figures.add_argument("--out", help="write to a file instead of stdout")
    figures.set_defaults(func=_cmd_figures)
    sub.add_parser(
        "experiments", help="run the crossing-cost experiment"
    ).set_defaults(func=_cmd_experiments)
    sub.add_parser(
        "verify", help="run the built-in self-verification checks"
    ).set_defaults(func=_cmd_verify)

    asm = sub.add_parser("asm", help="assemble a source file")
    asm.add_argument("file")
    asm.add_argument("--name", help="segment name (default: .seg directive)")
    asm.add_argument(
        "--disasm", action="store_true", help="also print the disassembly"
    )
    asm.set_defaults(func=_cmd_asm)

    run = sub.add_parser("run", help="assemble and execute a program")
    run.add_argument("file")
    run.add_argument("--ring", type=int, default=4, help="ring of execution")
    run.add_argument("--entry", default="main", help="entry symbol")
    run.add_argument("--name", help="segment name override")
    run.add_argument("--max-steps", type=int, default=1_000_000)
    run.add_argument(
        "--trace", action="store_true", help="print the instruction trace"
    )
    run.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="dump the full metrics snapshot (cycles, faults, PTLB/icache/"
        "block-tier hit rates, ...) as JSON to FILE ('-' for stdout) "
        "instead of the plain-text counters",
    )
    run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
