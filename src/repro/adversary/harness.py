"""Fault-oracle harness: attack every execution tier, expect the fault.

The repo's exactness contract says every host-side tier — interpreter,
fast path, superblocks, compiled traces, fast-gate entry, and a
snapshot/restore hop — reproduces the interpreter's architectural
figures bit-for-bit.  This harness extends the contract into negative
space: a hostile program must *fault*, with the same fault code, the
same validation ring, the same target segment, the same fault word,
and bit-identical architectural counters, no matter which tier was
executing when the violating reference was made.  The corpus programs
carry seeded warmup loops so the violating instruction hits with the
superblock and trace caches already hot — the attack lands on the
optimized path, not the cold interpreter.

``run_entry`` executes one corpus program under one tier configuration
and returns its *fault figure*; ``run_corpus`` sweeps programs × tiers,
checks every figure against the program's oracle, and checks the
figures against each other for bit-identity.  The ``fast_gate`` tier
additionally re-runs the program on the warm attach path and asserts
the *security* figure (fault code / class / rings / segment) is
unchanged — host cache metadata may differ on the repeat, the verdict
may not.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..cpu.faults import Fault
from ..errors import ConfigurationError, MachineHalted
from ..hardening import HardeningConfig
from ..sim.machine import Machine
from ..sim.metrics import MetricsSnapshot
from ..state.snapshot import restore_machine, snapshot_machine
from .corpus import DEFAULT_SEED, AttackProgram, generate_corpus

#: tier name -> Machine knob overrides.  Ordering is the report order;
#: the first tier (pure interpreter) is the reference figure.
TIER_CONFIGS: Dict[str, Dict[str, Any]] = {
    "interp": {
        "fast_path_enabled": False,
        "block_tier_enabled": False,
        "jit_tier_enabled": False,
    },
    "fast_path": {
        "fast_path_enabled": True,
        "block_tier_enabled": False,
        "jit_tier_enabled": False,
    },
    "block": {
        "fast_path_enabled": True,
        "block_tier_enabled": True,
        "jit_tier_enabled": False,
    },
    "jit": {
        "fast_path_enabled": True,
        "block_tier_enabled": True,
        "jit_tier_enabled": True,
    },
    "fast_gate": {
        "fast_path_enabled": True,
        "block_tier_enabled": True,
        "jit_tier_enabled": True,
        "fast_gate": True,
    },
    # snapshot mid-warmup, restore into a fresh machine, resume to the
    # fault — the durability hop must not perturb the verdict either
    "restore": {
        "fast_path_enabled": True,
        "block_tier_enabled": True,
        "jit_tier_enabled": True,
    },
}

TIER_NAMES: Tuple[str, ...] = tuple(TIER_CONFIGS)

#: instruction count at which the ``restore`` tier takes its snapshot —
#: inside the warmup loop (every corpus warmup runs >= 2*MIN_WARMUP
#: instructions), well before the violating reference
SNAPSHOT_STEP = 9

#: figure keys that must survive a warm fast-gate repeat unchanged;
#: host-visible detail (fault word, counters) may shift because the
#: repeat deliberately skips re-attachment
SECURITY_KEYS = ("faulted", "code", "fclass", "ring", "cur_ring", "segment")

#: tiers swept by the flag-off ablation half of a hardened program's
#: check — one interpreted, one compiled; enough to show the attack
#: *succeeds* without the extension and does so bit-identically
ABLATION_TIERS: Tuple[str, ...] = ("interp", "jit")

_MAX_STEPS = 200_000


def _program_hardening(program: AttackProgram) -> HardeningConfig:
    """The machine flags a corpus program expects to be defeated by."""
    if program.hardening is None:
        return HardeningConfig()
    return HardeningConfig.from_flags(
        [program.hardening], domains=program.domains
    )


def install_attack(
    machine: Machine, program: AttackProgram, user: str = "adversary"
):
    """Store and initiate ``program`` on ``machine``; returns the process."""
    account = machine.add_user(user)
    for path, source, acl in program.segments:
        machine.store_program(path, source, acl=list(acl))
    for path, values, acl in program.data_segments:
        machine.store_data(path, list(values), acl=list(acl))
    for name, domain in program.domains:
        # a no-op unless the machine was built with ring_domains; done
        # before initiation so every tier validates under the binding
        machine.assign_domain(name, domain)
    process = machine.login(account)
    for path, _, _ in program.segments:
        machine.initiate(process, path)
    for path, _, _ in program.data_segments:
        machine.initiate(process, path)
    return process


def _segment_name(machine: Machine, segno: Optional[int]) -> Optional[str]:
    if segno is None:
        return None
    active = machine.supervisor.active_by_segno.get(segno)
    if active is None:
        return None
    return active.path.split(">")[-1]


def _figure(machine: Machine, fault: Optional[Fault]) -> Dict[str, Any]:
    counters = MetricsSnapshot.collect(machine.processor).architectural()
    if fault is None:
        return {
            "faulted": False,
            "code": None,
            "fclass": None,
            "ring": None,
            "cur_ring": None,
            "segment": None,
            "wordno": None,
            "detail": None,
            "counters": counters,
        }
    return {
        "faulted": True,
        "code": fault.code.name,
        "fclass": fault.code.fclass.name,
        "ring": fault.ring,
        "cur_ring": fault.cur_ring,
        "segment": _segment_name(machine, fault.segno),
        "wordno": fault.wordno,
        "detail": fault.detail,
        "counters": counters,
    }


def _run_to_verdict(machine: Machine, process, program: AttackProgram):
    """One ``machine.run`` of the attack; the fault (or None if it won)."""
    try:
        machine.run(
            process, program.entry, ring=program.ring, max_steps=_MAX_STEPS
        )
    except Fault as fault:
        return fault
    return None


def _run_restore_tier(
    program: AttackProgram,
    hardware_rings: bool,
    hardening: HardeningConfig,
) -> Dict[str, Any]:
    machine = Machine(
        services=False,
        hardware_rings=hardware_rings,
        hardening=hardening,
        **TIER_CONFIGS["jit"],
    )
    process = install_attack(machine, program)
    machine.start(process, program.entry, program.ring)
    machine.processor.reset_counters()
    for _ in range(SNAPSHOT_STEP):
        try:
            machine.processor.step()
        except (Fault, MachineHalted):
            # a corpus program never faults inside its warmup; if one
            # somehow does, the plain figure is still the verdict
            return _figure(machine, None)
    restored = restore_machine(snapshot_machine(machine))
    try:
        restored.processor.run(max_steps=_MAX_STEPS)
    except Fault as fault:
        return _figure(restored, fault)
    return _figure(restored, None)


def run_entry(
    program: AttackProgram,
    tier: str,
    hardware_rings: bool = True,
    hardening: Optional[HardeningConfig] = None,
) -> Dict[str, Any]:
    """Run one corpus program under one tier; returns its fault figure.

    ``hardening=None`` (the default) builds the machine with whatever
    extension the program names in ``program.hardening`` — a plain 1971
    machine for the classic families.  Pass an explicit
    ``HardeningConfig()`` to force the flag *off* (the ablation
    direction) or any other config to probe mismatched flags.

    The result carries the figure under ``"figure"``; for the
    ``fast_gate`` tier it also carries ``"repeat"`` — the figure of a
    second, warm-path run of the same attack on the same machine.
    """
    if tier not in TIER_CONFIGS:
        raise ConfigurationError(
            f"unknown tier {tier!r}; expected one of {list(TIER_CONFIGS)}"
        )
    if hardening is None:
        hardening = _program_hardening(program)
    if tier == "restore":
        return {
            "tier": tier,
            "figure": _run_restore_tier(program, hardware_rings, hardening),
            "repeat": None,
        }
    machine = Machine(
        services=False,
        hardware_rings=hardware_rings,
        hardening=hardening,
        **TIER_CONFIGS[tier],
    )
    process = install_attack(machine, program)
    figure = _figure(machine, _run_to_verdict(machine, process, program))
    repeat = None
    if tier == "fast_gate":
        repeat = _figure(machine, _run_to_verdict(machine, process, program))
    return {"tier": tier, "figure": figure, "repeat": repeat}


def _check_oracle(
    program: AttackProgram, tier: str, figure: Dict[str, Any]
) -> Iterable[str]:
    if not figure["faulted"]:
        yield f"{tier}: attack did NOT fault (ran to completion)"
        return
    if figure["code"] != program.expect_code.name:
        yield (
            f"{tier}: fault code {figure['code']} != expected "
            f"{program.expect_code.name}"
        )
    if figure["fclass"] != program.expect_class.name:
        yield (
            f"{tier}: fault class {figure['fclass']} != expected "
            f"{program.expect_class.name}"
        )
    if (
        program.expect_ring is not None
        and figure["ring"] != program.expect_ring
    ):
        yield (
            f"{tier}: validation ring {figure['ring']} != expected "
            f"{program.expect_ring}"
        )
    if (
        program.expect_segment is not None
        and figure["segment"] != program.expect_segment
    ):
        yield (
            f"{tier}: fault segment {figure['segment']!r} != expected "
            f"{program.expect_segment!r}"
        )


def check_program(
    program: AttackProgram,
    tiers: Sequence[str] = TIER_NAMES,
    hardware_rings: bool = True,
) -> Dict[str, Any]:
    """Sweep one program across ``tiers``; oracle + bit-identity report.

    For a hardened program (``program.hardening`` set) the sweep runs
    both halves of the ablation: the tier matrix above with the named
    flag *on* (must hit the oracle fault), then :data:`ABLATION_TIERS`
    with the flag *off* — where the attack must come out the other way
    (``program.unhardened_outcome``), again bit-identically, proving
    the fault is the extension's doing and nothing else's.
    """
    problems = []
    figures: Dict[str, Dict[str, Any]] = {}
    reference_tier: Optional[str] = None
    for tier in tiers:
        result = run_entry(program, tier, hardware_rings=hardware_rings)
        figure = result["figure"]
        figures[tier] = figure
        problems.extend(_check_oracle(program, tier, figure))
        if reference_tier is None:
            reference_tier = tier
        elif figure != figures[reference_tier]:
            diverging = sorted(
                key
                for key in figure
                if figure[key] != figures[reference_tier][key]
            )
            problems.append(
                f"{tier}: figure diverges from {reference_tier} on "
                f"{diverging}"
            )
        if result["repeat"] is not None:
            for key in SECURITY_KEYS:
                if result["repeat"][key] != figure[key]:
                    problems.append(
                        f"{tier}: warm repeat changed {key}: "
                        f"{figure[key]!r} -> {result['repeat'][key]!r}"
                    )
    ablation: Dict[str, Dict[str, Any]] = {}
    if program.hardening is not None:
        flag_off = HardeningConfig()
        off_reference: Optional[str] = None
        for tier in ABLATION_TIERS:
            figure = run_entry(
                program,
                tier,
                hardware_rings=hardware_rings,
                hardening=flag_off,
            )["figure"]
            ablation[tier] = figure
            if program.unhardened_outcome == "halts":
                if figure["faulted"]:
                    problems.append(
                        f"{tier} (flag off): attack faulted with "
                        f"{figure['code']}; without {program.hardening} "
                        "it should have run to completion"
                    )
            elif figure["faulted"] and (
                figure["code"] == program.expect_code.name
            ):
                problems.append(
                    f"{tier} (flag off): attack still faulted with the "
                    f"hardened code {figure['code']}; the fault is not "
                    f"{program.hardening}'s doing"
                )
            if off_reference is None:
                off_reference = tier
            elif figure != ablation[off_reference]:
                diverging = sorted(
                    key
                    for key in figure
                    if figure[key] != ablation[off_reference][key]
                )
                problems.append(
                    f"{tier} (flag off): figure diverges from "
                    f"{off_reference} on {diverging}"
                )
    return {
        "name": program.name,
        "family": program.family,
        "seed": program.seed,
        "ring": program.ring,
        "hardening": program.hardening,
        "unhardened_outcome": program.unhardened_outcome,
        "expected": {
            "code": program.expect_code.name,
            "fclass": program.expect_class.name,
            "ring": program.expect_ring,
            "segment": program.expect_segment,
        },
        "figures": figures,
        "ablation": ablation,
        "ok": not problems,
        "problems": problems,
    }


def run_corpus(
    corpus: Optional[Sequence[AttackProgram]] = None,
    seed: int = DEFAULT_SEED,
    per_family: int = 1,
    families: Optional[Tuple[str, ...]] = None,
    tiers: Sequence[str] = TIER_NAMES,
    hardware_rings: bool = True,
    ring: Optional[int] = None,
) -> Dict[str, Any]:
    """The full adversarial sweep: corpus × tier matrix.

    Returns ``{"ok", "total", "failed", "seed", "hardware_rings",
    "tiers", "programs": [check_program reports]}``.
    """
    for tier in tiers:
        if tier not in TIER_CONFIGS:
            raise ConfigurationError(
                f"unknown tier {tier!r}; expected one of {list(TIER_CONFIGS)}"
            )
    if corpus is None:
        corpus = generate_corpus(
            seed=seed, per_family=per_family, families=families, ring=ring
        )
    reports = [
        check_program(program, tiers=tiers, hardware_rings=hardware_rings)
        for program in corpus
    ]
    failed = sum(1 for report in reports if not report["ok"])
    return {
        "ok": failed == 0,
        "total": len(reports),
        "failed": failed,
        "seed": seed,
        "hardware_rings": hardware_rings,
        "tiers": list(tiers),
        "programs": reports,
    }
