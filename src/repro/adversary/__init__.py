"""Adversary subsystem: ring-violation attack corpus and fault oracle.

The paper's security argument is negative-space: what matters is not
that well-behaved programs run, but that *hostile* programs cannot do
anything except fault.  This package turns that argument into an
executable property:

:mod:`repro.adversary.corpus`
    seeded generators of assembled programs that attempt every ring
    violation the hardware is supposed to catch — cross-bracket reads
    and writes, non-gate downward transfers, indirect-word ring
    laundering, forged returns, gate entry off the gate list, execute
    bracket violations — each paired with an expected-fault oracle.

:mod:`repro.adversary.harness`
    runs the corpus through the full execution-tier matrix
    (interpreter / fast path / superblocks / JIT / fast-gate /
    snapshot-restore-resume) and asserts each program faults with the
    expected figure bit-identically in every tier, with all host
    caches hot.

The serving catalog (:mod:`repro.serve.catalog`) exposes the same
attacks as servable workloads so the property also holds under
multi-tenant load, and the ``baseline645`` machine profile lets
``loadgen`` A/B the hardware-ring and software-ring crossing costs at
service scale.
"""

from .corpus import (  # noqa: F401
    ATTACK_FAMILIES,
    DEFAULT_SEED,
    AttackProgram,
    build_attack,
    generate_corpus,
)
from .harness import TIER_NAMES, run_corpus, run_entry  # noqa: F401
