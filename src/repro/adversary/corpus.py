"""Seeded generators of ring-violation attack programs.

Every generator builds a small assembled program that *attempts* one of
the violations the ring hardware exists to stop, and states the oracle:
the :class:`~repro.cpu.faults.FaultCode` the machine must raise, its
class, the validation ring in force at the fault, and the segment the
fault must name.  The attack families map onto the paper's decision
diagrams and onto the modern threat models in PAPERS.md:

=====================  ====================================================
family                 violation attempted
=====================  ====================================================
``read_bracket``       read data bracketed below the attacker's ring
``write_bracket``      write data bracketed below the attacker's ring
``execute_only_read``  read the text of an execute-only (proprietary)
                       procedure
``nongate_call``       downward CALL into a segment with no gate list
``gate_skip``          CALL a gated segment at a word past the gate list
``gate_extension``     CALL a gate from above its gate extension (R3)
``launder_read``       read through an indirect word whose RING field
                       was planted by a higher ring (the hardware must
                       *raise* the validation ring, never lower it)
``launder_call``       CALL through a ring-poisoned link word
                       (PACStack's forged-pointer family; p. 30 makes
                       this an access violation outright)
``launder_transfer``   plain transfer through a ring-poisoned pointer
``exec_bracket_tra``   plain transfer into a lower execute bracket
``exec_data``          transfer into a pure data segment
``return_forge_down``  RETURN through a forged pointer at a lower ring
                       (DeTRAP's corrupted-return-address family)
``return_forge_gate``  tamper with the software return gate's slot
                       pointer after an upward call, then RETURN
``privileged``         execute a privileged instruction outside ring 0
``bounds``             read past a segment's bound through a pointer
                       register
``auth_return_forge``  hijack an upward return through a sloppy gate
                       that returns through a caller-controlled pointer
                       — bracket-legal; only ``auth_return_stack``
                       (PACStack's MAC chain) refuses it
``domain_breach``      read another compartment's data at the same
                       privilege level — bracket-legal; only
                       ``ring_domains`` (LOTRx86) refuses it
``wx_execute``         execute code in a segment that is also writable
                       — bracket-legal; only ``nx_brackets`` (W^X)
                       refuses it
=====================  ====================================================

The last three families are the hardening ablation probes: each one
*succeeds* (halts normally) on the plain 1971 machine, on both ring
profiles and every host tier, and is defeated only by its matching
extension from :mod:`repro.hardening` — ``hardening`` on the program
names that flag, and the harness checks both directions.

Generation is deterministic: ``build_attack(family, seed, ring)`` draws
every free parameter (victim brackets, poison rings, warmup length,
secret values) from ``random.Random(f"{family}:{seed}")``, so a corpus
entry is reproducible from the three values a CI log prints.  Every
program begins with a seeded warmup loop long enough to push its hot
block through the superblock and trace-compile tiers before the
violating instruction executes — the point is to attack the machine
with every host cache hot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.acl import AclEntry, RingBracketSpec
from ..cpu.faults import FaultClass, FaultCode
from ..errors import ConfigurationError

#: rings an attacker may execute in (the serving caller bracket is
#: [1, 5]; ring 1 is excluded so every attacker has rings below it)
MIN_ATTACK_RING = 2
MAX_ATTACK_RING = 5

#: default corpus seed — the paper's year
DEFAULT_SEED = 1971

#: attacker warmup-loop bounds: long enough that the warmup block is
#: dispatched past the superblock and trace-tier hot thresholds, short
#: enough that a corpus sweep stays fast
MIN_WARMUP = 24
MAX_WARMUP = 96

Segment = Tuple[str, str, Tuple[AclEntry, ...]]
DataSegment = Tuple[str, Tuple[int, ...], Tuple[AclEntry, ...]]


@dataclass(frozen=True)
class AttackProgram:
    """One corpus entry: the attack plus its expected-fault oracle."""

    name: str
    family: str
    seed: int
    #: ring the attacker executes in
    ring: int
    segments: Tuple[Segment, ...]
    data_segments: Tuple[DataSegment, ...]
    #: ``segment$symbol`` to run
    entry: str
    expect_code: FaultCode
    expect_class: FaultClass
    #: expected validation ring at the fault (``Fault.ring``), or None
    #: when the faulting path does not define one (e.g. privilege)
    expect_ring: Optional[int]
    #: expected name of the segment the fault targets, or None when the
    #: target is supervisor-private (the software return gate)
    expect_segment: Optional[str]
    description: str
    warmup: int
    #: hardening flag (repro.hardening.HARDENING_FLAGS) this attack is
    #: defeated by, or None for the classic families the 1971 brackets
    #: already stop
    hardening: Optional[str] = None
    #: (segment name, domain name) assignments the machine must carry
    #: for this attack (ring_domains families)
    domains: Tuple[Tuple[str, str], ...] = ()
    #: what the attack does when its hardening flag is off: "halts"
    #: (the attack runs to completion) — classic families fault instead
    unhardened_outcome: str = "faults"

    def program_words(self) -> int:
        """Total assembled words across all segments (for ``dump``)."""
        from ..asm import assemble

        total = sum(
            len(assemble(source, name=_segname(path)).words)
            for path, source, _ in self.segments
        )
        total += sum(len(values) for _, values, _ in self.data_segments)
        return total

    def summary(self) -> Dict[str, object]:
        """The JSON shape of ``repro adversary dump``."""
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "ring": self.ring,
            "expect_code": self.expect_code.name,
            "expect_class": self.expect_class.name,
            "expect_ring": self.expect_ring,
            "expect_segment": self.expect_segment,
            "program_words": self.program_words(),
            "warmup": self.warmup,
            "description": self.description,
            "hardening": self.hardening,
            "domains": [list(pair) for pair in self.domains],
            "unhardened_outcome": self.unhardened_outcome,
        }


def _segname(path: str) -> str:
    return path.split(">")[-1]


def _attacker_acl() -> Tuple[AclEntry, ...]:
    """Attacker code executes in rings [1, 5], like serving callers."""
    return (AclEntry("*", RingBracketSpec.procedure(1, top=MAX_ATTACK_RING)),)


def _attacker_source(name: str, warmup: int, body: str) -> str:
    """The common shape: seeded warmup loop, then the attack body."""
    return f"""
        .seg    {name}
main::  lda     ={warmup}
warm:   sba     =1
        tnz     warm
{body}
"""


class _Draw:
    """The seeded parameter draws, in a fixed order.

    Every builder consumes the same prefix of the stream (warmup first,
    attacker ring second) so the drawn attacker ring can be overridden
    by an explicit ``ring`` argument without shifting later draws.
    """

    def __init__(self, family: str, seed: int, ring: Optional[int]):
        self.rng = random.Random(f"{family}:{seed}")
        self.warmup = self.rng.randrange(MIN_WARMUP, MAX_WARMUP + 1)
        drawn = self.rng.randrange(MIN_ATTACK_RING, MAX_ATTACK_RING + 1)
        self.ring = drawn if ring is None else ring

    def below(self, upper: int, low: int = 0) -> int:
        """A ring strictly below ``upper`` (victim brackets)."""
        return self.rng.randrange(low, upper)

    def at_or_below(self, upper: int, low: int = 0) -> int:
        return self.rng.randrange(low, upper + 1)

    def above(self, lower: int, high: int = 7) -> int:
        """A ring strictly above ``lower`` (poison rings, sandboxes)."""
        return self.rng.randrange(lower + 1, high + 1)

    def value(self) -> int:
        return self.rng.randrange(1, 4096)


def _names(code: str, seed: int, ring: int) -> Tuple[str, str, str]:
    base = f"{code}{seed}r{ring}"
    return f"atk_{base}", f"vic_{base}", base


def _entry(
    draw: _Draw,
    code: str,
    family: str,
    seed: int,
    body: str,
    expect_code: FaultCode,
    expect_ring: Optional[int],
    expect_segment: Optional[str],
    description: str,
    extra_segments: Tuple[Segment, ...] = (),
    data_segments: Tuple[DataSegment, ...] = (),
    hardening: Optional[str] = None,
    domains: Tuple[Tuple[str, str], ...] = (),
    unhardened_outcome: str = "faults",
) -> AttackProgram:
    atk, _, base = _names(code, seed, draw.ring)
    source = _attacker_source(atk, draw.warmup, body)
    return AttackProgram(
        name=base,
        family=family,
        seed=seed,
        ring=draw.ring,
        segments=((f">adv>{atk}", source, _attacker_acl()),) + extra_segments,
        data_segments=data_segments,
        entry=f"{atk}$main",
        expect_code=expect_code,
        expect_class=expect_code.fclass,
        expect_ring=expect_ring,
        expect_segment=expect_segment,
        description=description,
        warmup=draw.warmup,
        hardening=hardening,
        domains=domains,
        unhardened_outcome=unhardened_outcome,
    )


# ---------------------------------------------------------------------------
# family builders
# ---------------------------------------------------------------------------


def _read_bracket(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("read_bracket", seed, ring)
    _, vic, _ = _names("rb", seed, draw.ring)
    victim_ring = draw.below(draw.ring)
    secret = draw.value()
    body = f"""        lda     l_sec,*
        halt
l_sec:  .its    {vic}
"""
    return _entry(
        draw,
        "rb",
        "read_bracket",
        seed,
        body,
        FaultCode.ACV_READ_BRACKET,
        draw.ring,
        vic,
        f"ring-{draw.ring} read of data bracketed to ring {victim_ring}",
        data_segments=(
            (
                f">adv>{vic}",
                (secret,),
                (AclEntry("*", RingBracketSpec.data(victim_ring)),),
            ),
        ),
    )


def _write_bracket(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("write_bracket", seed, ring)
    _, vic, _ = _names("wb", seed, draw.ring)
    victim_ring = draw.below(draw.ring)
    value = draw.value()
    body = f"""        lda     ={value}
        sta     l_sec,*
        halt
l_sec:  .its    {vic}
"""
    return _entry(
        draw,
        "wb",
        "write_bracket",
        seed,
        body,
        FaultCode.ACV_WRITE_BRACKET,
        draw.ring,
        vic,
        f"ring-{draw.ring} write into data bracketed to ring {victim_ring}",
        data_segments=(
            (
                f">adv>{vic}",
                (0, 0),
                (AclEntry("*", RingBracketSpec.data(victim_ring)),),
            ),
        ),
    )


def _execute_only_read(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("execute_only_read", seed, ring)
    _, vic, _ = _names("xo", seed, draw.ring)
    increment = draw.value() % 512
    victim_source = f"""
        .seg    {vic}
        .gates  1
f::     als     2
        ada     ={increment}
        return  pr4|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec(
                r1=1,
                r2=MAX_ATTACK_RING,
                r3=MAX_ATTACK_RING,
                read=False,
                execute=True,
                gate=1,
            ),
        ),
    )
    body = f"""        lda     l_code,*
        halt
l_code: .its    {vic}
"""
    return _entry(
        draw,
        "xo",
        "execute_only_read",
        seed,
        body,
        FaultCode.ACV_NO_READ,
        draw.ring,
        vic,
        "read the text of an execute-only proprietary procedure",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _nongate_call(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("nongate_call", seed, ring)
    _, vic, _ = _names("ng", seed, draw.ring)
    victim_ring = draw.at_or_below(draw.ring, low=1)
    victim_source = f"""
        .seg    {vic}
entry:: return  pr4|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec.procedure(
                victim_ring, callable_from=MAX_ATTACK_RING
            ),
        ),
    )
    body = f"""        eap4    back
        call    l_t,*
back:   halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "ng",
        "nongate_call",
        seed,
        body,
        FaultCode.ACV_NOT_GATE,
        draw.ring,
        vic,
        f"CALL into a gate-less ring-{victim_ring} segment",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _gate_skip(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("gate_skip", seed, ring)
    _, vic, _ = _names("gs", seed, draw.ring)
    victim_ring = draw.at_or_below(draw.ring, low=1)
    victim_source = f"""
        .seg    {vic}
        .gates  1
entry:: return  pr4|0
back::  return  pr4|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec.procedure(
                victim_ring, callable_from=MAX_ATTACK_RING
            ),
        ),
    )
    body = f"""        eap4    back
        call    l_t,*
back:   halt
l_t:    .its    {vic}$back
"""
    return _entry(
        draw,
        "gs",
        "gate_skip",
        seed,
        body,
        FaultCode.ACV_NOT_GATE,
        draw.ring,
        vic,
        "CALL a gated segment at a word past its gate list",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _gate_extension(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("gate_extension", seed, ring)
    _, vic, _ = _names("gx", seed, draw.ring)
    extension = draw.below(draw.ring)  # R3 strictly below the attacker
    victim_ring = draw.at_or_below(extension)
    victim_source = f"""
        .seg    {vic}
        .gates  1
entry:: return  pr4|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec.procedure(victim_ring, callable_from=extension),
        ),
    )
    body = f"""        eap4    back
        call    l_t,*
back:   halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "gx",
        "gate_extension",
        seed,
        body,
        FaultCode.ACV_OUTSIDE_CALL_BRACKET,
        draw.ring,
        vic,
        f"CALL a ring-{victim_ring} gate whose extension stops at "
        f"ring {extension}",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _launder_read(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("launder_read", seed, ring)
    _, vic, _ = _names("lr", seed, draw.ring)
    write_ring = draw.at_or_below(draw.ring)
    poison = draw.above(draw.ring)
    secret = draw.value()
    # readable at the attacker's own ring: only the planted RING field
    # makes the reference fault, proving the hardware raised (and never
    # lowered) the validation ring
    victim_acl = (
        AclEntry(
            "*", RingBracketSpec.data(write_ring, read_to=draw.ring)
        ),
    )
    body = f"""        lda     l_sec,*
        halt
l_sec:  .its    {vic}, {poison}
"""
    return _entry(
        draw,
        "lr",
        "launder_read",
        seed,
        body,
        FaultCode.ACV_READ_BRACKET,
        poison,
        vic,
        f"read through an indirect word ring-poisoned to {poison}; the "
        "validation ring is raised, never lowered",
        data_segments=((f">adv>{vic}", (secret,), victim_acl),),
    )


def _launder_call(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("launder_call", seed, ring)
    _, vic, _ = _names("lc", seed, draw.ring)
    victim_ring = draw.at_or_below(draw.ring, low=1)
    poison = draw.above(draw.ring)
    victim_source = f"""
        .seg    {vic}
        .gates  1
entry:: return  pr4|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec.procedure(victim_ring, callable_from=7),
        ),
    )
    body = f"""        eap4    back
        call    l_t,*
back:   halt
l_t:    .its    {vic}$entry, {poison}
"""
    return _entry(
        draw,
        "lc",
        "launder_call",
        seed,
        body,
        FaultCode.ACV_RING_RAISED,
        poison,
        vic,
        "CALL through a ring-poisoned link word (raised effective ring "
        "is an access violation on CALL, p. 30)",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _launder_transfer(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("launder_transfer", seed, ring)
    atk, _, _ = _names("lt", seed, draw.ring)
    poison = draw.above(draw.ring)
    body = f"""        tra     l_t,*
        halt
l_t:    .ptr    main, {poison}
"""
    return _entry(
        draw,
        "lt",
        "launder_transfer",
        seed,
        body,
        FaultCode.ACV_TRANSFER_RING,
        poison,
        atk,
        "plain transfer through a ring-poisoned pointer (plain "
        "transfers may not change the ring)",
    )


def _exec_bracket_tra(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("exec_bracket_tra", seed, ring)
    _, vic, _ = _names("xt", seed, draw.ring)
    victim_ring = draw.below(draw.ring)
    victim_source = f"""
        .seg    {vic}
entry:: halt
"""
    victim_acl = (
        AclEntry("*", RingBracketSpec.procedure(victim_ring)),
    )
    body = f"""        tra     l_t,*
        halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "xt",
        "exec_bracket_tra",
        seed,
        body,
        FaultCode.ACV_EXECUTE_BRACKET,
        draw.ring,
        vic,
        f"plain transfer into a procedure executable only in ring "
        f"{victim_ring}",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _exec_data(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("exec_data", seed, ring)
    _, vic, _ = _names("xd", seed, draw.ring)
    victim_acl = (
        AclEntry("*", RingBracketSpec.data(MAX_ATTACK_RING)),
    )
    body = f"""        tra     l_t,*
        halt
l_t:    .its    {vic}
"""
    return _entry(
        draw,
        "xd",
        "exec_data",
        seed,
        body,
        FaultCode.ACV_NO_EXECUTE,
        draw.ring,
        vic,
        "transfer into a pure data segment (execute flag off)",
        data_segments=(
            (f">adv>{vic}", (draw.value(), draw.value()), victim_acl),
        ),
    )


def _return_forge_down(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("return_forge_down", seed, ring)
    _, vic, _ = _names("rf", seed, draw.ring)
    victim_ring = draw.below(draw.ring)
    victim_source = f"""
        .seg    {vic}
entry:: halt
"""
    victim_acl = (
        AclEntry("*", RingBracketSpec.procedure(victim_ring)),
    )
    body = f"""        eap4    l_t,*
        return  pr4|0
        halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "rf",
        "return_forge_down",
        seed,
        body,
        FaultCode.ACV_EXECUTE_BRACKET,
        draw.ring,
        vic,
        f"forged RETURN into ring-{victim_ring} code with no matching "
        "call (refused by the Figure 9 advance check)",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _return_forge_gate(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("return_forge_gate", seed, ring)
    _, vic, _ = _names("rg", seed, draw.ring)
    sandbox = draw.above(draw.ring, high=6)
    victim_source = f"""
        .seg    {vic}
        .gates  1
evil::  eap4    pr4|1
        return  pr4|0
"""
    victim_acl = (
        AclEntry("*", RingBracketSpec.procedure(sandbox)),
    )
    body = f"""        eap4    back
        call    l_t,*
back:   halt
l_t:    .its    {vic}$evil
"""
    return _entry(
        draw,
        "rg",
        "return_forge_gate",
        seed,
        body,
        FaultCode.ACV_NO_EXECUTE,
        sandbox,
        None,  # the software return gate is supervisor-private
        f"upward call into ring {sandbox}, then RETURN through a "
        "tampered return-gate slot (PACStack's forged upward return)",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
    )


def _privileged(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("privileged", seed, ring)
    body = """        cioc    =1
        halt
"""
    return _entry(
        draw,
        "pv",
        "privileged",
        seed,
        body,
        FaultCode.ACV_PRIVILEGED,
        None,
        None,
        f"privileged instruction (CIOC) executed in ring {draw.ring}",
    )


def _bounds(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("bounds", seed, ring)
    _, vic, _ = _names("ob", seed, draw.ring)
    length = 2 + draw.value() % 6
    offset = 2048 + draw.value()
    victim_acl = (
        AclEntry("*", RingBracketSpec.data(MAX_ATTACK_RING)),
    )
    body = f"""        eap1    l_v,*
        lda     pr1|{offset}
        halt
l_v:    .its    {vic}
"""
    return _entry(
        draw,
        "ob",
        "bounds",
        seed,
        body,
        FaultCode.ACV_OUT_OF_BOUNDS,
        draw.ring,
        vic,
        f"read word {offset} of a {length}-word segment",
        data_segments=(
            (f">adv>{vic}", tuple(range(1, length + 1)), victim_acl),
        ),
    )


def _auth_return_forge(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("auth_return_forge", seed, ring)
    atk, vic, _ = _names("ar", seed, draw.ring)
    victim_ring = draw.below(draw.ring, low=1)
    # The victim returns through PR1 — a register the *caller* loaded.
    # Bracket-wise this is a perfectly legal upward return; only the MAC
    # chain knows the caller's PR4 said ``back``, not ``win``.
    victim_source = f"""
        .seg    {vic}
        .gates  1
entry:: return  pr1|0
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec.procedure(
                victim_ring, callable_from=MAX_ATTACK_RING
            ),
        ),
    )
    body = f"""        eap1    win
        eap4    back
        call    l_t,*
back:   halt
win:    lda     =9
        halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "ar",
        "auth_return_forge",
        seed,
        body,
        FaultCode.ACV_AUTH_RETURN,
        draw.ring,
        atk,  # the forged target is the attacker's own segment
        f"downward call into ring {victim_ring} whose return is steered "
        "through an attacker-loaded pointer register; brackets allow the "
        "hijacked upward return, the MAC chain does not",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
        hardening="auth_return_stack",
        unhardened_outcome="halts",
    )


def _domain_breach(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("domain_breach", seed, ring)
    _, vic, _ = _names("db", seed, draw.ring)
    secret = draw.value()
    # Bracket-legal on purpose: the vault is readable from every attack
    # ring, so the 1971 machine has no objection.  Only the domain wall
    # between common code and the ``vault`` domain stops the read.
    victim_acl = (
        AclEntry("*", RingBracketSpec.data(MAX_ATTACK_RING)),
    )
    body = f"""        lda     l_v,*
        halt
l_v:    .its    {vic}
"""
    return _entry(
        draw,
        "db",
        "domain_breach",
        seed,
        body,
        FaultCode.ACV_DOMAIN,
        draw.ring,
        vic,
        f"common (undomained) ring-{draw.ring} code reads a segment "
        "assigned to the 'vault' domain; the read bracket permits it",
        data_segments=((f">adv>{vic}", (secret,), victim_acl),),
        hardening="ring_domains",
        domains=((vic, "vault"),),
        unhardened_outcome="halts",
    )


def _wx_execute(seed: int, ring: Optional[int]) -> AttackProgram:
    draw = _Draw("wx_execute", seed, ring)
    _, vic, _ = _names("wx", seed, draw.ring)
    # A writable-and-executable grant: legal under the 1971 access
    # model, which treats the flags independently.
    victim_source = f"""
        .seg    {vic}
entry:: halt
"""
    victim_acl = (
        AclEntry(
            "*",
            RingBracketSpec(
                r1=1,
                r2=MAX_ATTACK_RING,
                r3=MAX_ATTACK_RING,
                read=True,
                write=True,
                execute=True,
            ),
        ),
    )
    body = f"""        tra     l_t,*
        halt
l_t:    .its    {vic}$entry
"""
    return _entry(
        draw,
        "wx",
        "wx_execute",
        seed,
        body,
        FaultCode.ACV_NX,
        draw.ring,
        vic,
        "transfer into a segment whose ACL grants both write and "
        "execute; the brackets line up, the NX rule does not",
        extra_segments=((f">adv>{vic}", victim_source, victim_acl),),
        hardening="nx_brackets",
        unhardened_outcome="halts",
    )


#: family name -> builder(seed, ring) — iteration order is the corpus
#: order and is part of the reproducibility contract
ATTACK_FAMILIES: Dict[
    str, Callable[[int, Optional[int]], AttackProgram]
] = {
    "read_bracket": _read_bracket,
    "write_bracket": _write_bracket,
    "execute_only_read": _execute_only_read,
    "nongate_call": _nongate_call,
    "gate_skip": _gate_skip,
    "gate_extension": _gate_extension,
    "launder_read": _launder_read,
    "launder_call": _launder_call,
    "launder_transfer": _launder_transfer,
    "exec_bracket_tra": _exec_bracket_tra,
    "exec_data": _exec_data,
    "return_forge_down": _return_forge_down,
    "return_forge_gate": _return_forge_gate,
    "privileged": _privileged,
    "bounds": _bounds,
    "auth_return_forge": _auth_return_forge,
    "domain_breach": _domain_breach,
    "wx_execute": _wx_execute,
}

#: the hardening ablation probes: family -> the machine flag that
#: defeats it.  Everything else in ATTACK_FAMILIES is defeated by the
#: plain 1971 machine.
HARDENED_FAMILIES: Dict[str, str] = {
    "auth_return_forge": "auth_return_stack",
    "domain_breach": "ring_domains",
    "wx_execute": "nx_brackets",
}


def build_attack(
    family: str, seed: int, ring: Optional[int] = None
) -> AttackProgram:
    """One deterministic corpus entry.

    ``ring`` overrides the drawn attacker ring (the serving catalog
    passes the session ring); it must lie in
    ``[MIN_ATTACK_RING, MAX_ATTACK_RING]``.
    """
    try:
        builder = ATTACK_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack family {family!r}; expected one of "
            f"{sorted(ATTACK_FAMILIES)}"
        ) from None
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ConfigurationError("attack seed must be a non-negative integer")
    if ring is not None and not (
        MIN_ATTACK_RING <= ring <= MAX_ATTACK_RING
    ):
        raise ConfigurationError(
            f"attacker ring must be in [{MIN_ATTACK_RING}, "
            f"{MAX_ATTACK_RING}], got {ring}"
        )
    return builder(seed, ring)


def generate_corpus(
    seed: int = DEFAULT_SEED,
    per_family: int = 2,
    families: Optional[Tuple[str, ...]] = None,
    ring: Optional[int] = None,
) -> Tuple[AttackProgram, ...]:
    """The corpus: ``per_family`` seeded variants of each family."""
    if per_family <= 0:
        raise ConfigurationError("per_family must be positive")
    selected = tuple(families) if families else tuple(ATTACK_FAMILIES)
    for family in selected:
        if family not in ATTACK_FAMILIES:
            raise ConfigurationError(
                f"unknown attack family {family!r}; expected one of "
                f"{sorted(ATTACK_FAMILIES)}"
            )
    return tuple(
        build_attack(family, seed + index, ring)
        for family in selected
        for index in range(per_family)
    )
