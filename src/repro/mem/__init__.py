"""The segmented-memory substrate.

* :mod:`repro.mem.physical` — word-addressed physical memory with a
  first-fit allocator and access counters;
* :mod:`repro.mem.segment` — host-side segment images (the unit the
  assembler emits and the file system stores);
* :mod:`repro.mem.descriptor` — descriptor segments resident in physical
  memory, addressed through the DBR, holding packed SDW pairs;
* :mod:`repro.mem.paging` — optional transparent paging (page tables in
  memory, present bits, missing-page detection).

Nothing in this package knows about rings; it provides the addressing
fabric the ring hardware is grafted onto, exactly as the paper's
"Segmented Virtual Memory Environment" section separates the two.
"""

from .physical import PhysicalMemory, Allocation
from .segment import SegmentImage
from .descriptor import DBR, DescriptorSegment
from .paging import PAGE_BITS, PAGE_WORDS, PageTable, PageFaultSignal, translate_paged

__all__ = [
    "PhysicalMemory",
    "Allocation",
    "SegmentImage",
    "DBR",
    "DescriptorSegment",
    "PAGE_BITS",
    "PAGE_WORDS",
    "PageTable",
    "PageFaultSignal",
    "translate_paged",
]
