"""Host-side segment images.

A :class:`SegmentImage` is the unit of information exchanged between the
assembler, the file system, and the loader: a named array of words plus
the access metadata (gate count, entry symbols, relocation requests)
that travels with it.  It is *not* machine state — once loaded, a
segment lives in :class:`repro.mem.physical.PhysicalMemory` and is
described by an SDW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SegmentBoundsError
from ..words import HALF_MASK, WORD_MASK


@dataclass
class LinkRequest:
    """One unresolved inter-segment reference inside a segment image.

    ``wordno`` is the word to patch, ``symbol`` is ``"segname$entry"`` or
    just ``"segname"``; ``field`` selects which part of the word receives
    the resolved value (``"offset"`` for instruction words, ``"pointer"``
    for full indirect words whose SEGNO/WORDNO are patched).
    """

    wordno: int
    symbol: str
    field: str = "offset"
    ring: Optional[int] = None


@dataclass
class SegmentImage:
    """A named array of words plus loader metadata."""

    name: str
    words: List[int] = field(default_factory=list)
    #: number of gate locations (words 0 .. gate_count-1 are gates)
    gate_count: int = 0
    #: exported entry symbols -> word number
    entries: Dict[str, int] = field(default_factory=dict)
    #: unresolved references for the loader
    links: List[LinkRequest] = field(default_factory=list)
    #: source line per word, for listings and traces
    source_map: Dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.words)

    @property
    def bound(self) -> int:
        """The BOUND value the SDW for this image needs."""
        return len(self.words)

    def word(self, wordno: int) -> int:
        """Read one word of the image."""
        if not 0 <= wordno < len(self.words):
            raise SegmentBoundsError(
                f"word {wordno} outside segment {self.name!r} of {len(self.words)}"
            )
        return self.words[wordno]

    def set_word(self, wordno: int, value: int) -> None:
        """Patch one word of the image (loader relocation)."""
        if not 0 <= wordno < len(self.words):
            raise SegmentBoundsError(
                f"word {wordno} outside segment {self.name!r} of {len(self.words)}"
            )
        self.words[wordno] = value & WORD_MASK

    def patch_offset(self, wordno: int, offset: int) -> None:
        """Replace the 18-bit OFFSET field of an instruction word."""
        word = self.word(wordno)
        self.set_word(wordno, (word & ~HALF_MASK) | (offset & HALF_MASK))

    def entry(self, symbol: str) -> int:
        """Word number of an exported entry point."""
        try:
            return self.entries[symbol]
        except KeyError:
            raise SegmentBoundsError(
                f"segment {self.name!r} exports no entry {symbol!r} "
                f"(has {sorted(self.entries)})"
            ) from None

    def gates(self) -> List[Tuple[str, int]]:
        """The (symbol, wordno) pairs that are gate locations."""
        return sorted(
            ((sym, w) for sym, w in self.entries.items() if w < self.gate_count),
            key=lambda item: item[1],
        )

    @classmethod
    def zeros(cls, name: str, size: int) -> "SegmentImage":
        """A fresh all-zero data segment of ``size`` words."""
        return cls(name=name, words=[0] * size)

    @classmethod
    def from_values(cls, name: str, values: List[int]) -> "SegmentImage":
        """A data segment initialised from host integers (truncated)."""
        return cls(name=name, words=[v & WORD_MASK for v in values])
