"""Descriptor segments and the descriptor base register.

A descriptor segment is an array of packed SDW pairs living in physical
memory; segment number ``s`` names the pair at words ``2s`` and
``2s + 1``.  The :class:`DBR` locates one descriptor segment; changing
the DBR switches the processor to a different virtual memory — that is
how per-process address spaces are realised (paper p. 7).

The class here is the *supervisor's* handle on a descriptor segment: it
reads and writes SDWs through physical memory so that hardware and
software see the identical bits.  The processor's address-translation
path performs its own SDW fetches (with cycle charging and caching); it
shares only the layout, via :mod:`repro.formats.sdw`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..errors import ConfigurationError, SegmentBoundsError
from ..formats.sdw import SDW, SDW_WORDS
from ..words import Field, Layout, SEGNO_MASK, check_field
from .physical import PhysicalMemory

#: Memory image of a DBR value (two words), as consumed by LDBR.
DBR_W0 = Layout("DBR.word0", [Field("ADDR", 0, 24), Field("SPARE", 24, 12)])
DBR_W1 = Layout(
    "DBR.word1",
    [Field("BOUND", 0, 14), Field("STACK", 14, 14), Field("SPARE", 28, 8)],
)


@dataclass
class DBR:
    """Descriptor base register.

    ``addr``   — absolute address of word 0 of the descriptor segment;
    ``bound``  — number of SDWs (i.e. of describable segments);
    ``stack``  — base segment number of the per-ring stack segments: the
    stack segment for ring ``n`` is ``stack + n`` (the refined selection
    rule of the paper's p. 30 footnote).  With ``stack = 0`` the rule
    degenerates to the simple "stack segno = ring number" rule of the
    body text.
    """

    addr: int = 0
    bound: int = 0
    stack: int = 0

    def __post_init__(self) -> None:
        check_field("DBR.ADDR", self.addr, 24)
        check_field("DBR.BOUND", self.bound, 14)
        check_field("DBR.STACK", self.stack, 14)

    def sdw_addr(self, segno: int) -> int:
        """Absolute address of the SDW pair for ``segno``."""
        return self.addr + SDW_WORDS * segno

    def stack_segno(self, ring: int) -> int:
        """Stack segment number for ``ring`` under the DBR rule."""
        return (self.stack + ring) & SEGNO_MASK

    def pack(self) -> Tuple[int, int]:
        """Encode into the two-word image LDBR consumes."""
        return (
            DBR_W0.pack(ADDR=self.addr),
            DBR_W1.pack(BOUND=self.bound, STACK=self.stack),
        )

    @classmethod
    def unpack(cls, w0: int, w1: int) -> "DBR":
        """Decode a two-word memory image."""
        return cls(
            addr=DBR_W0["ADDR"].extract(w0),
            bound=DBR_W1["BOUND"].extract(w1),
            stack=DBR_W1["STACK"].extract(w1),
        )


class DescriptorSegment:
    """Supervisor-side manager of one descriptor segment in memory."""

    def __init__(self, memory: PhysicalMemory, addr: int, bound: int):
        if bound < 0 or bound > SEGNO_MASK + 1:
            raise ConfigurationError(f"descriptor bound {bound} out of range")
        self.memory = memory
        self.addr = addr
        self.bound = bound

    @classmethod
    def allocate(
        cls, memory: PhysicalMemory, bound: int, stack: int = 0
    ) -> Tuple["DescriptorSegment", DBR]:
        """Allocate a descriptor segment and return it with a matching DBR.

        Every SDW starts out missing (present bit clear) so that the very
        first reference to an uninitiated segment traps, which is how the
        supervisor learns it must consult the file system.
        """
        block = memory.allocate(bound * SDW_WORDS)
        dseg = cls(memory, block.addr, bound)
        missing = SDW.missing().pack()
        for segno in range(bound):
            a = dseg.sdw_word_addr(segno)
            memory.load_image(a, list(missing))
        return dseg, DBR(addr=block.addr, bound=bound, stack=stack)

    def sdw_word_addr(self, segno: int) -> int:
        """Absolute address of the first word of the SDW pair for ``segno``."""
        if not 0 <= segno < self.bound:
            raise SegmentBoundsError(
                f"segment number {segno} outside descriptor bound {self.bound}"
            )
        return self.addr + SDW_WORDS * segno

    def get(self, segno: int) -> SDW:
        """Read the SDW for ``segno`` (uncharged supervisor access)."""
        a = self.sdw_word_addr(segno)
        w0, w1 = self.memory.peek_block(a, SDW_WORDS)
        return SDW.unpack(w0, w1)

    def set(self, segno: int, sdw: SDW) -> None:
        """Write the SDW for ``segno``.

        Changing constraints in the SDW is "immediately effective"
        (paper p. 9) — the processor consults memory (or a cache the
        supervisor explicitly invalidates) on every reference.
        """
        a = self.sdw_word_addr(segno)
        w0, w1 = sdw.pack()
        self.memory.load_image(a, [w0, w1])

    def clear(self, segno: int) -> None:
        """Mark ``segno`` missing (terminate the segment)."""
        self.set(segno, SDW.missing())

    def find_free(self, start: int = 0) -> Optional[int]:
        """Lowest segment number at or after ``start`` that is missing."""
        for segno in range(start, self.bound):
            if not self.get(segno).present:
                return segno
        return None

    def present_segments(self) -> Iterator[Tuple[int, SDW]]:
        """Iterate ``(segno, sdw)`` for every present segment."""
        for segno in range(self.bound):
            sdw = self.get(segno)
            if sdw.present:
                yield segno, sdw
