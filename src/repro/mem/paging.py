"""Transparent paging.

The paper sets paging aside: "Paging, if appropriately implemented, need
not affect access control" (p. 7).  We implement it anyway — precisely
to *demonstrate* that claim: with ``SDW.PAGED`` set, ``SDW.ADDR`` points
at a page table instead of the segment body, and address translation
gains one more memory reference per access, but every access-control
decision is untouched (they all happen before translation reaches the
page level).  An ablation benchmark measures the cost.

Page table words (PTWs) are one word each:

======  ====  ====================================================
field   bits  meaning
======  ====  ====================================================
ADDR    24    absolute address of word 0 of the page frame
F       1     present bit — 0 traps to the supervisor (missing page)
======  ====  ====================================================
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..words import Field, Layout
from .physical import PhysicalMemory

#: log2 of the page size.
PAGE_BITS = 6

#: Words per page.
PAGE_WORDS = 1 << PAGE_BITS

#: Layout of a page table word.
PTW = Layout(
    "PTW",
    [
        Field("ADDR", 0, 24),
        Field("F", 24, 1),
        Field("SPARE", 25, 11),
    ],
)


class PageFaultSignal(Exception):
    """Host-side control-flow signal: a referenced page is missing.

    The CPU's translation path converts this into a simulated
    missing-page trap; it is never surfaced to client code.
    """

    def __init__(self, page_index: int):
        self.page_index = page_index
        super().__init__(f"missing page {page_index}")


def pages_for(bound: int) -> int:
    """Number of pages needed for a segment of ``bound`` words."""
    return (bound + PAGE_WORDS - 1) >> PAGE_BITS


def translate_paged(memory: PhysicalMemory, table_addr: int, wordno: int) -> int:
    """Translate ``wordno`` through the page table at ``table_addr``.

    Performs one charged memory read (the PTW fetch).  Raises
    :class:`PageFaultSignal` when the page is missing.
    """
    page_index = wordno >> PAGE_BITS
    ptw = memory.read(table_addr + page_index)
    if not PTW["F"].extract(ptw):
        raise PageFaultSignal(page_index)
    frame = PTW["ADDR"].extract(ptw)
    return frame + (wordno & (PAGE_WORDS - 1))


class PageTable:
    """Supervisor-side builder/manager of one page table in memory."""

    def __init__(self, memory: PhysicalMemory, addr: int, npages: int):
        self.memory = memory
        self.addr = addr
        self.npages = npages
        self._frames: List[int] = [-1] * npages

    @classmethod
    def build(cls, memory: PhysicalMemory, bound: int) -> "PageTable":
        """Allocate a page table *and* frames for a ``bound``-word segment."""
        npages = max(1, pages_for(bound))
        table = memory.allocate(npages)
        pt = cls(memory, table.addr, npages)
        for index in range(npages):
            frame = memory.allocate(PAGE_WORDS)
            pt.map_page(index, frame.addr)
        return pt

    def map_page(self, index: int, frame_addr: int) -> None:
        """Install a present PTW for page ``index``."""
        if not 0 <= index < self.npages:
            raise ConfigurationError(f"page index {index} outside table")
        self._frames[index] = frame_addr
        self.memory.load_image(
            self.addr + index, [PTW.pack(ADDR=frame_addr, F=1)]
        )

    def unmap_page(self, index: int) -> None:
        """Mark page ``index`` missing (references will trap)."""
        if not 0 <= index < self.npages:
            raise ConfigurationError(f"page index {index} outside table")
        self._frames[index] = -1
        self.memory.load_image(self.addr + index, [PTW.pack(ADDR=0, F=0)])

    def load_words(self, words: List[int]) -> None:
        """Scatter a segment image across the mapped frames."""
        for start in range(0, len(words), PAGE_WORDS):
            index = start >> PAGE_BITS
            frame = self._frames[index]
            if frame < 0:
                raise ConfigurationError(f"page {index} not mapped")
            chunk = words[start : start + PAGE_WORDS]
            self.memory.load_image(frame, chunk)

    def read_word(self, wordno: int) -> int:
        """Uncharged supervisor read through the table (verification)."""
        index = wordno >> PAGE_BITS
        frame = self._frames[index]
        if frame < 0:
            raise PageFaultSignal(index)
        return self.memory.peek_block(frame + (wordno & (PAGE_WORDS - 1)), 1)[0]
