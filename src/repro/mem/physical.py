"""Word-addressed physical memory.

The store behind every simulated segment, page table, and descriptor
segment.  Addresses are absolute word numbers in ``[0, size)``.  The
class keeps read/write counters that the cost model and benchmarks use.

A small first-fit allocator is included so the supervisor can place
segments; it is deliberately simple — allocation policy is not part of
the paper — but it does support freeing, coalescing, and an occupancy
report, because several tests and the paging ablation need to create and
destroy many segments.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError, SegmentBoundsError
from ..words import WORD_MASK


@dataclass(frozen=True)
class Allocation:
    """A block of physical memory handed out by the allocator."""

    addr: int
    size: int

    @property
    def end(self) -> int:
        """One past the last word of the block."""
        return self.addr + self.size


class PhysicalMemory:
    """A flat array of 36-bit words with an allocator and counters."""

    def __init__(self, size: int = 1 << 18):
        if size <= 0 or size > (1 << 24):
            raise ConfigurationError(
                f"physical memory size must be in (0, 2**24], got {size}"
            )
        self.size = size
        self._words: List[int] = [0] * size
        #: free list of (addr, size) holes, kept sorted by address
        self._holes: List[Tuple[int, int]] = [(0, size)]
        self.reads = 0
        self.writes = 0

    # -- raw word access ----------------------------------------------------

    def read(self, addr: int) -> int:
        """Read one word at absolute address ``addr``."""
        if not 0 <= addr < self.size:
            raise SegmentBoundsError(
                f"physical read at {addr:#o} outside memory of {self.size} words"
            )
        self.reads += 1
        return self._words[addr]

    def write(self, addr: int, value: int) -> None:
        """Write one word at absolute address ``addr`` (value truncated)."""
        if not 0 <= addr < self.size:
            raise SegmentBoundsError(
                f"physical write at {addr:#o} outside memory of {self.size} words"
            )
        self.writes += 1
        self._words[addr] = value & WORD_MASK

    def read_block(self, addr: int, count: int) -> List[int]:
        """Read ``count`` consecutive words (counted as ``count`` reads)."""
        if count < 0 or addr < 0 or addr + count > self.size:
            raise SegmentBoundsError(
                f"physical block read [{addr:#o}, +{count}) outside memory"
            )
        self.reads += count
        return self._words[addr : addr + count]

    def write_block(self, addr: int, values: List[int]) -> None:
        """Write consecutive words (counted as ``len(values)`` writes)."""
        count = len(values)
        if addr < 0 or addr + count > self.size:
            raise SegmentBoundsError(
                f"physical block write [{addr:#o}, +{count}) outside memory"
            )
        self.writes += count
        self._words[addr : addr + count] = [v & WORD_MASK for v in values]

    # -- allocation -----------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """First-fit allocate ``size`` words; raises when memory is exhausted.

        Zero-word segments are legal in the architecture (BOUND = 0); they
        receive a distinct zero-length allocation at the current first hole
        so their SDW.ADDR is still a valid address.
        """
        if size < 0:
            raise ConfigurationError(f"cannot allocate {size} words")
        for index, (addr, hole) in enumerate(self._holes):
            if hole >= size:
                if hole == size and size > 0:
                    del self._holes[index]
                else:
                    self._holes[index] = (addr + size, hole - size)
                return Allocation(addr=addr, size=size)
        raise ConfigurationError(
            f"out of physical memory allocating {size} words "
            f"({self.free_words()} free in {len(self._holes)} holes)"
        )

    def free(self, allocation: Allocation) -> None:
        """Return a block to the free list, coalescing neighbours."""
        if allocation.size == 0:
            return
        addr, size = allocation.addr, allocation.size
        self._holes.append((addr, size))
        self._holes.sort()
        merged: List[Tuple[int, int]] = []
        for haddr, hsize in self._holes:
            if merged and merged[-1][0] + merged[-1][1] == haddr:
                merged[-1] = (merged[-1][0], merged[-1][1] + hsize)
            else:
                merged.append((haddr, hsize))
        self._holes = merged

    def free_words(self) -> int:
        """Total words currently unallocated."""
        return sum(size for _, size in self._holes)

    def occupancy(self) -> float:
        """Fraction of memory allocated, for reports."""
        return 1.0 - self.free_words() / self.size

    # -- bulk helpers ---------------------------------------------------------

    def load_image(self, addr: int, words: List[int]) -> None:
        """Place a segment image into memory without counting traffic.

        Used by the loader when it models a DMA-style transfer from
        backing store; the cost model charges for that separately.
        """
        if addr < 0 or addr + len(words) > self.size:
            raise SegmentBoundsError(
                f"image load [{addr:#o}, +{len(words)}) outside memory"
            )
        self._words[addr : addr + len(words)] = [w & WORD_MASK for w in words]

    def peek_block(self, addr: int, count: int) -> List[int]:
        """Copy words out without counting traffic (debug/verification)."""
        if addr < 0 or count < 0 or addr + count > self.size:
            raise SegmentBoundsError(
                f"peek [{addr:#o}, +{count}) outside memory"
            )
        return list(self._words[addr : addr + count])

    def snapshot(self, addr: int, count: int) -> List[int]:
        """Deprecated alias of :meth:`peek_block`.

        "Snapshot" now unambiguously refers to the durability subsystem
        (:mod:`repro.state.snapshot`); this name is kept one release for
        out-of-tree callers.
        """
        warnings.warn(
            "PhysicalMemory.snapshot is deprecated; use peek_block",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.peek_block(addr, count)

    def reset_counters(self) -> None:
        """Zero the read/write counters (benchmark hygiene)."""
        self.reads = 0
        self.writes = 0
