"""36-bit word model and bit-field helpers.

The simulated machine is word addressed with 36-bit words, following the
Honeywell 645/6180 family the paper targets.  A *word* is represented on the
host as a plain Python ``int`` in ``[0, 2**36)``.  This module centralises

* the word geometry constants,
* masking / sign conversion between the machine's two's-complement view and
  host integers, and
* a tiny declarative bit-field facility (:class:`Field`, :func:`pack_fields`)
  used by :mod:`repro.formats` to define the storage layouts of Figure 3.

Bit numbering follows the Multics convention: bit 0 is the most significant
bit of the word, bit 35 the least significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from .errors import FieldRangeError

#: Number of bits in a machine word.
WORD_BITS = 36

#: Mask selecting an entire machine word.
WORD_MASK = (1 << WORD_BITS) - 1

#: Largest unsigned value a word can hold.
WORD_MAX = WORD_MASK

#: Number of bits in a half-word (address/offset fields).
HALF_BITS = 18

#: Mask selecting a half-word.
HALF_MASK = (1 << HALF_BITS) - 1

#: Number of bits in a segment-number field (16384 possible segments).
SEGNO_BITS = 14

#: Mask selecting a segment-number field.
SEGNO_MASK = (1 << SEGNO_BITS) - 1

#: Number of bits in a ring-number field (rings 0..7).
RING_BITS = 3

#: Mask selecting a ring-number field.
RING_MASK = (1 << RING_BITS) - 1

#: Number of rings expressible in hardware fields.
MAX_RINGS = 1 << RING_BITS


def mask(width: int) -> int:
    """Return a mask of ``width`` low-order one bits."""
    return (1 << width) - 1


def fits(value: int, width: int) -> bool:
    """Return True when ``value`` is an unsigned ``width``-bit quantity."""
    return 0 <= value <= mask(width)


def check_field(name: str, value: int, width: int) -> int:
    """Validate that ``value`` fits in ``width`` bits, returning it.

    Raises :class:`repro.errors.FieldRangeError` otherwise.  Used at every
    API boundary where a host integer enters a hardware-format field —
    which makes it one of the hottest functions in the simulator, hence
    the branchless exact-type test up front (``bool`` is an ``int``
    subclass, so the identity test rejects it for free; other ``int``
    subclasses take the general path below).
    """
    if value.__class__ is int and 0 <= value < (1 << width):
        return value
    if not isinstance(value, int) or isinstance(value, bool):
        raise FieldRangeError(name, value, width)
    if not fits(value, width):
        raise FieldRangeError(name, value, width)
    return value


def to_word(value: int) -> int:
    """Truncate a host integer to an unsigned 36-bit word."""
    return value & WORD_MASK


def to_signed(word: int) -> int:
    """Interpret a 36-bit word as a two's-complement signed integer."""
    word &= WORD_MASK
    if word >> (WORD_BITS - 1):
        return word - (1 << WORD_BITS)
    return word


def from_signed(value: int) -> int:
    """Encode a host integer as a two's-complement 36-bit word.

    Values outside ``[-2**35, 2**35)`` wrap, mirroring hardware overflow.
    """
    return value & WORD_MASK


def add_words(a: int, b: int) -> int:
    """36-bit wrap-around addition, as the simulated ALU performs it."""
    return (a + b) & WORD_MASK


def sub_words(a: int, b: int) -> int:
    """36-bit wrap-around subtraction."""
    return (a - b) & WORD_MASK


def add_offsets(a: int, b: int) -> int:
    """18-bit wrap-around addition used for word-number arithmetic."""
    return (a + b) & HALF_MASK


@dataclass(frozen=True)
class Field:
    """One named bit field inside a 36-bit word.

    ``pos`` is the Multics-style bit position of the field's most
    significant bit (0 = word MSB); ``width`` is the field width in bits.
    """

    name: str
    pos: int
    width: int

    def __post_init__(self) -> None:
        if not (0 <= self.pos and self.pos + self.width <= WORD_BITS):
            raise FieldRangeError(self.name, self.pos, WORD_BITS)
        if self.width <= 0:
            raise FieldRangeError(self.name, self.width, WORD_BITS)

    @property
    def shift(self) -> int:
        """Host-side right-shift distance that isolates this field."""
        return WORD_BITS - self.pos - self.width

    @property
    def mask(self) -> int:
        """Mask of this field's width (unshifted)."""
        return mask(self.width)

    def extract(self, word: int) -> int:
        """Read this field out of ``word``."""
        return (word >> self.shift) & self.mask

    def insert(self, word: int, value: int) -> int:
        """Return ``word`` with this field replaced by ``value``."""
        check_field(self.name, value, self.width)
        cleared = word & ~(self.mask << self.shift)
        return cleared | (value << self.shift)


class Layout:
    """A named collection of :class:`Field` objects covering one word.

    Layouts are the single source of truth for the Figure 3 storage
    formats; both the simulator and the analysis code read them.
    """

    def __init__(self, name: str, fields: Iterable[Field]):
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.by_name: Dict[str, Field] = {f.name: f for f in self.fields}
        if len(self.by_name) != len(self.fields):
            raise FieldRangeError(name, len(self.fields), WORD_BITS)
        used = 0
        for f in self.fields:
            fmask = f.mask << f.shift
            if used & fmask:
                raise FieldRangeError(f"{name}.{f.name}", f.pos, WORD_BITS)
            used |= fmask

    def pack(self, **values: int) -> int:
        """Build a word from keyword field values (missing fields are 0)."""
        word = 0
        for key, value in values.items():
            try:
                field = self.by_name[key]
            except KeyError:
                raise FieldRangeError(f"{self.name}.{key}", value, 0) from None
            word = field.insert(word, value)
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Decompose ``word`` into a dict of all field values."""
        return {f.name: f.extract(word) for f in self.fields}

    def __getitem__(self, name: str) -> Field:
        return self.by_name[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{f.name}[{f.pos}:{f.pos + f.width}]" for f in self.fields)
        return f"Layout({self.name}: {parts})"


def octal(word: int, digits: int = 12) -> str:
    """Render a word as a zero-padded octal string (the native radix)."""
    return format(word & WORD_MASK, f"0{digits}o")
