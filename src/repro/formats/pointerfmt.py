"""Memory images of processor pointer state.

Two formats live here:

* :data:`POINTER` — the packed image of a pointer register (PR0–PR7).
  It is field-for-field identical to an indirect word with the
  further-indirection flag clear, which is exactly why the paper can say
  "indirect words contain the same information as PR's".
* :data:`IPR_FORMAT` — the packed image of the instruction pointer
  register, saved to the trap save area when a trap fires and reloaded
  by the privileged restore instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..words import Field, Layout, check_field
from .indirect import IndirectWord

#: Packed pointer-register image (identical geometry to an indirect word).
POINTER = Layout(
    "PR",
    [
        Field("SEGNO", 0, 14),
        Field("WORDNO", 14, 18),
        Field("RING", 32, 3),
        Field("SPARE", 35, 1),
    ],
)

#: Packed instruction-pointer image used in the trap save area.
IPR_FORMAT = Layout(
    "IPR",
    [
        Field("RING", 0, 3),
        Field("SEGNO", 3, 14),
        Field("WORDNO", 17, 18),
        Field("SPARE", 35, 1),
    ],
)


@dataclass(frozen=True)
class PackedPointer:
    """A pointer value in its memory representation.

    This is the value object exchanged between the CPU's pointer
    registers and memory (SPR stores one, EAP through an indirect word
    effectively loads one).
    """

    segno: int
    wordno: int
    ring: int = 0

    def __post_init__(self) -> None:
        check_field("PR.SEGNO", self.segno, 14)
        check_field("PR.WORDNO", self.wordno, 18)
        check_field("PR.RING", self.ring, 3)

    def pack(self) -> int:
        """Encode into the one-word memory image."""
        return POINTER.pack(SEGNO=self.segno, WORDNO=self.wordno, RING=self.ring)

    @classmethod
    def unpack(cls, word: int) -> "PackedPointer":
        """Decode a one-word memory image."""
        f = POINTER.unpack(word)
        return cls(segno=f["SEGNO"], wordno=f["WORDNO"], ring=f["RING"])

    def as_indirect(self, chained: bool = False) -> IndirectWord:
        """View this pointer as an indirect word (the formats coincide)."""
        return IndirectWord(
            segno=self.segno, wordno=self.wordno, ring=self.ring, indirect=chained
        )
