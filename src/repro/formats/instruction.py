"""Instruction word format (``INS`` of Figure 3).

One instruction occupies one 36-bit word:

========  ====  ========================================================
field     bits  meaning
========  ====  ========================================================
OPCODE    9     operation code (see :mod:`repro.cpu.isa`)
I         1     indirect flag — the operand address designates an
                indirect word (``INST.I`` in the paper)
PRFLAG    1     when set, OFFSET is relative to pointer register PRNUM
                (``INST.PRNUM`` addressing); when clear, OFFSET is a
                word number in the executing segment
PRNUM     3     pointer register selector, 0–7
TAG       4     address-modification tag (0 = none, 1 = immediate
                operand, 2 = index by A register low half)
OFFSET    18    offset / word number / immediate literal
========  ====  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..words import Field, Layout, check_field

#: Largest encodable opcode.
MAX_OPCODE = (1 << 9) - 1

#: Tag value for a direct (memory) operand.
TAG_NONE = 0

#: Tag value for an immediate operand (OFFSET itself is the operand).
TAG_IMMEDIATE = 1

#: Tag value for indexing: OFFSET is incremented by the low half of A.
TAG_INDEX_A = 2

#: Layout of an instruction word.
INSTRUCTION = Layout(
    "INS",
    [
        Field("OPCODE", 0, 9),
        Field("I", 9, 1),
        Field("PRFLAG", 10, 1),
        Field("PRNUM", 11, 3),
        Field("TAG", 14, 4),
        Field("OFFSET", 18, 18),
    ],
)


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction word."""

    opcode: int
    offset: int = 0
    indirect: bool = False
    prflag: bool = False
    prnum: int = 0
    tag: int = TAG_NONE

    def __post_init__(self) -> None:
        check_field("INS.OPCODE", self.opcode, 9)
        check_field("INS.OFFSET", self.offset, 18)
        check_field("INS.PRNUM", self.prnum, 3)
        check_field("INS.TAG", self.tag, 4)

    @property
    def immediate(self) -> bool:
        """True when the operand is the OFFSET field itself."""
        return self.tag == TAG_IMMEDIATE

    @property
    def indexed(self) -> bool:
        """True when OFFSET is modified by the A register before use."""
        return self.tag == TAG_INDEX_A

    def pack(self) -> int:
        """Encode into the one-word memory image."""
        return INSTRUCTION.pack(
            OPCODE=self.opcode,
            I=int(self.indirect),
            PRFLAG=int(self.prflag),
            PRNUM=self.prnum,
            TAG=self.tag,
            OFFSET=self.offset,
        )

    @classmethod
    def unpack(cls, word: int) -> "Instruction":
        """Decode a one-word memory image."""
        f = INSTRUCTION.unpack(word)
        return cls(
            opcode=f["OPCODE"],
            offset=f["OFFSET"],
            indirect=bool(f["I"]),
            prflag=bool(f["PRFLAG"]),
            prnum=f["PRNUM"],
            tag=f["TAG"],
        )
