"""Segment descriptor word (SDW) format.

An SDW occupies two consecutive words of a descriptor segment and fully
describes one segment of a virtual memory (paper, Figure 3):

========  =====  ==========================================================
field     bits   meaning
========  =====  ==========================================================
ADDR      24     absolute address of word 0 of the segment (or of its page
                 table when ``PAGED`` is set)
BOUND     18     number of words in the segment; word numbers must satisfy
                 ``wordno < BOUND``
R1,R2,R3  3 × 3  ring brackets: write bracket ``[0, R1]``, execute bracket
                 ``[R1, R2]``, read bracket ``[0, R2]``, gate extension
                 ``[R2+1, R3]``; hardware requires ``R1 <= R2 <= R3``
R,W,E     1 × 3  read / write / execute permission flags
GATE      14     number of gate locations; gates occupy words
                 ``0 .. GATE-1`` of the segment
F         1      present ("fault") bit — 0 means referencing the segment
                 traps to the supervisor (missing segment)
PAGED     1      storage for the segment is described by a page table
========  =====  ==========================================================

The double use of ``R1`` (write-bracket top *and* execute-bracket bottom)
and of ``R2`` (execute-bracket top *and* read-bracket top) follows the
paper's pp. 15–16 and 23 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import BracketOrderError
from ..words import Field, Layout, check_field

#: An SDW occupies this many consecutive words of a descriptor segment.
SDW_WORDS = 2

#: Layout of the first word of an SDW pair.
SDW_W0 = Layout(
    "SDW.word0",
    [
        Field("ADDR", 0, 24),
        Field("R1", 24, 3),
        Field("R2", 27, 3),
        Field("R3", 30, 3),
        Field("F", 33, 1),
        Field("R", 34, 1),
        Field("W", 35, 1),
    ],
)

#: Layout of the second word of an SDW pair.
SDW_W1 = Layout(
    "SDW.word1",
    [
        Field("BOUND", 0, 18),
        Field("GATE", 18, 14),
        Field("E", 32, 1),
        Field("PAGED", 33, 1),
        Field("SPARE", 34, 2),
    ],
)


@dataclass(frozen=True)
class SDW:
    """A decoded segment descriptor word pair.

    Instances are immutable; descriptor-segment updates write a fresh SDW.
    Construction validates every field width and the mandatory bracket
    ordering ``R1 <= R2 <= R3`` (the supervisor guarantee of paper p. 23;
    here it is enforced at the encoding boundary so no malformed SDW can
    ever enter simulated memory).
    """

    addr: int = 0
    bound: int = 0
    r1: int = 0
    r2: int = 0
    r3: int = 0
    read: bool = False
    write: bool = False
    execute: bool = False
    gate: int = 0
    present: bool = True
    paged: bool = False

    def __post_init__(self) -> None:
        check_field("SDW.ADDR", self.addr, 24)
        check_field("SDW.BOUND", self.bound, 18)
        check_field("SDW.R1", self.r1, 3)
        check_field("SDW.R2", self.r2, 3)
        check_field("SDW.R3", self.r3, 3)
        check_field("SDW.GATE", self.gate, 14)
        if not (self.r1 <= self.r2 <= self.r3):
            raise BracketOrderError(
                f"SDW brackets must satisfy R1 <= R2 <= R3, got "
                f"({self.r1}, {self.r2}, {self.r3})"
            )

    # -- encoding ---------------------------------------------------------

    def pack(self) -> Tuple[int, int]:
        """Encode into the two-word memory image."""
        w0 = SDW_W0.pack(
            ADDR=self.addr,
            R1=self.r1,
            R2=self.r2,
            R3=self.r3,
            F=int(self.present),
            R=int(self.read),
            W=int(self.write),
        )
        w1 = SDW_W1.pack(
            BOUND=self.bound,
            GATE=self.gate,
            E=int(self.execute),
            PAGED=int(self.paged),
        )
        return w0, w1

    @classmethod
    def unpack(cls, w0: int, w1: int) -> "SDW":
        """Decode a two-word memory image.

        Raises :class:`repro.errors.BracketOrderError` if the stored
        brackets are out of order — by construction :meth:`pack` can never
        produce such an image, so this only fires on corrupted memory.
        """
        f0 = SDW_W0.unpack(w0)
        f1 = SDW_W1.unpack(w1)
        return cls(
            addr=f0["ADDR"],
            bound=f1["BOUND"],
            r1=f0["R1"],
            r2=f0["R2"],
            r3=f0["R3"],
            read=bool(f0["R"]),
            write=bool(f0["W"]),
            execute=bool(f1["E"]),
            gate=f1["GATE"],
            present=bool(f0["F"]),
            paged=bool(f1["PAGED"]),
        )

    # -- convenience ------------------------------------------------------

    @classmethod
    def missing(cls) -> "SDW":
        """An SDW whose present bit is clear (references trap)."""
        return cls(present=False)

    def with_brackets(self, r1: int, r2: int, r3: int) -> "SDW":
        """Return a copy with different ring brackets."""
        return replace(self, r1=r1, r2=r2, r3=r3)

    def with_flags(
        self,
        read: bool = None,  # type: ignore[assignment]
        write: bool = None,  # type: ignore[assignment]
        execute: bool = None,  # type: ignore[assignment]
    ) -> "SDW":
        """Return a copy with some permission flags replaced."""
        return replace(
            self,
            read=self.read if read is None else read,
            write=self.write if write is None else write,
            execute=self.execute if execute is None else execute,
        )

    def describe(self) -> str:
        """Human-readable one-line summary used by traces and listings."""
        flags = "".join(
            ch if on else "-"
            for ch, on in (
                ("r", self.read),
                ("w", self.write),
                ("e", self.execute),
            )
        )
        state = "" if self.present else " MISSING"
        return (
            f"addr={self.addr:#o} bound={self.bound} {flags} "
            f"brackets=({self.r1},{self.r2},{self.r3}) gate={self.gate}{state}"
        )
