"""Storage formats of Figure 3.

This package is the bit-level single source of truth for every datum the
simulated hardware reads from or writes to memory:

* :mod:`repro.formats.sdw` — segment descriptor words (two-word pairs)
  holding the address, bound, ring brackets ``R1/R2/R3``, the ``R/W/E``
  permission flags, the gate count, and the present bit;
* :mod:`repro.formats.instruction` — instruction words (opcode, indirect
  flag, pointer-register selection, tag, 18-bit offset);
* :mod:`repro.formats.indirect` — indirect words carrying a two-part
  address plus a ring number and a further-indirection flag;
* :mod:`repro.formats.pointerfmt` — the memory image of pointer registers
  and the instruction pointer, used by the trap save/restore machinery.

Everything here is pure encoding: no access-control policy lives in this
package (that is :mod:`repro.core`), and no machine state (that is
:mod:`repro.cpu`).
"""

from .sdw import SDW, SDW_WORDS, SDW_W0, SDW_W1
from .instruction import (
    Instruction,
    INSTRUCTION,
    MAX_OPCODE,
)
from .indirect import IndirectWord, INDIRECT
from .pointerfmt import PackedPointer, POINTER, IPR_FORMAT

__all__ = [
    "SDW",
    "SDW_WORDS",
    "SDW_W0",
    "SDW_W1",
    "Instruction",
    "INSTRUCTION",
    "MAX_OPCODE",
    "IndirectWord",
    "INDIRECT",
    "PackedPointer",
    "POINTER",
    "IPR_FORMAT",
]
