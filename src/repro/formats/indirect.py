"""Indirect word format (``IND`` of Figure 3).

An indirect word carries a complete two-part address plus a ring number
and a further-indirection flag.  It is the in-memory twin of a pointer
register: storing a PR produces an indirect word, and an EAP-type
instruction addressed through an indirect word reloads one.

========  ====  =======================================================
field     bits  meaning
========  ====  =======================================================
SEGNO     14    segment number of the addressed word
WORDNO    18    word number within the segment
RING      3     validation ring — during effective-address formation
                ``TPR.RING`` is raised to at least this value
I         1     further-indirection flag (``IND.I``)
========  ====  =======================================================

The RING field is the heart of the paper's argument-validation story:
because every procedure that stores a pointer records the ring that
influenced it, a called procedure referencing arguments through the
pointer is automatically validated with respect to the caller's ring.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..words import Field, Layout, check_field

#: Layout of an indirect word.
INDIRECT = Layout(
    "IND",
    [
        Field("SEGNO", 0, 14),
        Field("WORDNO", 14, 18),
        Field("RING", 32, 3),
        Field("I", 35, 1),
    ],
)

#: Pre-resolved shift/mask pairs for :func:`unpack_raw` (the layout
#: stays the single source of truth for the geometry).
_SEGNO_SHIFT = INDIRECT["SEGNO"].shift
_SEGNO_MASK = INDIRECT["SEGNO"].mask
_WORDNO_SHIFT = INDIRECT["WORDNO"].shift
_WORDNO_MASK = INDIRECT["WORDNO"].mask
_RING_SHIFT = INDIRECT["RING"].shift
_RING_MASK = INDIRECT["RING"].mask
_I_SHIFT = INDIRECT["I"].shift
_I_MASK = INDIRECT["I"].mask


def unpack_raw(word: int) -> tuple:
    """``(segno, wordno, ring, i)`` of ``word``, no object construction.

    The effective-address chase decodes one indirect word per hop on
    the simulator's hottest path; this skips the generic layout walk
    and the :class:`IndirectWord` dataclass entirely.
    """
    return (
        (word >> _SEGNO_SHIFT) & _SEGNO_MASK,
        (word >> _WORDNO_SHIFT) & _WORDNO_MASK,
        (word >> _RING_SHIFT) & _RING_MASK,
        (word >> _I_SHIFT) & _I_MASK,
    )


@dataclass(frozen=True)
class IndirectWord:
    """A decoded indirect word."""

    segno: int
    wordno: int
    ring: int = 0
    indirect: bool = False

    def __post_init__(self) -> None:
        check_field("IND.SEGNO", self.segno, 14)
        check_field("IND.WORDNO", self.wordno, 18)
        check_field("IND.RING", self.ring, 3)

    def pack(self) -> int:
        """Encode into the one-word memory image."""
        return INDIRECT.pack(
            SEGNO=self.segno,
            WORDNO=self.wordno,
            RING=self.ring,
            I=int(self.indirect),
        )

    @classmethod
    def unpack(cls, word: int) -> "IndirectWord":
        """Decode a one-word memory image."""
        segno, wordno, ring, i = unpack_raw(word)
        return cls(segno=segno, wordno=wordno, ring=ring, indirect=bool(i))

    def with_ring(self, ring: int) -> "IndirectWord":
        """Return a copy carrying a different validation ring."""
        return replace(self, ring=ring)

    def chained(self) -> "IndirectWord":
        """Return a copy with the further-indirection flag set."""
        return replace(self, indirect=True)
