"""Indirect word format (``IND`` of Figure 3).

An indirect word carries a complete two-part address plus a ring number
and a further-indirection flag.  It is the in-memory twin of a pointer
register: storing a PR produces an indirect word, and an EAP-type
instruction addressed through an indirect word reloads one.

========  ====  =======================================================
field     bits  meaning
========  ====  =======================================================
SEGNO     14    segment number of the addressed word
WORDNO    18    word number within the segment
RING      3     validation ring — during effective-address formation
                ``TPR.RING`` is raised to at least this value
I         1     further-indirection flag (``IND.I``)
========  ====  =======================================================

The RING field is the heart of the paper's argument-validation story:
because every procedure that stores a pointer records the ring that
influenced it, a called procedure referencing arguments through the
pointer is automatically validated with respect to the caller's ring.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..words import Field, Layout, check_field

#: Layout of an indirect word.
INDIRECT = Layout(
    "IND",
    [
        Field("SEGNO", 0, 14),
        Field("WORDNO", 14, 18),
        Field("RING", 32, 3),
        Field("I", 35, 1),
    ],
)


@dataclass(frozen=True)
class IndirectWord:
    """A decoded indirect word."""

    segno: int
    wordno: int
    ring: int = 0
    indirect: bool = False

    def __post_init__(self) -> None:
        check_field("IND.SEGNO", self.segno, 14)
        check_field("IND.WORDNO", self.wordno, 18)
        check_field("IND.RING", self.ring, 3)

    def pack(self) -> int:
        """Encode into the one-word memory image."""
        return INDIRECT.pack(
            SEGNO=self.segno,
            WORDNO=self.wordno,
            RING=self.ring,
            I=int(self.indirect),
        )

    @classmethod
    def unpack(cls, word: int) -> "IndirectWord":
        """Decode a one-word memory image."""
        f = INDIRECT.unpack(word)
        return cls(
            segno=f["SEGNO"],
            wordno=f["WORDNO"],
            ring=f["RING"],
            indirect=bool(f["I"]),
        )

    def with_ring(self, ring: int) -> "IndirectWord":
        """Return a copy carrying a different validation ring."""
        return replace(self, ring=ring)

    def chained(self) -> "IndirectWord":
        """Return a copy with the further-indirection flag set."""
        return replace(self, indirect=True)
