"""Source-line parsing for the assembler.

Syntax, line oriented::

    ; full-line comment (also everything after ';' on any line)
    label:   lda    =5          ; immediate operand
    loop:    lda    table,x     ; indexed by the low half of A
             sta    pr2|3       ; pointer-register-relative
             lda    pr1|0,*     ; ... with indirection
             tra    loop
    entry::  nop                ; '::' exports the label as an entry
             call   l_gate,*    ; call indirect through a link word
    l_gate:  .its   svc$write   ; indirect word, resolved by the loader

Directives::

    .seg   name          segment name
    .gates N             first N words are gate locations
    .word  e1, e2, ...   literal words (numbers or label expressions)
    .zero  N             N zero words
    .its   seg$entry [, ring [, chained]]
                         an indirect word, loader-resolved
    .ptr   expr [, ring [, chained]]
                         an indirect word to a *local* label
    .equ   name, expr    symbol definition

Expressions are ``number``, ``label``, ``label+n``, ``label-n``, ``.``
(current location), ``.+n`` or ``.-n``.  Numbers are decimal, or octal
or hex with ``0o``/``0x`` prefixes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import AssemblyError

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")
_NUMBER_RE = re.compile(r"^(0o[0-7]+|0x[0-9A-Fa-f]+|[0-9]+)$")


@dataclass
class Operand:
    """A parsed instruction operand."""

    #: expression for the offset field ("" means 0)
    expr: str = ""
    #: immediate flag (``=expr``)
    immediate: bool = False
    #: pointer-register number when PR-relative, else None
    prnum: Optional[int] = None
    #: indirect flag (trailing ``,*``)
    indirect: bool = False
    #: indexed flag (trailing ``,x``)
    indexed: bool = False


@dataclass
class ParsedLine:
    """One source line after syntactic analysis."""

    lineno: int
    label: Optional[str] = None
    #: label declared with '::' — exported as an entry point
    exported: bool = False
    #: mnemonic or directive name (directives keep their leading '.')
    op: Optional[str] = None
    #: raw operand field, then structured forms below
    operand_text: str = ""
    operand: Optional[Operand] = None
    #: comma-split arguments for directives
    args: List[str] = field(default_factory=list)
    source: str = ""

    @property
    def is_directive(self) -> bool:
        return self.op is not None and self.op.startswith(".")


def _strip_comment(line: str) -> str:
    out = []
    for ch in line:
        if ch == ";":
            break
        out.append(ch)
    return "".join(out).rstrip()


def split_args(text: str) -> List[str]:
    """Split a directive argument list on commas, trimming whitespace."""
    if not text.strip():
        return []
    return [part.strip() for part in text.split(",")]


def parse_operand(text: str, lineno: int) -> Operand:
    """Parse an instruction operand field."""
    operand = Operand()
    text = text.strip()
    if not text:
        return operand

    # trailing modifiers: ,* (indirect) and ,x (indexed), either order
    while True:
        lowered = text.lower()
        if lowered.endswith(",*"):
            operand.indirect = True
            text = text[:-2].strip()
        elif lowered.endswith(",x"):
            operand.indexed = True
            text = text[:-2].strip()
        else:
            break

    if text.startswith("="):
        operand.immediate = True
        text = text[1:].strip()
        if operand.indirect or operand.indexed:
            raise AssemblyError(
                "immediate operands cannot be indirect or indexed", lineno
            )

    match = re.match(r"^pr([0-7])\|(.*)$", text, re.IGNORECASE)
    if match:
        if operand.immediate:
            raise AssemblyError("immediate operand cannot be PR-relative", lineno)
        operand.prnum = int(match.group(1))
        text = match.group(2).strip()

    operand.expr = text
    return operand


def parse_line(line: str, lineno: int) -> Optional[ParsedLine]:
    """Parse one source line; returns None for blank/comment lines."""
    raw = line
    line = _strip_comment(line)
    if not line.strip():
        return None

    parsed = ParsedLine(lineno=lineno, source=raw.rstrip("\n"))

    # label field
    stripped = line.lstrip()
    match = re.match(r"^([A-Za-z_][A-Za-z0-9_.]*)(::|:)\s*(.*)$", stripped)
    if match:
        parsed.label = match.group(1)
        parsed.exported = match.group(2) == "::"
        stripped = match.group(3)
    elif line and not line[0].isspace() and not stripped.startswith("."):
        raise AssemblyError(
            f"unlabelled text at column 0: {line.split()[0]!r} "
            "(labels need ':' and instructions need leading whitespace)",
            lineno,
        )

    stripped = stripped.strip()
    if not stripped:
        return parsed  # label-only line

    parts = stripped.split(None, 1)
    parsed.op = parts[0].lower()
    parsed.operand_text = parts[1].strip() if len(parts) > 1 else ""

    if parsed.is_directive:
        parsed.args = split_args(parsed.operand_text)
    else:
        parsed.operand = parse_operand(parsed.operand_text, lineno)
    return parsed


def parse_source(source: str) -> List[ParsedLine]:
    """Parse a whole program, skipping blank and comment lines."""
    out: List[ParsedLine] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        parsed = parse_line(line, lineno)
        if parsed is not None:
            out.append(parsed)
    return out


def parse_number(text: str, lineno: int) -> int:
    """Parse a numeric literal (decimal, 0o octal, 0x hex, optional -)."""
    text = text.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:].strip()
    try:
        if text.lower().startswith("0o"):
            value = int(text, 8)
        elif text.lower().startswith("0x"):
            value = int(text, 16)
        else:
            value = int(text, 10)
    except ValueError:
        raise AssemblyError(f"bad number {text!r}", lineno) from None
    return -value if negative else value


def split_expression(text: str, lineno: int) -> Tuple[str, int]:
    """Split ``label+n`` / ``label-n`` / ``.`` forms into (base, addend).

    The base is ``""`` for purely numeric expressions, ``"."`` for the
    current location, or a label name.
    """
    text = text.strip()
    if not text:
        return "", 0
    match = re.match(r"^(\.|[A-Za-z_][A-Za-z0-9_.]*)\s*([+-]\s*\S+)?$", text)
    if match and not _NUMBER_RE.match(text):
        base = match.group(1)
        addend = 0
        if match.group(2):
            addend = parse_number(match.group(2).replace(" ", ""), lineno)
        return base, addend
    return "", parse_number(text, lineno)
