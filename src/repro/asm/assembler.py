"""The two-pass assembler.

Pass 1 sizes every statement and builds the symbol table; pass 2 emits
words and link requests.  The output is a
:class:`repro.mem.segment.SegmentImage` ready for the loader.

Inter-segment references deserve a note: an instruction word carries
only an 18-bit offset, so a direct operand can *only* name a word of
the executing segment.  Writing ``lda other$thing`` is therefore a
hard assembly error; the supported idiom is a link word::

    l_thing:  .its  other$thing      ; loader fills segno/wordno
              ...
              lda   l_thing,*        ; indirect through the link

which is exactly the mechanism the architecture (and real Multics)
uses, and which keeps the effective-ring bookkeeping of Figure 5
honest — the reference is validated at the ring that could have
influenced the link word.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cpu.isa import BY_NAME, Op
from ..errors import AssemblyError
from ..formats.indirect import IndirectWord
from ..formats.instruction import (
    Instruction,
    TAG_IMMEDIATE,
    TAG_INDEX_A,
    TAG_NONE,
)
from ..mem.segment import LinkRequest, SegmentImage
from ..words import HALF_MASK
from .parser import ParsedLine, parse_number, parse_source, split_expression

#: Directives and the number of words each occupies (None = computed).
_DIRECTIVE_SIZES = {
    ".seg": 0,
    ".gates": 0,
    ".equ": 0,
    ".word": None,
    ".zero": None,
    ".ascii": None,
    ".its": 1,
    ".ptr": 1,
}

#: Opcodes that take no operand at all.
_NO_OPERAND = {Op.NOP, Op.HALT, Op.RCU, Op.LDCR}


class Assembler:
    """Assemble one source text into one segment image."""

    def __init__(self, source: str, name: str = "unnamed"):
        self.lines = parse_source(source)
        self.name = name
        self.symbols: Dict[str, int] = {}
        self.exports: Dict[str, int] = {}
        self.gate_count: Optional[int] = None
        self._location = 0

    # ------------------------------------------------------------------
    # pass 1
    # ------------------------------------------------------------------

    def _size_of(self, line: ParsedLine) -> int:
        if line.op is None:
            return 0
        if line.is_directive:
            if line.op not in _DIRECTIVE_SIZES:
                raise AssemblyError(f"unknown directive {line.op}", line.lineno)
            size = _DIRECTIVE_SIZES[line.op]
            if size is not None:
                return size
            if line.op == ".word":
                if not line.args:
                    raise AssemblyError(".word needs at least one value", line.lineno)
                return len(line.args)
            if line.op == ".zero":
                if len(line.args) != 1:
                    raise AssemblyError(".zero needs a count", line.lineno)
                count = parse_number(line.args[0], line.lineno)
                if count < 0:
                    raise AssemblyError(".zero count must be >= 0", line.lineno)
                return count
            if line.op == ".ascii":
                return len(self._ascii_chars(line))
            raise AssemblyError(f"unsized directive {line.op}", line.lineno)
        return 1  # every instruction is one word

    @staticmethod
    def _ascii_chars(line: ParsedLine) -> str:
        """Extract the quoted text of an ``.ascii`` directive.

        One character is stored per word (in the low 7 bits), which keeps
        character data indexable with ordinary word addressing.
        """
        text = line.operand_text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblyError('.ascii needs a double-quoted string', line.lineno)
        return text[1:-1]

    def pass1(self) -> None:
        """Assign locations to labels, collect .equ symbols and exports."""
        self._location = 0
        for line in self.lines:
            if line.label is not None:
                if line.label in self.symbols:
                    raise AssemblyError(
                        f"duplicate label {line.label!r}", line.lineno
                    )
                self.symbols[line.label] = self._location
                if line.exported:
                    self.exports[line.label] = self._location
            if line.op == ".equ":
                if len(line.args) != 2:
                    raise AssemblyError(".equ needs name, value", line.lineno)
                name, expr = line.args
                if name in self.symbols:
                    raise AssemblyError(f"duplicate symbol {name!r}", line.lineno)
                self.symbols[name] = self._evaluate(expr, line.lineno, strict=False)
            elif line.op == ".seg":
                if len(line.args) != 1:
                    raise AssemblyError(".seg needs a name", line.lineno)
                self.name = line.args[0]
            elif line.op == ".gates":
                if len(line.args) != 1:
                    raise AssemblyError(".gates needs a count", line.lineno)
                self.gate_count = parse_number(line.args[0], line.lineno)
            self._location += self._size_of(line)

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------

    def _evaluate(self, expr: str, lineno: int, strict: bool = True) -> int:
        if "$" in expr:
            raise AssemblyError(
                f"{expr!r} names another segment; direct operands can only "
                "address the executing segment — use a '.its' link word and "
                "an indirect reference",
                lineno,
            )
        base, addend = split_expression(expr, lineno)
        if base == "":
            return addend
        if base == ".":
            return self._location + addend
        if base not in self.symbols:
            if strict:
                raise AssemblyError(f"undefined symbol {base!r}", lineno)
            raise AssemblyError(
                f"symbol {base!r} not yet defined (forward .equ)", lineno
            )
        return self.symbols[base] + addend

    # ------------------------------------------------------------------
    # pass 2
    # ------------------------------------------------------------------

    def pass2(self) -> SegmentImage:
        """Emit words and link requests into a segment image."""
        image = SegmentImage(name=self.name)
        self._location = 0

        for line in self.lines:
            words = self._emit(line, image)
            for word in words:
                image.source_map[len(image.words)] = line.lineno
                image.words.append(word)
            self._location += len(words)

        image.entries = dict(self.exports)
        image.gate_count = self.gate_count or 0
        if image.gate_count > len(image.words):
            raise AssemblyError(
                f".gates {image.gate_count} exceeds segment length "
                f"{len(image.words)}"
            )
        return image

    def _emit(self, line: ParsedLine, image: SegmentImage) -> List[int]:
        if line.op is None:
            return []
        if line.is_directive:
            return self._emit_directive(line, image)
        return [self._emit_instruction(line)]

    def _emit_directive(self, line: ParsedLine, image: SegmentImage) -> List[int]:
        if line.op in (".seg", ".gates", ".equ"):
            return []
        if line.op == ".word":
            return [
                self._evaluate(arg, line.lineno) & ((1 << 36) - 1)
                for arg in line.args
            ]
        if line.op == ".zero":
            return [0] * parse_number(line.args[0], line.lineno)
        if line.op == ".ascii":
            return [ord(ch) & 0o177 for ch in self._ascii_chars(line)]
        if line.op == ".its":
            return [self._emit_its(line, image)]
        if line.op == ".ptr":
            return [self._emit_ptr(line, image)]
        raise AssemblyError(f"unknown directive {line.op}", line.lineno)

    def _its_common(self, line: ParsedLine) -> IndirectWord:
        ring = 0
        chained = False
        if len(line.args) >= 2 and line.args[1]:
            ring = parse_number(line.args[1], line.lineno)
        if len(line.args) >= 3 and line.args[2]:
            chained = bool(parse_number(line.args[2], line.lineno))
        if not 0 <= ring <= 7:
            raise AssemblyError(f"ring {ring} out of range", line.lineno)
        return IndirectWord(segno=0, wordno=0, ring=ring, indirect=chained)

    def _emit_its(self, line: ParsedLine, image: SegmentImage) -> int:
        """``.its seg$entry [, ring [, chained]]`` — loader-resolved pointer."""
        if not line.args:
            raise AssemblyError(".its needs a target", line.lineno)
        proto = self._its_common(line)
        image.links.append(
            LinkRequest(
                wordno=self._location,
                symbol=line.args[0],
                field="pointer",
                ring=proto.ring,
            )
        )
        return proto.pack()

    def _emit_ptr(self, line: ParsedLine, image: SegmentImage) -> int:
        """``.ptr expr [, ring [, chained]]`` — pointer to a local word.

        The word number is resolved now; the segment number (of this
        very segment, unknown until load time) is patched by the loader.
        """
        if not line.args:
            raise AssemblyError(".ptr needs a target expression", line.lineno)
        proto = self._its_common(line)
        wordno = self._evaluate(line.args[0], line.lineno) & HALF_MASK
        image.links.append(
            LinkRequest(wordno=self._location, symbol=".", field="segno")
        )
        return IndirectWord(
            segno=0, wordno=wordno, ring=proto.ring, indirect=proto.indirect
        ).pack()

    def _emit_instruction(self, line: ParsedLine) -> int:
        mnemonic = line.op
        assert mnemonic is not None
        op = BY_NAME.get(mnemonic)
        if op is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line.lineno)
        operand = line.operand
        assert operand is not None

        if op in _NO_OPERAND:
            if operand.expr or operand.immediate or operand.prnum is not None:
                raise AssemblyError(
                    f"{mnemonic} takes no operand", line.lineno
                )
            return Instruction(opcode=op.number).pack()

        if operand.immediate and (op.transfer or op.is_eap or op.is_spr):
            raise AssemblyError(
                f"{mnemonic} cannot take an immediate operand", line.lineno
            )

        tag = TAG_NONE
        if operand.immediate:
            tag = TAG_IMMEDIATE
        elif operand.indexed:
            tag = TAG_INDEX_A

        offset = self._evaluate(operand.expr, line.lineno) if operand.expr else 0
        offset &= HALF_MASK

        return Instruction(
            opcode=op.number,
            offset=offset,
            indirect=operand.indirect,
            prflag=operand.prnum is not None,
            prnum=operand.prnum or 0,
            tag=tag,
        ).pack()

    # ------------------------------------------------------------------

    def assemble(self) -> SegmentImage:
        """Run both passes and return the segment image."""
        self.pass1()
        return self.pass2()


def assemble(source: str, name: str = "unnamed") -> SegmentImage:
    """Assemble ``source`` into a segment image named ``name``.

    The ``.seg`` directive inside the source overrides ``name``.
    """
    return Assembler(source, name=name).assemble()
