"""Assembly listings.

Renders a :class:`repro.mem.segment.SegmentImage` side by side with its
source lines — word number, octal contents, and the originating source —
plus a trailer summarising entries, gates, and unresolved links.
"""

from __future__ import annotations

from typing import List, Optional

from ..mem.segment import SegmentImage
from ..words import octal


def listing(image: SegmentImage, source: Optional[str] = None) -> str:
    """Produce a printable listing of an assembled segment."""
    source_lines: List[str] = source.splitlines() if source else []
    rows: List[str] = [
        f"segment {image.name!r}: {len(image.words)} words, "
        f"{image.gate_count} gates"
    ]

    last_lineno = None
    for wordno, word in enumerate(image.words):
        lineno = image.source_map.get(wordno)
        text = ""
        if lineno is not None and lineno != last_lineno:
            if 1 <= lineno <= len(source_lines):
                text = source_lines[lineno - 1].rstrip()
            last_lineno = lineno
        rows.append(f"  {wordno:06o}  {octal(word)}  {text}")

    if image.entries:
        rows.append("entries:")
        for symbol, wordno in sorted(image.entries.items(), key=lambda kv: kv[1]):
            kind = "gate" if wordno < image.gate_count else "entry"
            rows.append(f"  {symbol:<20} {wordno:06o}  ({kind})")

    if image.links:
        rows.append("links:")
        for link in image.links:
            rows.append(
                f"  word {link.wordno:06o} -> {link.symbol} ({link.field})"
            )

    return "\n".join(rows)
