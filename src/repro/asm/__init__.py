"""A two-pass assembler for the simulated processor.

Programs for the ring hardware must be real machine programs — the
fetch path, effective-address formation, and CALL/RETURN semantics are
only exercised by executing instructions — so the package provides a
small but complete assembler:

* :mod:`repro.asm.parser` — line syntax (labels, mnemonics, operands,
  directives) parsed into statements;
* :mod:`repro.asm.assembler` — the two-pass translation into a
  :class:`repro.mem.segment.SegmentImage`, including link requests for
  inter-segment references;
* :mod:`repro.asm.listing` — assembly listings for debugging.

Because instructions carry only an 18-bit offset, a *direct* operand
always names a word of the executing segment; references to other
segments go through pointer registers or through indirect words emitted
with the ``.its`` directive and resolved by the loader — exactly the
constraint the real architecture imposes.
"""

from .assembler import Assembler, assemble
from .listing import listing
from .parser import ParsedLine, parse_line, parse_source

__all__ = [
    "Assembler",
    "assemble",
    "listing",
    "ParsedLine",
    "parse_line",
    "parse_source",
]
