"""Disassembler.

Turns packed instruction words back into assembler-syntax text — the
inverse of :mod:`repro.asm.assembler` for the instruction subset.  Words
that do not decode to an assigned opcode are rendered as ``.word``
literals, so any segment image can be listed.  Used by the CLI, by
traces, and by round-trip tests that pin assembler/disassembler
consistency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cpu.isa import BY_NUMBER, Op
from ..formats.instruction import Instruction, TAG_IMMEDIATE, TAG_INDEX_A, TAG_NONE
from ..mem.segment import SegmentImage
from ..words import octal


def disassemble_word(word: int) -> str:
    """One word -> one line of assembler syntax (or a .word literal)."""
    inst = Instruction.unpack(word)
    op = BY_NUMBER.get(inst.opcode)
    if op is None:
        return f".word   0o{word:o}"
    if inst.tag not in (TAG_NONE, TAG_IMMEDIATE, TAG_INDEX_A):
        return f".word   0o{word:o}"

    operand = ""
    if op in (Op.NOP, Op.HALT, Op.RCU, Op.LDCR):
        if word != Instruction(opcode=op.number).pack():
            return f".word   0o{word:o}"  # stray bits: not a clean decode
    elif inst.tag == TAG_IMMEDIATE:
        operand = f"={inst.offset}"
    else:
        if inst.prflag:
            operand = f"pr{inst.prnum}|{inst.offset}"
        else:
            operand = f"{inst.offset}"
        if inst.tag == TAG_INDEX_A:
            operand += ",x"
        if inst.indirect:
            operand += ",*"

    mnemonic = op.name.lower()
    return f"{mnemonic:<7} {operand}".rstrip()


def disassemble(
    words: List[int],
    entries: Optional[Dict[str, int]] = None,
    gate_count: int = 0,
) -> str:
    """A whole image -> a printable disassembly with entry labels."""
    labels: Dict[int, str] = {}
    for symbol, wordno in (entries or {}).items():
        labels[wordno] = symbol
    lines = []
    for wordno, word in enumerate(words):
        label = labels.get(wordno, "")
        if label:
            marker = "::" if wordno < gate_count or label in (entries or {}) else ":"
            label = f"{label}{marker}"
        gate = "  ; gate" if wordno < gate_count else ""
        lines.append(
            f"{wordno:06o}  {octal(word)}  {label:<12} {disassemble_word(word)}{gate}"
        )
    return "\n".join(lines)


def disassemble_image(image: SegmentImage) -> str:
    """Convenience wrapper over :func:`disassemble` for segment images."""
    return disassemble(image.words, image.entries, image.gate_count)
