"""Hardware CALL (Figure 8) and RETURN (Figure 9) on the live machine.

The test programs are hand-packed instruction words running on a bare
machine; every ring transition and fault is observed directly.
"""

import pytest

from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.cpu.registers import STACK_BASE_PR

from tests.helpers import BareMachine, asm_inst, halt_word, ind_word


@pytest.fixture
def bm():
    machine = BareMachine()
    # per-ring stacks at segnos 0..7, matching DBR.STACK = 0
    for ring in range(8):
        machine.add_segment(
            ring, size=64, r1=ring, r2=ring, r3=ring,
            read=True, write=True, execute=False,
        )
    return machine


def load(bm, segno, words):
    bm.memory.load_image(bm.dseg.get(segno).addr, list(words))


class TestSameRingCall:
    def _setup(self, bm):
        # segment 8: caller in ring 4; segment 9: gated same-ring callee
        bm.add_code(8, [0] * 8, ring=4)
        bm.add_code(9, [0] * 8, ring=4, gate=1)
        load(bm, 9, [asm_inst(Op.RETURN, offset=0, pr=4), halt_word()])
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),          # PR4 := return point
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),                           # return lands here
                0,
                ind_word(9, 0),                        # link to callee gate
            ],
        )

    def test_call_and_return(self, bm):
        self._setup(bm)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.ipr.ring == 4

    def test_no_ring_crossing_recorded(self, bm):
        self._setup(bm)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.stats.ring_crossings == 0
        assert bm.proc.stats.calls == 1
        assert bm.proc.stats.returns == 1

    def test_pr0_points_at_stack_base(self, bm):
        """CALL generates the stack-base pointer in PR0 (paper p. 30)."""
        self._setup(bm)
        # stop inside the callee: replace its RETURN with HALT
        load(bm, 9, [halt_word()])
        bm.start(8, 0, ring=4)
        bm.run()
        pr0 = bm.regs.pr(STACK_BASE_PR)
        assert (pr0.segno, pr0.wordno, pr0.ring) == (4, 0, 4)

    def test_crr_records_caller_ring(self, bm):
        self._setup(bm)
        load(bm, 9, [halt_word()])
        bm.start(8, 0, ring=4)
        bm.regs.crr = 7  # noise
        bm.run()
        assert bm.regs.crr == 4


class TestDownwardCall:
    def _setup(self, bm, gate_wordno=0):
        # segment 8: ring-4 caller; segment 9: ring-0 gates ext to 5
        bm.add_code(8, [0] * 8, ring=4)
        bm.add_code(9, [0] * 8, ring=0, r3=5, gate=2)
        load(
            bm,
            9,
            [
                asm_inst(Op.LDCR),                     # A := caller ring
                asm_inst(Op.RETURN, offset=0, pr=4),
            ],
        )
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(9, gate_wordno),
            ],
        )

    def test_ring_switches_down_to_r2(self, bm):
        self._setup(bm)
        load(bm, 9, [halt_word()])
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.regs.ipr.ring == 0

    def test_call_return_roundtrip_restores_ring(self, bm):
        self._setup(bm)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.ipr.ring == 4
        assert bm.regs.a == 4  # LDCR saw the caller's ring

    def test_two_crossings_counted(self, bm):
        self._setup(bm)
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.stats.ring_crossings == 2

    def test_pr0_names_ring0_stack(self, bm):
        self._setup(bm)
        load(bm, 9, [halt_word()])
        bm.start(8, 0, ring=4)
        bm.run()
        pr0 = bm.regs.pr(STACK_BASE_PR)
        assert (pr0.segno, pr0.ring) == (0, 0)

    def test_non_gate_word_refused(self, bm):
        self._setup(bm, gate_wordno=5)  # beyond SDW.GATE = 2
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_NOT_GATE

    def test_caller_above_gate_extension_refused(self, bm):
        self._setup(bm)
        bm.add_code(10, [0] * 8, ring=6)
        load(
            bm,
            10,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(9, 0),
            ],
        )
        bm.start(10, 0, ring=6)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_OUTSIDE_CALL_BRACKET

    def test_raised_effective_ring_refused(self, bm):
        """A CALL whose link was influenced by a higher ring faults
        (paper p. 30)."""
        self._setup(bm)
        # poison the link word's RING field with 6
        base8 = bm.dseg.get(8).addr
        bm.memory.load_image(base8 + 4, [ind_word(9, 0, ring=6)])
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_RING_RAISED

    def test_upward_call_traps_without_supervisor(self, bm):
        bm.add_code(8, [0] * 8, ring=4)
        bm.add_code(11, [halt_word()], ring=6, gate=1)
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(11, 0),
            ],
        )
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.TRAP_UPWARD_CALL

    def test_call_to_internal_procedure_ignores_gates(self, bm):
        """A CALL whose operand is in the executing segment bypasses the
        gate list (paper p. 29)."""
        bm.add_code(8, [0] * 8, ring=4, gate=1)  # only word 0 is a gate
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=3),        # direct, same segment
                halt_word(),
                asm_inst(Op.RETURN, offset=0, pr=4),  # word 3: not a gate
            ],
        )
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted


class TestReturn:
    def test_upward_return_raises_all_pr_rings(self, bm):
        """Figure 9: on an upward return every PRn.RING is raised to the
        new ring, preserving the machine invariant."""
        bm.add_code(8, [0] * 8, ring=4)       # ring-4 code
        bm.add_code(9, [0] * 8, ring=0, r3=5, gate=1)
        load(bm, 9, [asm_inst(Op.RETURN, offset=0, pr=4)])
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(9, 0),
            ],
        )
        bm.start(8, 0, ring=4)
        bm.run()
        assert all(pr.ring >= 4 for pr in bm.regs.prs)
        assert bm.regs.check_ring_invariant()

    def test_return_cannot_reach_lower_ring_than_caller(self, bm):
        """The RETURN's effective ring comes through PR4, whose RING is
        invariant-protected: a callee cannot forge a return to ring 0."""
        bm.add_code(8, [0] * 8, ring=4)
        bm.add_code(9, [0] * 8, ring=0, r3=5, gate=1)
        # the callee tries to 'return' directly to its own gate segment
        # at effective ring 0 via a direct address — but its own RETURN
        # target must be executable at the effective ring >= caller ring
        load(bm, 9, [asm_inst(Op.RETURN, offset=0, pr=4)])
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(9, 0),
            ],
        )
        bm.start(8, 0, ring=4)
        bm.run()
        # the return went to ring 4 (the caller's), never lower
        assert bm.regs.ipr.ring == 4

    def test_return_to_non_executable_target_faults(self, bm):
        bm.add_code(8, [0] * 8, ring=4)
        load(bm, 8, [asm_inst(Op.RETURN, offset=0, pr=4), halt_word()])
        bm.start(8, 0, ring=4)
        bm.regs.pr(4).load(3, 0, 4)  # stack segment 3: not executable
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_NO_EXECUTE

    def test_return_outside_execute_bracket_faults(self, bm):
        bm.add_code(8, [0] * 8, ring=4)
        bm.add_code(9, [halt_word()], ring=0)  # executable only in ring 0
        load(bm, 8, [asm_inst(Op.RETURN, offset=0, pr=4), halt_word()])
        bm.start(8, 0, ring=4)
        bm.regs.pr(4).load(9, 0, 4)
        with pytest.raises(Fault) as excinfo:
            bm.run()
        assert excinfo.value.code is FaultCode.ACV_EXECUTE_BRACKET

    def test_same_ring_return_direct(self, bm):
        bm.add_code(8, [0] * 8, ring=4)
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.RETURN, offset=0, pr=4),  # "return" to word 2
                halt_word(),
            ],
        )
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted

    def test_nested_downward_calls_return_in_order(self, bm):
        """ring 4 -> ring 2 -> ring 0, then back out 0 -> 2 -> 4.

        Each callee saves PR4 in its own stack before calling deeper and
        restores it with EAP through the saved indirect word — the
        paper's standard convention."""
        bm.add_code(8, [0] * 8, ring=4)                 # caller, ring 4
        bm.add_code(9, [0] * 16, ring=2, r3=5, gate=1)  # middle, ring 2
        bm.add_code(10, [0] * 8, ring=0, r3=3, gate=1)  # inner, ring 0
        load(
            bm,
            8,
            [
                asm_inst(Op.EAP4, offset=2),
                asm_inst(Op.CALL, offset=4, indirect=True),
                halt_word(),
                0,
                ind_word(9, 0),
            ],
        )
        load(
            bm,
            9,
            [
                # gate: grab my stack base before deeper calls clobber PR0
                asm_inst(Op.EAP6, offset=0, pr=0),       # PR6 := PR0
                asm_inst(Op.SPR4, offset=1, pr=6),       # save return ptr
                asm_inst(Op.EAP4, offset=5),             # return point below
                asm_inst(Op.CALL, offset=7, indirect=True),
                halt_word(),
                # word 5: restore PR4 and return to ring 4
                asm_inst(Op.EAP4, offset=1, pr=6, indirect=True),
                asm_inst(Op.RETURN, offset=0, pr=4),
                ind_word(10, 0),                          # word 7: link
            ],
        )
        load(bm, 10, [asm_inst(Op.RETURN, offset=0, pr=4)])
        bm.start(8, 0, ring=4)
        bm.run()
        assert bm.proc.halted
        assert bm.regs.ipr.ring == 4
        assert bm.proc.stats.ring_crossings == 4
