"""The interval timer and runaway control."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.errors import ConfigurationError
from repro.sim.machine import Machine

from tests.helpers import BareMachine, asm_inst, halt_word
from repro.cpu.isa import Op

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


class TestProcessorTimer:
    def test_timer_fault_fires_after_count(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP)] * 10 + [halt_word()], ring=4)
        bare.start(8, 0, ring=4)
        bare.proc.set_timer(3)
        with pytest.raises(Fault) as excinfo:
            bare.run()
        assert excinfo.value.code is FaultCode.TIMER
        assert bare.proc.stats.instructions == 3

    def test_timer_fault_is_resumable(self, bare):
        """The fault fires between instructions; continuing runs the
        program to completion with nothing lost."""
        bare.add_code(
            8,
            [asm_inst(Op.LDA, offset=1, immediate=True)]
            + [asm_inst(Op.ADA, offset=1, immediate=True)] * 9
            + [halt_word()],
            ring=4,
        )
        fired = []

        def handler(proc, fault):
            fired.append(fault.code)
            return "continue"

        bare.proc.fault_handler = handler
        bare.start(8, 0, ring=4)
        bare.proc.set_timer(4)
        bare.run()
        assert bare.proc.halted
        assert bare.regs.a == 10  # 1 + 9 adds, untouched by the timer
        assert fired == [FaultCode.TIMER]

    def test_timer_disarmed_after_firing(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP)] * 20 + [halt_word()], ring=4)
        bare.proc.fault_handler = lambda proc, fault: "continue"
        bare.start(8, 0, ring=4)
        bare.proc.set_timer(5)
        bare.run()
        assert bare.proc.timer is None

    def test_invalid_count_rejected(self, bare):
        with pytest.raises(ConfigurationError):
            bare.proc.set_timer(0)

    def test_timer_none_disarms(self, bare):
        bare.proc.set_timer(5)
        bare.proc.set_timer(None)
        bare.add_code(8, [asm_inst(Op.NOP)] * 20 + [halt_word()], ring=4)
        bare.start(8, 0, ring=4)
        bare.run()
        assert bare.proc.halted


class TestRunawayControl:
    def _runaway_machine(self, quantum=50, limit=3):
        machine = Machine(services=False)
        machine.supervisor.timer_quantum = quantum
        machine.supervisor.timer_limit = limit
        user = machine.add_user("u")
        machine.store_program(
            ">t>spin",
            """
        .seg    spin
main::  tra     main
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>spin")
        return machine, process

    def test_runaway_program_is_stopped(self):
        machine, process = self._runaway_machine(quantum=50, limit=3)
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "spin$main", ring=4, max_steps=100_000)
        assert excinfo.value.code is FaultCode.TIMER
        assert machine.supervisor.timer_runouts(process) == 4  # 3 allowed + 1

    def test_wellbehaved_program_unaffected(self):
        machine = Machine()
        machine.supervisor.timer_quantum = 50
        machine.supervisor.timer_limit = 3
        user = machine.add_user("u")
        machine.store_program(
            ">t>quick",
            """
        .seg    quick
main::  lda     =1
        halt
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>quick")
        result = machine.run(process, "quick$main", ring=4)
        assert result.halted and result.a == 1
        assert machine.supervisor.timer_runouts(process) == 0

    def test_budgeted_long_program_completes(self):
        machine = Machine(services=False)
        machine.supervisor.timer_quantum = 20
        machine.supervisor.timer_limit = 100
        user = machine.add_user("u")
        machine.store_program(
            ">t>longer",
            """
        .seg    longer
main::  lda     =60
loop:   sba     =1
        tnz     loop
        halt
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>longer")
        result = machine.run(process, "longer$main", ring=4)
        assert result.halted
        assert machine.supervisor.timer_runouts(process) >= 5
