"""The replication mechanism layer: frames, appliers, promotion.

Everything here is synchronous and in-process — the journal written by
a real durable worker is tailed, shipped through the wire codec, and
applied onto a warm replica, which is then promoted and recovered
from.  The network half (standby server, shippers, gateway failover)
is covered in tests/test_serve_standby.py.
"""

import json

import pytest

from repro.errors import JournalError, ReplayDivergenceError
from repro.serve import workers
from repro.sim.metrics import MetricsSnapshot
from repro.state.journal import JournalWriter
from repro.state.recover import JOURNAL_NAME, recover_slot
from repro.state.replication import (
    Frame,
    JournalTailer,
    ReplicaApplier,
    check_replica_result,
    decode_frame,
    encode_frame,
    read_frames,
)


@pytest.fixture
def durable_state(tmp_path):
    """A real durable worker on a fresh slot; yields (state, slot_dir)."""
    workers.configure_durability(
        workers.DurabilityConfig(
            dir=str(tmp_path), slots=1, checkpoint_interval=10_000,
            fsync_every=1,
        )
    )
    state = workers._WorkerState()
    yield state
    workers.release_live_slots()
    workers.configure_durability(None)


def run_jobs(state, jobs):
    results = []
    for job in jobs:
        out = state.execute(job)
        assert "error" not in out, out
        results.append(out)
    state.journal.sync()
    return results


def make_jobs(count, user="alice", program="call_loop", args=None):
    return [
        {
            "user": user,
            "ring": 4,
            "program": program,
            "args": dict(args or {"count": 2}),
            "call_id": f"call-{user}-{i}",
        }
        for i in range(count)
    ]


class TestWireFrames:
    def test_round_trip_preserves_record_and_crc(self, durable_state):
        run_jobs(durable_state, make_jobs(3))
        frames = read_frames(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        )
        assert [f.seq for f in frames] == [1, 2, 3]
        for frame in frames:
            # through the wire's own JSON layer and back
            entry = json.loads(json.dumps(encode_frame(frame)))
            decoded = decode_frame(entry)
            assert decoded == frame

    def test_tampered_record_fails_its_crc(self, durable_state):
        run_jobs(durable_state, make_jobs(1))
        (frame,) = read_frames(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        )
        entry = encode_frame(frame)
        entry["record"] = dict(entry["record"], call_id="forged")
        with pytest.raises(JournalError, match="CRC"):
            decode_frame(entry)

    def test_seq_envelope_mismatch_is_rejected(self, durable_state):
        run_jobs(durable_state, make_jobs(1))
        (frame,) = read_frames(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        )
        entry = encode_frame(frame)
        entry["seq"] = 99
        with pytest.raises(JournalError, match="seq"):
            decode_frame(entry)


class TestReplicaResultCheck:
    def test_architectural_divergence_is_fatal(self):
        metrics = MetricsSnapshot.zero().as_dict()
        other = dict(metrics, cycles=7)
        with pytest.raises(ReplayDivergenceError, match="cycles"):
            check_replica_result(
                1,
                {"payload": {}, "metrics": metrics},
                {"payload": {}, "metrics": other},
            )

    def test_host_tier_differences_are_tolerated(self):
        # the primary drops its host caches at checkpoint boundaries
        # the replica cannot observe: PTLB/icache/block/trace figures
        # legitimately differ, architectural figures may not
        metrics = MetricsSnapshot.zero().as_dict()
        warm = dict(metrics, ptlb_hits=40, icache_hits=22, jit_hits=3)
        check_replica_result(
            1,
            {"payload": {}, "metrics": metrics},
            {"payload": {}, "metrics": warm},
        )

    def test_error_and_payload_are_verbatim(self):
        with pytest.raises(ReplayDivergenceError, match="detail"):
            check_replica_result(
                1,
                {"error": "machine_fault", "detail": "a"},
                {"error": "machine_fault", "detail": "b"},
            )


class TestReplicaApplier:
    def test_applies_and_verifies_shipped_frames(self, durable_state):
        run_jobs(durable_state, make_jobs(5))
        frames = JournalTailer(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        ).poll()
        applier = ReplicaApplier()
        for frame in frames:
            assert applier.apply(frame) is True
        assert applier.applied_seq == 5
        assert applier.engine.calls == 5
        # the warm replica holds the primary's architectural figures
        assert (
            applier.engine.total.architectural()
            == durable_state.engine.total.architectural()
        )

    def test_reshipped_frames_skip_idempotently(self, durable_state):
        run_jobs(durable_state, make_jobs(3))
        frames = JournalTailer(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        ).poll()
        applier = ReplicaApplier()
        for frame in frames:
            applier.apply(frame)
        for frame in frames:  # an at-least-once redelivery
            assert applier.apply(frame) is False
        assert applier.applied == 3
        assert applier.skipped == 3
        assert applier.engine.calls == 3

    def test_gap_above_applied_seq_is_fatal(self, durable_state):
        run_jobs(durable_state, make_jobs(3))
        frames = JournalTailer(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        ).poll()
        applier = ReplicaApplier()
        applier.apply(frames[0])
        with pytest.raises(JournalError, match="gap"):
            applier.apply(frames[2])

    def test_divergent_result_is_fatal(self, durable_state):
        run_jobs(durable_state, make_jobs(1))
        (frame,) = JournalTailer(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        ).poll()
        record = dict(frame.record)
        record["result"] = dict(record["result"])
        record["result"]["payload"] = dict(
            record["result"]["payload"], a=424242
        )
        applier = ReplicaApplier()
        with pytest.raises(ReplayDivergenceError):
            applier.apply_record(record)

    def test_lookup_serves_the_journaled_result(self, durable_state):
        results = run_jobs(durable_state, make_jobs(2))
        frames = JournalTailer(
            str(durable_state.slot_dir) + "/" + JOURNAL_NAME
        ).poll()
        applier = ReplicaApplier()
        for frame in frames:
            applier.apply(frame)
        hit = applier.lookup("call-alice-1")
        assert hit is not None
        assert hit["payload"] == results[1]["payload"]
        assert applier.lookup("never-seen") is None


class TestPromotion:
    def test_promotion_replays_only_the_unshipped_tail(self, durable_state):
        run_jobs(durable_state, make_jobs(8))
        slot_dir = durable_state.slot_dir
        frames = JournalTailer(slot_dir + "/" + JOURNAL_NAME).poll()
        applier = ReplicaApplier()
        for frame in frames[:5]:  # shipping lag: 3 records behind
            applier.apply(frame)
        report = applier.promote(slot_dir)
        assert report["replayed_tail"] == 3
        assert report["applied_seq"] == 8
        assert applier.promotions == 1

    def test_successor_recovers_from_the_promotion_snapshot(
        self, durable_state
    ):
        run_jobs(durable_state, make_jobs(6))
        slot_dir = durable_state.slot_dir
        primary_arch = durable_state.engine.total.architectural()
        frames = JournalTailer(slot_dir + "/" + JOURNAL_NAME).poll()
        applier = ReplicaApplier()
        for frame in frames[:4]:
            applier.apply(frame)
        applier.promote(slot_dir)
        recovery = recover_slot(slot_dir)
        # an empty tail: the promotion snapshot already folds in every
        # journaled record, so the successor replays nothing
        assert recovery.replayed == 0
        assert recovery.engine.calls == 6
        assert recovery.engine.total.architectural() == primary_arch
        # the replica's dedup cache rode along into the snapshot
        assert "call-alice-5" in recovery.recent

    def test_empty_tail_promotion_replays_nothing(self, durable_state):
        run_jobs(durable_state, make_jobs(4))
        slot_dir = durable_state.slot_dir
        frames = JournalTailer(slot_dir + "/" + JOURNAL_NAME).poll()
        applier = ReplicaApplier()
        for frame in frames:  # fully caught up before the crash
            applier.apply(frame)
        report = applier.promote(slot_dir)
        assert report["replayed_tail"] == 0
        recovery = recover_slot(slot_dir)
        assert recovery.replayed == 0
        assert recovery.engine.calls == 4

    def test_promotion_of_a_never_used_slot(self, tmp_path):
        # a slot whose worker died before executing anything: the
        # journal may not even exist; promotion still writes a uniform
        # (fresh-machine) snapshot the successor can recover from
        slot_dir = tmp_path / "slot-0"
        slot_dir.mkdir()
        applier = ReplicaApplier()
        report = applier.promote(str(slot_dir))
        assert report["replayed_tail"] == 0
        recovery = recover_slot(str(slot_dir))
        assert recovery.replayed == 0
        assert recovery.engine.calls == 0


class TestJournalDumpCli:
    def test_json_dump_lists_every_record(self, durable_state, capsys):
        from repro.cli import main

        run_jobs(durable_state, make_jobs(3))
        assert main(["journal", "dump", durable_state.slot_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 3
        assert payload["last_seq"] == 3
        assert [r["seq"] for r in payload["records"]] == [1, 2, 3]
        assert all("crc" in r and "call_id" in r for r in payload["records"])
        assert all("metrics" in r["result"] for r in payload["records"])

    def test_human_dump_shows_seq_crc_and_outcome(
        self, durable_state, capsys
    ):
        from repro.cli import main

        run_jobs(durable_state, make_jobs(2))
        assert main(["journal", "dump", durable_state.slot_dir]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "call-alice-0" in out
        assert "call_loop" in out
        assert "ok" in out

    def test_limit_truncates(self, durable_state, capsys):
        from repro.cli import main

        run_jobs(durable_state, make_jobs(4))
        assert (
            main(
                [
                    "journal",
                    "dump",
                    durable_state.slot_dir,
                    "--json",
                    "--limit",
                    "2",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
