"""Asynchronous I/O and completion events."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import FaultCode
from repro.errors import ConfigurationError
from repro.krnl.supervisor import IO_LATENCY

from tests.helpers import BareMachine, asm_inst, halt_word
from repro.cpu.isa import Op

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


class TestEventMachinery:
    def test_event_fires_after_count(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP)] * 20 + [halt_word()], ring=4)
        seen = []
        bare.proc.fault_handler = lambda proc, fault: (
            seen.append((fault.code, proc.stats.instructions)) or "continue"
        )
        bare.start(8, 0, ring=4)
        bare.proc.schedule_event(5, FaultCode.IO_COMPLETION, "disk")
        bare.run()
        assert seen == [(FaultCode.IO_COMPLETION, 5)]

    def test_multiple_events_independent(self, bare):
        bare.add_code(8, [asm_inst(Op.NOP)] * 20 + [halt_word()], ring=4)
        seen = []
        bare.proc.fault_handler = lambda proc, fault: (
            seen.append(fault.detail) or "continue"
        )
        bare.start(8, 0, ring=4)
        bare.proc.schedule_event(3, FaultCode.IO_COMPLETION, "first")
        bare.proc.schedule_event(7, FaultCode.IO_COMPLETION, "second")
        bare.run()
        assert seen == ["first", "second"]

    def test_pending_events_counter(self, bare):
        bare.proc.schedule_event(10, FaultCode.IO_COMPLETION)
        assert bare.proc.pending_events == 1

    def test_invalid_delay_rejected(self, bare):
        with pytest.raises(ConfigurationError):
            bare.proc.schedule_event(0, FaultCode.IO_COMPLETION)

    def test_event_is_transparent_to_the_program(self, bare):
        """The computation's result is unchanged by an event firing in
        the middle of it."""
        program = [asm_inst(Op.LDA, offset=1, immediate=True)] + [
            asm_inst(Op.ADA, offset=1, immediate=True)
        ] * 9 + [halt_word()]
        bare.add_code(8, program, ring=4)
        bare.proc.fault_handler = lambda proc, fault: "continue"
        bare.start(8, 0, ring=4)
        bare.proc.schedule_event(4, FaultCode.IO_COMPLETION)
        bare.run()
        assert bare.regs.a == 10


class TestAsyncConsole:
    def test_completion_delivers_to_console(self, machine):
        user = machine.add_user("u")
        spin_body = "\n".join(["        nop"] * (IO_LATENCY + 5))
        machine.store_program(
            ">t>prog",
            f"""
        .seg    prog
main::  lda     =77
        eap4    back
        call    l_aw,*
back:   nop
{spin_body}
        halt
l_aw:   .its    svc$awrite
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>prog")
        result = machine.run(process, "prog$main", ring=4)
        assert result.console == [77]
        assert machine.processor.pending_events == 0

    def test_halting_before_completion_leaves_io_in_flight(self, machine):
        user = machine.add_user("u")
        machine.store_program(
            ">t>quick",
            """
        .seg    quick
main::  lda     =55
        eap4    back
        call    l_aw,*
back:   halt
l_aw:   .its    svc$awrite
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>quick")
        result = machine.run(process, "quick$main", ring=4)
        assert result.console == []  # the transfer never completed
        assert machine.processor.pending_events == 1
        assert len(machine.supervisor._io_in_flight) == 1
