"""Unit tests for the 36-bit word model and bit-field machinery."""

import pytest

from repro.errors import FieldRangeError
from repro.words import (
    Field,
    HALF_MASK,
    Layout,
    MAX_RINGS,
    RING_MASK,
    SEGNO_MASK,
    WORD_BITS,
    WORD_MASK,
    add_offsets,
    add_words,
    check_field,
    fits,
    from_signed,
    mask,
    octal,
    sub_words,
    to_signed,
    to_word,
)


class TestConstants:
    def test_word_geometry(self):
        assert WORD_BITS == 36
        assert WORD_MASK == 2**36 - 1

    def test_half_word(self):
        assert HALF_MASK == 2**18 - 1

    def test_segno_field(self):
        assert SEGNO_MASK == 2**14 - 1

    def test_ring_field(self):
        assert RING_MASK == 7
        assert MAX_RINGS == 8


class TestMasks:
    def test_mask_widths(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(36) == WORD_MASK

    def test_fits_boundaries(self):
        assert fits(0, 3)
        assert fits(7, 3)
        assert not fits(8, 3)
        assert not fits(-1, 3)

    def test_check_field_passes_value_through(self):
        assert check_field("x", 5, 3) == 5

    def test_check_field_rejects_overflow(self):
        with pytest.raises(FieldRangeError):
            check_field("x", 8, 3)

    def test_check_field_rejects_negative(self):
        with pytest.raises(FieldRangeError):
            check_field("x", -1, 3)

    def test_check_field_rejects_bool(self):
        with pytest.raises(FieldRangeError):
            check_field("x", True, 3)

    def test_check_field_rejects_non_int(self):
        with pytest.raises(FieldRangeError):
            check_field("x", 1.5, 3)

    def test_field_range_error_carries_context(self):
        with pytest.raises(FieldRangeError) as excinfo:
            check_field("SDW.R1", 9, 3)
        assert excinfo.value.field == "SDW.R1"
        assert excinfo.value.value == 9
        assert excinfo.value.width == 3


class TestSignedConversion:
    def test_positive_roundtrip(self):
        assert to_signed(from_signed(12345)) == 12345

    def test_negative_roundtrip(self):
        assert to_signed(from_signed(-12345)) == -12345

    def test_minimum_value(self):
        assert to_signed(from_signed(-(2**35))) == -(2**35)

    def test_maximum_value(self):
        assert to_signed(from_signed(2**35 - 1)) == 2**35 - 1

    def test_minus_one_is_all_ones(self):
        assert from_signed(-1) == WORD_MASK

    def test_wraparound(self):
        assert from_signed(2**35) == to_word(2**35)
        assert to_signed(from_signed(2**35)) == -(2**35)


class TestArithmetic:
    def test_add_words_plain(self):
        assert add_words(1, 2) == 3

    def test_add_words_wraps(self):
        assert add_words(WORD_MASK, 1) == 0

    def test_sub_words_borrows(self):
        assert sub_words(0, 1) == WORD_MASK

    def test_add_offsets_wraps_at_18_bits(self):
        assert add_offsets(HALF_MASK, 1) == 0
        assert add_offsets(HALF_MASK, 2) == 1


class TestField:
    def test_extract_msb_field(self):
        f = Field("OP", 0, 9)
        word = 0o123 << (36 - 9)
        assert f.extract(word) == 0o123

    def test_extract_lsb_field(self):
        f = Field("OFF", 18, 18)
        assert f.extract(0o654321) == 0o654321

    def test_insert_preserves_other_bits(self):
        f = Field("MID", 9, 1)
        word = WORD_MASK
        cleared = f.insert(word, 0)
        assert f.extract(cleared) == 0
        assert cleared | (1 << f.shift) == WORD_MASK

    def test_insert_rejects_oversized_value(self):
        f = Field("R", 24, 3)
        with pytest.raises(FieldRangeError):
            f.insert(0, 8)

    def test_field_outside_word_rejected(self):
        with pytest.raises(FieldRangeError):
            Field("BAD", 30, 10)

    def test_zero_width_rejected(self):
        with pytest.raises(FieldRangeError):
            Field("BAD", 0, 0)


class TestLayout:
    def _layout(self):
        return Layout("T", [Field("A", 0, 9), Field("B", 9, 9), Field("C", 18, 18)])

    def test_pack_unpack_roundtrip(self):
        layout = self._layout()
        word = layout.pack(A=0o123, B=0o456, C=0o111111)
        assert layout.unpack(word) == {"A": 0o123, "B": 0o456, "C": 0o111111}

    def test_missing_fields_default_zero(self):
        layout = self._layout()
        assert layout.unpack(layout.pack(B=1)) == {"A": 0, "B": 1, "C": 0}

    def test_unknown_field_rejected(self):
        layout = self._layout()
        with pytest.raises(FieldRangeError):
            layout.pack(Z=1)

    def test_overlapping_fields_rejected(self):
        with pytest.raises(FieldRangeError):
            Layout("BAD", [Field("A", 0, 9), Field("B", 8, 9)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FieldRangeError):
            Layout("BAD", [Field("A", 0, 9), Field("A", 9, 9)])

    def test_getitem(self):
        layout = self._layout()
        assert layout["B"].pos == 9


class TestOctal:
    def test_padding(self):
        assert octal(0) == "0" * 12

    def test_value(self):
        assert octal(0o777) == "000000000777"

    def test_truncates_to_word(self):
        assert octal(WORD_MASK + 1) == "0" * 12
