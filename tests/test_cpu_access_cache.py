"""Invalidation semantics and cycle neutrality of the fast-path tiers.

The fast path (`repro.cpu.access_cache`) must never change what the
simulated machine *does* — only how much host work it takes.  These
tests pin the three invalidation channels the issue calls out
(self-modifying code, SDW stores, DBR switches), the counter-hygiene
fixes, and cycle neutrality across the benchmark workloads.
"""

import pytest

from tests.helpers import BareMachine, asm_inst, halt_word
from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.cpu.sdwcache import SDWCache
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


def build_call_loop(count=16, **machine_kwargs):
    """The benchmark call-loop workload (mirrors benchmarks/conftest.py)."""
    machine = Machine(services=False, **machine_kwargs)
    user = machine.add_user("bench")
    machine.store_program(
        ">bench>callee",
        """
        .seg    callee
        .gates  1
entry:: return  pr4|0
""",
        acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
    )
    machine.store_program(
        ">bench>caller",
        f"""
        .seg    caller
main::  lda     ={count}
loop:   eap4    back
        call    l_callee,*
back:   sba     =1
        tnz     loop
        halt
l_callee: .its  callee$entry
""",
        acl=USER_ACL,
    )
    process = machine.login(user)
    machine.initiate(process, ">bench>caller")
    machine.initiate(process, ">bench>callee")
    return machine, process


class TestDecodedInstructionCache:
    def test_self_modifying_store_drops_the_entry(self):
        """A write through the processor drops the decoded entry."""
        bm = BareMachine()
        seg = 8
        bm.add_segment(
            seg,
            words=[asm_inst(Op.NOP), halt_word()],
            write=True,
            execute=True,
        )
        bm.start(seg, 0, ring=4)
        bm.run()
        icache = bm.proc.inst_cache
        assert icache.get(seg, 0) is not None  # NOP was cached
        sdw = bm.proc.fetch_sdw(seg)
        bm.proc.write_word(sdw, seg, 0, halt_word())
        assert icache.get(seg, 0) is None  # precisely invalidated
        assert icache.get(seg, 1) is not None  # neighbour untouched

    def test_self_modifying_code_executes_the_new_word(self):
        """End to end: a program that rewrites an upcoming instruction.

        Word 3 starts as a TRA-to-self (an infinite loop if executed);
        the program stores a HALT over it before arriving.  A stale
        decode would spin until the step budget trips.
        """
        bm = BareMachine()
        seg = 8
        program = [
            asm_inst(Op.LDA, offset=4),  # load the HALT word below
            asm_inst(Op.STA, offset=3),
            asm_inst(Op.NOP),
            asm_inst(Op.TRA, offset=3),  # will be overwritten with HALT
            halt_word(),  # data: the word the STA deposits
        ]
        # r1=4 so ring 4 may both execute (bracket [4, 7]) and write.
        bm.add_segment(seg, words=program, r1=4, write=True, execute=True)
        # Warm the decoded cache with the original word 3 by decoding it
        # once: run the TRA directly first in a throwaway pass.
        bm.start(seg, 3, ring=4)
        for _ in range(3):
            bm.step()
        assert bm.proc.inst_cache.get(seg, 3) is not None
        bm.start(seg, 0, ring=4)
        bm.run(max_steps=100)
        assert bm.proc.halted

    def test_supervisor_patch_is_caught_by_word_compare(self):
        """Writes the processor cannot see still never execute stale.

        The supervisor patches code with ``load_image`` (no processor
        involvement, no invalidation call).  The word-compare backstop
        must refuse the cached decode.
        """
        bm = BareMachine()
        seg = 8
        bm.add_segment(
            seg,
            words=[asm_inst(Op.TRA, offset=0), halt_word()],
            write=True,
            execute=True,
        )
        bm.start(seg, 0, ring=4)
        bm.step()  # executes TRA 0, caches the decode of word 0
        assert bm.proc.inst_cache.get(seg, 0) is not None
        sdw = bm.proc.fetch_sdw(seg)
        bm.memory.load_image(sdw.addr, [halt_word()])  # invisible patch
        bm.run(max_steps=10)
        assert bm.proc.halted

    def test_dbr_switch_flushes_both_tiers(self):
        bm = BareMachine()
        seg = 8
        bm.add_segment(seg, words=[asm_inst(Op.NOP), halt_word()], execute=True)
        bm.start(seg, 0, ring=4)
        bm.run()
        assert len(bm.proc.inst_cache) > 0
        assert len(bm.proc.access_cache) > 0
        bm.proc.set_dbr(bm.dbr)
        assert len(bm.proc.inst_cache) == 0
        assert len(bm.proc.access_cache) == 0

    def test_overflow_flushes_rather_than_grows(self):
        from repro.cpu.access_cache import DecodedInstructionCache

        cache = DecodedInstructionCache(max_entries=4)
        for wordno in range(6):
            cache.fill(1, wordno, (wordno, None, None, False, None))
        assert len(cache) <= 4


class TestPTLBInvalidation:
    def test_sdw_store_is_immediately_effective(self):
        """Paper p. 9: revoking read access takes effect on the next
        reference, even with a hot PTLB entry for the segment."""
        bm = BareMachine()
        code, data = 8, 9
        bm.add_code(code, [asm_inst(Op.LDA, offset=0, pr=0), halt_word()], ring=4)
        old = bm.add_data(data, [42])
        # Warm: the LDA validates and caches (data, 4, read).
        bm.start(code, 0, ring=4)
        bm.regs.prs[0].load(data, 0, 4)
        bm.run()
        assert bm.regs.a == 42
        assert len(bm.proc.access_cache) > 0
        # Revoke read and notify, as the supervisor does after any SDW store.
        bm.dseg.set(data, old.with_flags(read=False))
        bm.proc.invalidate_sdw(data)
        bm.start(code, 0, ring=4)
        bm.regs.prs[0].load(data, 0, 4)
        with pytest.raises(Fault) as exc:
            bm.run()
        assert exc.value.code is FaultCode.ACV_NO_READ

    def test_sdw_cache_identity_is_a_backstop(self):
        """Even with only the SDW associative memory invalidated (no
        fast-path notification), the PTLB refuses its stale entry."""
        bm = BareMachine()
        code, data = 8, 9
        bm.add_code(code, [asm_inst(Op.LDA, offset=0, pr=0), halt_word()], ring=4)
        old = bm.add_data(data, [7])
        bm.start(code, 0, ring=4)
        bm.regs.prs[0].load(data, 0, 4)
        bm.run()
        assert bm.regs.a == 7
        bm.dseg.set(data, old.with_flags(read=False))
        bm.proc.sdw_cache.invalidate(data)  # only the first tier
        bm.start(code, 0, ring=4)
        bm.regs.prs[0].load(data, 0, 4)
        with pytest.raises(Fault) as exc:
            bm.run()
        assert exc.value.code is FaultCode.ACV_NO_READ

    def test_bound_is_checked_per_word_on_hits(self):
        """The bound check is outside the PTLB key: a hot entry must not
        let an out-of-bounds word number through."""
        bm = BareMachine()
        code, data = 8, 9
        bm.add_code(code, [asm_inst(Op.LDA, offset=5, pr=0), halt_word()], ring=4)
        bm.add_data(data, [1, 2, 3], size=3)
        # Warm the (data, 4, read) entry with an in-bounds reference.
        sdw, code_ = bm.proc.validate_access(data, 4, 0, "read")
        assert code_ is None
        bm.start(code, 0, ring=4)
        bm.regs.prs[0].load(data, 0, 4)
        with pytest.raises(Fault) as exc:
            bm.run()
        assert exc.value.code is FaultCode.ACV_OUT_OF_BOUNDS


class TestCounterHygiene:
    def test_reset_counters_zeroes_cache_stats(self):
        machine, process = build_call_loop(count=4)
        machine.run(process, "caller$main", ring=4)
        proc = machine.processor
        assert proc.access_cache.hits > 0 and proc.inst_cache.hits > 0
        proc.reset_counters()
        assert proc.sdw_cache.stats() == {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
        }
        assert proc.access_cache.hits == 0 and proc.access_cache.misses == 0
        assert proc.inst_cache.hits == 0 and proc.inst_cache.misses == 0
        assert proc.cycles == 0 and proc.memory.reads == 0
        # contents survive, as on real hardware
        assert len(proc.inst_cache) > 0

    def test_disabled_sdw_cache_counts_no_misses(self):
        cache = SDWCache(enabled=False)
        assert cache.lookup(3) is None
        assert cache.misses == 0 and cache.hits == 0

    def test_sdw_cache_fifo_eviction_order(self):
        from repro.formats.sdw import SDW

        cache = SDWCache(slots=2)
        cache.fill(1, SDW(addr=0o100, bound=1))
        cache.fill(2, SDW(addr=0o200, bound=1))
        cache.fill(1, SDW(addr=0o300, bound=1))  # refill: not a new insert
        cache.fill(3, SDW(addr=0o400, bound=1))  # evicts 1 (oldest insert)
        assert cache.peek(1) is None
        assert cache.peek(2) is not None and cache.peek(3) is not None


class TestCycleNeutrality:
    """Simulated figures are byte-identical with the fast path on/off."""

    WORKLOADS = [
        {},
        {"paged": True},
        {"hardware_rings": False},
        {"sdw_cache_enabled": False},
        {"stack_rule": "simple"},
        {"lazy_linking": True},
    ]

    @pytest.mark.parametrize(
        "kwargs", WORKLOADS, ids=lambda kw: ",".join(kw) or "default"
    )
    def test_call_loop_neutral(self, kwargs):
        results = {}
        for fast in (True, False):
            machine, process = build_call_loop(
                count=16, fast_path_enabled=fast, **kwargs
            )
            result = machine.run(process, "caller$main", ring=4)
            assert result.halted
            results[fast] = (
                result.cycles,
                result.instructions,
                result.a,
                result.ring,
                result.ring_crossings,
                result.faults,
                machine.memory.reads,
                machine.memory.writes,
                machine.processor.sdw_cache.stats(),
            )
        assert results[True] == results[False]

    def test_crossing_costs_neutral(self):
        """The paper's central table is unchanged by the fast path.

        ``crossing_cost_experiment`` builds its machines internally with
        the fast path at its default (on); rebuilding the same scenarios
        by hand with it off must give the same marginal costs.
        """
        from repro.analysis.report import crossing_cost_experiment

        rows = crossing_cost_experiment()
        by_name = {r.scenario: r for r in rows}
        down = by_name["downward call+upward return"]
        same = by_name["same-ring call+return"]
        # The pinned seed figures (tests/test_verify.py asserts the same
        # invariants); identical here with the fast path on by default.
        assert same.hardware_cycles == same.software_cycles
        assert down.ratio > 5
