"""The Honeywell-645 software-rings baseline machine."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

PROGRAM = """
        .seg    prog
main::  lda     =42
        eap4    back
        call    l_write,*
back:   halt
l_write: .its   svc$write
"""

SAME_RING = """
        .seg    prog
main::  eap4    back
        call    l_peer,*
back:   halt
l_peer: .its    peer$entry
"""

PEER = """
        .seg    peer
        .gates  1
entry:: return  pr4|0
"""


def run(machine, sources):
    user = machine.add_user("u")
    for path, src, acl in sources:
        machine.store_program(path, src, acl=acl)
    process = machine.login(user)
    machine.initiate(process, sources[0][0])
    entry = sources[0][1].split(".seg")[1].split()[0] + "$main"
    return machine.run(process, entry, ring=4), machine, process


class TestFunctionalEquivalence:
    """Both machines compute the same results — only cost differs."""

    def test_gate_call_works_on_645(self, machine645):
        result, *_ = run(machine645, [(">t>prog", PROGRAM, USER_ACL)])
        assert result.halted
        assert result.console == [42]
        assert result.ring == 4

    def test_same_ring_call_identical_cost(self):
        cycles = {}
        for hw in (True, False):
            machine = Machine(hardware_rings=hw, services=False)
            result, *_ = run(
                machine,
                [
                    (">t>prog", SAME_RING, USER_ACL),
                    (">t>peer", PEER, USER_ACL),
                ],
            )
            assert result.halted
            cycles[hw] = result.cycles
        assert cycles[True] == cycles[False]

    def test_cross_ring_call_more_expensive_on_645(self):
        cycles = {}
        for hw in (True, False):
            machine = Machine(hardware_rings=hw)
            result, *_ = run(machine, [(">t>prog", PROGRAM, USER_ACL)])
            assert result.halted
            cycles[hw] = result.cycles
        assert cycles[False] > 2 * cycles[True]

    def test_crossings_counted_by_assist(self, machine645):
        result, machine, process = run(machine645, [(">t>prog", PROGRAM, USER_ACL)])
        assist = machine.supervisor._soft_rings[id(process)]
        assert assist.crossings_handled == 2  # down on CALL, up on RETURN

    def test_baseline_preserves_protection(self, machine645):
        """Software rings are slower, not weaker: a gate violation still
        faults on the 645 model."""
        bad = """
        .seg    prog
main::  eap4    back
        call    l_bad,*
back:   halt
l_bad:  .its    svc$write+5
"""
        # svc$write+5 is not expressible; target a non-gate word instead
        bad = bad.replace("svc$write+5", "svcdata$counter")
        user = machine645.add_user("u")
        machine645.store_program(">t>prog", bad, acl=USER_ACL)
        process = machine645.login(user)
        machine645.initiate(process, ">t>prog")
        with pytest.raises(Fault):
            machine645.run(process, "prog$main", ring=4)

    def test_crr_set_by_software_crossing(self, machine645):
        getring = PROGRAM.replace("svc$write", "svc$getring")
        result, *_ = run(machine645, [(">t>prog", getring, USER_ACL)])
        assert result.a == 4  # caller ring visible to the gate, as on 6180
