"""Unit tests for ACL entries and their projection onto SDWs."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec, build_sdw, sdw_fields_from_acl
from repro.errors import AccessDenied, BracketOrderError


class TestRingBracketSpec:
    def test_bracket_order_enforced(self):
        with pytest.raises(BracketOrderError):
            RingBracketSpec(r1=4, r2=2, r3=5)

    def test_brackets_property(self):
        spec = RingBracketSpec(r1=1, r2=2, r3=3)
        assert spec.brackets.execute_bracket == (1, 2)

    def test_procedure_constructor(self):
        spec = RingBracketSpec.procedure(4)
        assert (spec.r1, spec.r2, spec.r3) == (4, 4, 4)
        assert spec.read and spec.execute and not spec.write

    def test_procedure_with_gate_extension(self):
        spec = RingBracketSpec.procedure(0, callable_from=5, gate=3)
        assert (spec.r1, spec.r2, spec.r3) == (0, 0, 5)
        assert spec.gate == 3

    def test_procedure_with_wide_bracket(self):
        spec = RingBracketSpec.procedure(2, top=5, callable_from=6)
        assert (spec.r1, spec.r2, spec.r3) == (2, 5, 6)

    def test_data_constructor(self):
        spec = RingBracketSpec.data(4)
        assert (spec.r1, spec.r2, spec.r3) == (4, 4, 4)
        assert spec.read and spec.write and not spec.execute

    def test_data_read_only(self):
        spec = RingBracketSpec.data(4, write=False)
        assert not spec.write

    def test_data_wider_read(self):
        spec = RingBracketSpec.data(1, read_to=5)
        assert (spec.r1, spec.r2) == (1, 5)


class TestSoleOccupantRule:
    """Paper p. 37: a program in ring n cannot specify bracket values
    below n."""

    def test_allows_brackets_at_or_above_ring(self):
        RingBracketSpec(r1=4, r2=5, r3=6).check_settable_from(4)

    def test_refuses_r1_below_ring(self):
        with pytest.raises(AccessDenied):
            RingBracketSpec(r1=3, r2=5, r3=6).check_settable_from(4)

    def test_ring0_may_set_anything(self):
        RingBracketSpec(r1=0, r2=0, r3=0).check_settable_from(0)

    def test_refusal_message_names_the_ring(self):
        with pytest.raises(AccessDenied) as excinfo:
            RingBracketSpec(r1=0, r2=5, r3=6).check_settable_from(2)
        assert "ring 2" in str(excinfo.value)


class TestAclEntry:
    def test_exact_match(self):
        entry = AclEntry("alice", RingBracketSpec())
        assert entry.matches("alice")
        assert not entry.matches("bob")

    def test_wildcard_matches_everyone(self):
        entry = AclEntry("*", RingBracketSpec())
        assert entry.matches("alice") and entry.matches("bob")


class TestProjection:
    def test_sdw_fields_come_from_acl(self):
        """Paper p. 16: brackets, flags, and gate count all come from
        the matching ACL entry."""
        spec = RingBracketSpec(
            r1=1, r2=2, r3=3, read=True, write=False, execute=True, gate=5
        )
        fields = sdw_fields_from_acl(spec)
        assert fields == {
            "r1": 1,
            "r2": 2,
            "r3": 3,
            "read": True,
            "write": False,
            "execute": True,
            "gate": 5,
        }

    def test_build_sdw_combines_storage_facts(self):
        spec = RingBracketSpec.procedure(4)
        sdw = build_sdw(spec, addr=0o1000, bound=64)
        assert sdw.addr == 0o1000
        assert sdw.bound == 64
        assert sdw.present
        assert (sdw.r1, sdw.r2, sdw.r3) == (4, 4, 4)

    def test_build_sdw_paged(self):
        sdw = build_sdw(RingBracketSpec.data(4), addr=0o2000, bound=100, paged=True)
        assert sdw.paged
