"""Unit tests for the return-gate stack machinery itself."""

import pytest

from repro.cpu.registers import PointerRegister
from repro.errors import ConfigurationError
from repro.krnl.callret import (
    MAX_UPWARD_DEPTH,
    ReturnGateRecord,
    ReturnGateStack,
)


def record(slot, caller=4, callee=6):
    return ReturnGateRecord(
        slot=slot,
        caller_ring=caller,
        callee_ring=callee,
        return_segno=8,
        return_wordno=3,
        saved_prs=[PointerRegister() for _ in range(8)],
    )


class TestReturnGateStack:
    def test_lifo_discipline(self):
        stack = ReturnGateStack()
        stack.push(record(0))
        stack.push(record(1))
        assert stack.top().slot == 1
        assert stack.pop().slot == 1
        assert stack.top().slot == 0

    def test_empty_top_is_none(self):
        assert ReturnGateStack().top() is None

    def test_depth(self):
        stack = ReturnGateStack()
        assert stack.depth == 0
        stack.push(record(0))
        assert stack.depth == 1

    def test_overflow_refused(self):
        stack = ReturnGateStack()
        for slot in range(MAX_UPWARD_DEPTH):
            stack.push(record(slot))
        with pytest.raises(ConfigurationError):
            stack.push(record(MAX_UPWARD_DEPTH))

    def test_record_carries_saved_environment(self):
        r = record(0)
        assert len(r.saved_prs) == 8
        assert (r.return_segno, r.return_wordno) == (8, 3)
        assert r.caller_ring < r.callee_ring
