"""The grand integration test: a miniature computer utility.

Everything at once — multiple users, ACLs, a protected subsystem, the
layered supervisor services, upward calls, and preemptive time-sharing —
on one machine.  If the pieces compose, this passes; it is the closest
thing to "boot Multics" the reproduction has.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


@pytest.fixture
def utility():
    """A populated system: three users, shared library, audit subsystem."""
    machine = Machine()
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")
    carol = machine.add_user("carol")

    # alice's audited counter subsystem in ring 2, gates open to 5
    machine.store_data(
        ">udd>alice>vault",
        [0],
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.data(2))],
    )
    machine.store_program(
        ">udd>alice>vaultd",
        """
        .seg    vaultd
        .gates  1
deposit:: aos   l_vault,*      ; A is ignored; each call deposits 1
        lda     l_vault,*
        return  pr4|0
l_vault: .its   vault
""",
        owner=alice,
        acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5))],
    )

    # a shared ring-4 library, certified for rings 3-5 (wide bracket)
    machine.store_program(
        ">lib>double",
        """
        .seg    double
        .gates  1
entry:: ada     =0             ; A := 2*A via shift
        als     1
        return  pr4|0
""",
        acl=[AclEntry("*", RingBracketSpec(r1=3, r2=5, r3=5, read=True, execute=True, gate=1))],
    )

    # bob's worker: deposit twice, double the result, log to console
    machine.store_program(
        ">udd>bob>work",
        """
        .seg    work
main::  eap4    b1
        call    l_dep,*
b1:     eap4    b2
        call    l_dep,*
b2:     eap4    b3
        call    l_double,*
b3:     eap4    b4
        call    l_write,*
b4:     halt
l_dep:    .its  vaultd$deposit
l_double: .its  double$entry
l_write:  .its  svc$write
""",
        owner=bob,
        acl=USER_ACL,
    )

    # carol's worker: deposits in a loop
    machine.store_program(
        ">udd>carol>work2",
        """
        .seg    work2
main::  ldq     =3
again:  eap4    back
        call    l_dep,*
back:   lda     =0
        sta     pr6|2
        lda     pr6|2
        ldq     pr6|3          ; scratch shuffle to touch the stack
        eap4    done
        tra     next
next:   sba     =0
        aos     pr6|4
        lda     pr6|4
        sba     =3
        tze     done
        lda     =0
        tra     again
done:   halt
l_dep:  .its    vaultd$deposit
""",
        owner=carol,
        acl=USER_ACL,
    )
    return machine, alice, bob, carol


class TestComputerUtility:
    def test_everything_composes_under_time_sharing(self, utility):
        machine, alice, bob, carol = utility
        p_bob = machine.login(bob)
        p_carol = machine.login(carol)
        machine.initiate(p_bob, ">udd>bob>work")
        machine.initiate(p_carol, ">udd>carol>work2")

        scheduler = machine.make_scheduler(quantum=9)
        job_bob = scheduler.add(p_bob, "work$main", ring=4)
        job_carol = scheduler.add(p_carol, "work2$main", ring=4)
        scheduler.run()
        assert scheduler.all_halted

        vault = machine.supervisor.activate(">udd>alice>vault")
        deposits = machine.memory.peek_block(vault.placed.addr, 1)[0]
        # bob deposits 2, carol deposits 3 — all audited in ring 2
        assert deposits == 5
        # bob's console write is 2 * (his second deposit's reading)
        assert len(machine.console) == 1
        assert job_bob.quanta >= 1 and job_carol.quanta >= 1

    def test_cross_ring_depth_under_preemption(self, utility):
        """Preempting in the middle of cross-ring activity must be safe:
        a quantum of 1 instruction context-switches between every single
        instruction, including inside ring 2 and ring 0."""
        machine, alice, bob, carol = utility
        p_bob = machine.login(bob)
        machine.initiate(p_bob, ">udd>bob>work")
        scheduler = machine.make_scheduler(quantum=1)
        job = scheduler.add(p_bob, "work$main", ring=4)
        scheduler.run(max_quanta=100_000)
        assert job.halted
        vault = machine.supervisor.activate(">udd>alice>vault")
        assert machine.memory.peek_block(vault.placed.addr, 1)[0] == 2

    def test_acl_separation_still_enforced(self, utility):
        """carol cannot read the vault directly even while the
        subsystem is in active use by others."""
        machine, alice, bob, carol = utility
        p_carol = machine.login(carol)
        machine.store_program(
            ">udd>carol>peek",
            """
        .seg    peek
main::  lda     l_vault,*
        halt
l_vault: .its   vault
""",
            owner=carol,
            acl=USER_ACL,
        )
        machine.initiate(p_carol, ">udd>carol>peek")
        with pytest.raises(Fault):
            machine.run(p_carol, "peek$main", ring=4)

    def test_library_shared_across_rings(self, utility):
        """The wide-bracket library executes in whatever ring calls it
        (rings 3-5), the paper's certified-library case (p. 15)."""
        machine, alice, bob, carol = utility
        user = machine.add_user("dave")
        machine.store_program(
            ">udd>dave>use5",
            """
        .seg    use5
main::  lda     =21
        eap4    back
        call    l_double,*
back:   halt
""" + "l_double: .its double$entry\n",
            acl=[AclEntry("*", RingBracketSpec.procedure(5))],
        )
        process = machine.login(user)
        machine.initiate(process, ">udd>dave>use5")
        result = machine.run(process, "use5$main", ring=5)
        assert result.a == 42
        assert result.ring == 5
        assert result.ring_crossings == 0  # same-ring: library ran in 5
