"""Admission control units: token buckets, per-ring quotas, protocol.

Everything here runs against an injected fake clock, so the rate and
retry arithmetic is asserted exactly, not statistically.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serve.admission import (
    AdmissionController,
    RingPolicy,
    TokenBucket,
)
from repro.serve.catalog import build_program
from repro.serve.protocol import (
    ErrorCode,
    GatewayProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == 0.0
        wait = bucket.try_take()
        assert wait == pytest.approx(0.1)

    def test_refill_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        assert bucket.try_take() == 0.0
        assert bucket.try_take() > 0.0
        clock.advance(0.1)
        assert bucket.try_take() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1, burst=0)


class TestRingPolicy:
    def test_validates_fields(self):
        with pytest.raises(ConfigurationError):
            RingPolicy(rate=-1.0)
        with pytest.raises(ConfigurationError):
            RingPolicy(burst=0)
        with pytest.raises(ConfigurationError):
            RingPolicy(max_pending=0)

    def test_unlimited_rate_is_allowed(self):
        assert RingPolicy(rate=None).rate is None


class TestAdmissionController:
    def controller(self, clock=None, **policy):
        return AdmissionController(
            RingPolicy(**policy), clock=clock or FakeClock()
        )

    def test_quota_exhausted_rejects_with_retry_after(self):
        """The satellite case: pending slots gone -> queue_full."""
        admission = self.controller(max_pending=2, queue_retry_after=0.25)
        assert admission.admit(4).admitted
        assert admission.admit(4).admitted
        decision = admission.admit(4)
        assert not decision.admitted
        assert decision.reason == ErrorCode.QUEUE_FULL
        assert decision.retry_after == 0.25
        # releasing a slot re-opens the ring
        admission.release(4)
        assert admission.admit(4).admitted

    def test_rate_limit_rejects_with_retry_after(self):
        clock = FakeClock()
        admission = self.controller(clock=clock, rate=10.0, burst=1)
        assert admission.admit(4).admitted
        admission.release(4)
        decision = admission.admit(4)
        assert not decision.admitted
        assert decision.reason == ErrorCode.RATE_LIMITED
        assert decision.retry_after == pytest.approx(0.1)
        clock.advance(0.1)
        assert admission.admit(4).admitted

    def test_rings_are_isolated(self):
        admission = self.controller(max_pending=1)
        assert admission.admit(4).admitted
        assert not admission.admit(4).admitted
        assert admission.admit(5).admitted  # ring 5 has its own slots
        assert admission.pending(4) == 1
        assert admission.pending(5) == 1
        assert admission.total_pending == 2
        assert admission.pending_by_ring() == {4: 1, 5: 1}

    def test_per_ring_override(self):
        clock = FakeClock()
        admission = AdmissionController(
            RingPolicy(rate=None),
            per_ring={3: RingPolicy(rate=1.0, burst=1)},
            clock=clock,
        )
        # default ring: unlimited
        for _ in range(10):
            assert admission.admit(4).admitted
        # ring 3: one token only
        assert admission.admit(3).admitted
        assert not admission.admit(3).admitted
        assert admission.policy_for(3).rate == 1.0
        assert admission.policy_for(4).rate is None

    def test_release_without_admit_is_an_error(self):
        admission = self.controller()
        with pytest.raises(ConfigurationError):
            admission.release(4)


class TestProtocol:
    def test_roundtrip(self):
        message = {"verb": "call", "id": 7, "args": {"count": 3}}
        assert decode_line(encode(message).strip()) == message

    def test_rejects_non_object(self):
        with pytest.raises(GatewayProtocolError):
            decode_line(b"[1,2,3]")
        with pytest.raises(GatewayProtocolError):
            decode_line(b"not json at all")

    def test_rejects_oversized_line(self):
        with pytest.raises(GatewayProtocolError):
            decode_line(b"x" * (1 << 17))

    def test_response_shapes(self):
        assert ok_response(3, verb="hello") == {
            "ok": True,
            "id": 3,
            "verb": "hello",
        }
        rejected = error_response(ErrorCode.RATE_LIMITED, 3, retry_after=0.5)
        assert rejected == {
            "ok": False,
            "error": "rate_limited",
            "id": 3,
            "retry_after": 0.5,
        }


class TestCatalog:
    def test_variants_have_distinct_keys(self):
        a = build_program("call_loop", {"count": 2})
        b = build_program("call_loop", {"count": 3})
        c = build_program("call_loop", {"count": 2, "target_ring": 1})
        assert len({a.key, b.key, c.key}) == 3
        assert a.entry != b.entry

    def test_unknown_program(self):
        with pytest.raises(KeyError):
            build_program("mystery", {})

    def test_argument_validation(self):
        with pytest.raises(ConfigurationError):
            build_program("call_loop", {"count": 0})
        with pytest.raises(ConfigurationError):
            build_program("call_loop", {"count": "four"})
        with pytest.raises(ConfigurationError):
            build_program("call_loop", {"count": True})
        with pytest.raises(ConfigurationError):
            build_program("echo", {"value": -1})
        with pytest.raises(ConfigurationError):
            build_program("compute", {"bogus": 1})
        with pytest.raises(ConfigurationError):
            build_program("compute", "not a dict")

    def test_target_ring_bounded(self):
        with pytest.raises(ConfigurationError):
            build_program("call_loop", {"target_ring": 5})
