"""Failure injection: corrupted state, exhaustion, revocation, limits."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.errors import ConfigurationError
from repro.formats.sdw import SDW, SDW_W0
from repro.sim.machine import Machine

from tests.helpers import BareMachine, asm_inst, halt_word

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]


class TestCorruptedSDW:
    def test_bracket_order_corruption_is_a_machine_fault(self, bare):
        """Forged R1 > R2 in descriptor memory traps INVALID_SDW instead
        of crashing the host simulation."""
        from repro.cpu.isa import Op

        bare.add_code(8, [halt_word()], ring=4)
        sdw = bare.dseg.get(8)
        w0, w1 = sdw.pack()
        w0 = SDW_W0["R1"].insert(w0, 7)  # R1=7 > R2=4
        bare.memory.load_image(bare.dbr.sdw_addr(8), [w0, w1])
        bare.proc.invalidate_sdw(8)
        bare.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bare.step()
        assert excinfo.value.code is FaultCode.INVALID_SDW
        assert excinfo.value.segno == 8

    def test_stale_cache_would_mask_corruption_until_invalidated(self, bare):
        """The associative memory serves the old SDW until the
        supervisor invalidates — which is exactly why every SDW store
        must be followed by an invalidate."""
        from repro.cpu.isa import Op
        from repro.errors import MachineHalted

        bare.add_code(8, [asm_inst(Op.NOP), halt_word()], ring=4)
        bare.start(8, 0, ring=4)
        bare.step()  # fills the cache
        sdw = bare.dseg.get(8)
        w0, w1 = sdw.pack()
        w0 = SDW_W0["R1"].insert(w0, 7)
        bare.memory.load_image(bare.dbr.sdw_addr(8), [w0, w1])
        with pytest.raises(MachineHalted):
            bare.step()  # cached: the HALT still executes, no INVALID_SDW


class TestExhaustion:
    def test_activation_fails_cleanly_when_memory_exhausted(self):
        machine = Machine(memory_words=1 << 12, services=False)
        user = machine.add_user("u")
        machine.store_data(
            ">big", [0] * 3000, acl=[AclEntry("*", RingBracketSpec.data(4))]
        )
        process = machine.login(user)
        with pytest.raises(ConfigurationError):
            machine.initiate(process, ">big")

    def test_upward_call_nesting_limit(self, machine):
        """Recursive upward calls exhaust the return-gate stack and fail
        as a host configuration error, not silent corruption."""
        user = machine.add_user("u")
        machine.store_program(
            ">t>caller",
            """
        .seg    caller
main::  eap4    back
        call    l_high,*
back:   halt
l_high: .its    high$entry
""",
            acl=USER_ACL,
        )
        # the ring-6 callee calls itself upward... impossible (same ring);
        # instead ring-5 callee upward-calls a ring-6 callee recursively
        machine.store_program(
            ">t>high",
            """
        .seg    high
        .gates  1
entry:: eap4    again          ; never returns: re-calls itself via gate
again:  call    l_self,*
        return  pr4|0
l_self: .its    high$entry
""",
            acl=[AclEntry("*", RingBracketSpec.procedure(6))],
        )
        process = machine.login(user)
        machine.initiate(process, ">t>caller")
        with pytest.raises((ConfigurationError, Fault)):
            machine.run(process, "caller$main", ring=4, max_steps=5000)


class TestLiveRevocation:
    """Paper p. 9: SDW changes are immediately effective."""

    def _system(self, machine):
        alice = machine.add_user("alice")
        bob = machine.add_user("bob")
        machine.store_data(
            ">d",
            [5],
            owner=alice,
            acl=[AclEntry("*", RingBracketSpec.data(4))],
        )
        machine.store_program(
            ">t>looper",
            """
        .seg    looper
main::  lda     l_d,*
        tra     main
l_d:    .its    d
""",
            owner=bob,
            acl=USER_ACL,
        )
        process = machine.login(bob)
        machine.initiate(process, ">t>looper")
        machine.initiate(process, ">d")
        return alice, process

    def test_bracket_tightening_takes_effect_mid_run(self, machine):
        alice, process = self._system(machine)
        machine.start(process, "looper$main", ring=4)
        for _ in range(10):
            machine.processor.step()  # reading happily
        changed = machine.supervisor.update_access(
            ">d",
            alice,
            [AclEntry("*", RingBracketSpec.data(2))],  # read bracket now 2
            processors=[machine.processor],
        )
        assert changed == 1
        with pytest.raises(Fault) as excinfo:
            for _ in range(10):
                machine.processor.step()
        assert excinfo.value.code is FaultCode.ACV_READ_BRACKET

    def test_total_revocation_mid_run(self, machine):
        alice, process = self._system(machine)
        machine.start(process, "looper$main", ring=4)
        for _ in range(6):
            machine.processor.step()
        machine.supervisor.update_access(
            ">d",
            alice,
            [AclEntry("alice", RingBracketSpec.data(4))],  # bob removed
            processors=[machine.processor],
        )
        with pytest.raises(Fault) as excinfo:
            for _ in range(10):
                machine.processor.step()
        assert excinfo.value.code is FaultCode.MISSING_SEGMENT

    def test_without_cache_invalidate_change_is_delayed(self, machine):
        """The flip side: forgetting the invalidate leaves the stale SDW
        in the associative memory — the hazard the supervisor contract
        exists to prevent."""
        alice, process = self._system(machine)
        machine.start(process, "looper$main", ring=4)
        for _ in range(6):
            machine.processor.step()
        machine.supervisor.update_access(
            ">d", alice, [AclEntry("*", RingBracketSpec.data(2))], processors=[]
        )
        for _ in range(10):
            machine.processor.step()  # still running on the stale SDW
        assert machine.processor.registers.a == 5


class TestLiveGateChange:
    def test_gate_count_shrink_takes_effect_immediately(self, machine):
        """Revoking a gate (shrinking SDW.GATE) stops further calls to
        it on the very next attempt (paper p. 9's immediacy, applied to
        the gate list)."""
        alice = machine.add_user("alice")
        bob = machine.add_user("bob")
        machine.store_program(
            ">t>twogates",
            """
        .seg    twogates
        .gates  2
g0::    return  pr4|0
g1::    return  pr4|0
""",
            owner=alice,
            acl=[AclEntry("*", RingBracketSpec.procedure(2, callable_from=5, gate=2))],
        )
        machine.store_program(
            ">t>caller2",
            """
        .seg    caller2
main::  eap4    back
        call    l_g1,*
back:   halt
l_g1:   .its    twogates$g1
""",
            owner=bob,
            acl=USER_ACL,
        )
        process = machine.login(bob)
        machine.initiate(process, ">t>caller2")
        result = machine.run(process, "caller2$main", ring=4)
        assert result.halted  # gate 1 callable

        machine.supervisor.update_access(
            ">t>twogates",
            alice,
            [AclEntry("*", RingBracketSpec.procedure(2, callable_from=5, gate=1))],
            processors=[machine.processor],
        )
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "caller2$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_NOT_GATE
