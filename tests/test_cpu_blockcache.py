"""The superblock execution tier: building, coherence, and neutrality.

The block tier (`repro.cpu.blockcache`) may never change what the
simulated machine *does* — only how much host work one simulated
instruction costs.  These tests pin block construction and terminal
rules, the three coherence channels (self-modifying stores, SDW
eviction, wholesale invalidation), and bit-identical architectural
counters across block-on / fast-path-only / everything-off execution —
including under mid-block faults, timer runout, and asynchronous
events.
"""

import pytest

from tests.helpers import BareMachine, asm_inst, halt_word
from tests.test_cpu_access_cache import build_call_loop
from repro.cpu.blockcache import (
    HOT_THRESHOLD,
    K_CALL,
    K_EA,
    K_RETURN,
    K_SIMPLE,
    K_TERM_EA,
    K_XFER,
    MAX_BLOCK_LEN,
    Superblock,
    SuperblockCache,
    build_superblock,
)
from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.sim.metrics import MetricsSnapshot


def figures(machine, result):
    """Everything that must be identical across the host tiers."""
    return (
        result.a,
        result.q,
        result.ring,
        result.metrics.architectural(),
    )


class TestBlockBuilding:
    def build(self, words, start=0, bound=None):
        return build_superblock(
            list(words), 0, start, bound if bound is not None else len(words)
        )

    def test_straight_line_ends_at_transfer_inclusive(self):
        block = self.build(
            [
                asm_inst(Op.NOP),
                asm_inst(Op.LDA, offset=1, immediate=True),
                asm_inst(Op.TRA, offset=0),
                asm_inst(Op.NOP),  # behind the transfer: not covered
            ]
        )
        assert [e[3] for e in block.entries] == [K_SIMPLE, K_SIMPLE, K_XFER]
        assert block.last == 2

    def test_call_and_return_are_terminal_kinds(self):
        block = self.build([asm_inst(Op.CALL, offset=5, pr=0)])
        assert [e[3] for e in block.entries] == [K_CALL]
        block = self.build([asm_inst(Op.RETURN, offset=0, pr=4)])
        assert [e[3] for e in block.entries] == [K_RETURN]

    def test_indirect_ea_is_terminal(self):
        block = self.build(
            [
                asm_inst(Op.LDA, offset=3, indirect=True),
                asm_inst(Op.NOP),
            ]
        )
        assert [e[3] for e in block.entries] == [K_TERM_EA]

    def test_direct_ea_is_not_terminal(self):
        block = self.build(
            [asm_inst(Op.LDA, offset=3), asm_inst(Op.TRA, offset=0)]
        )
        assert [e[3] for e in block.entries] == [K_EA, K_XFER]

    def test_stops_before_halt_and_privileged(self):
        block = self.build([asm_inst(Op.NOP), halt_word(), asm_inst(Op.NOP)])
        assert len(block.entries) == 1
        block = self.build([asm_inst(Op.NOP), asm_inst(Op.RCU)])
        assert len(block.entries) == 1

    def test_unbuildable_first_word_gives_negative_block(self):
        block = self.build([halt_word()])
        assert block.entries == []
        assert block.last == 0  # still occupies its address

    def test_bounded_by_segment_and_max_len(self):
        words = [asm_inst(Op.NOP)] * (MAX_BLOCK_LEN + 10)
        assert len(self.build(words).entries) == MAX_BLOCK_LEN
        assert len(self.build(words, bound=5).entries) == 5


class TestSuperblockCache:
    def block_at(self, start, n=2):
        return Superblock(
            start, build_superblock([asm_inst(Op.NOP)] * n, 0, 0, n).entries
        )

    def test_invalidate_word_flips_valid_and_applies_backoff(self):
        cache = SuperblockCache()
        block = build_superblock([asm_inst(Op.NOP)] * 4, 0, 0, 4)
        cache.install(8, block)
        cache.invalidate_word(8, 2)  # inside [0, 3]
        assert block.valid is False
        assert cache.get(8, 0) is None
        assert cache.invalidations == 1
        # The rebuild backoff: the address must be dispatched more than
        # HOT_THRESHOLD further times before note_dispatch says hot.
        for _ in range(HOT_THRESHOLD):
            assert not cache.note_dispatch(8, 0)

    def test_invalidate_word_outside_block_is_a_no_op(self):
        cache = SuperblockCache()
        block = build_superblock([asm_inst(Op.NOP)] * 4, 0, 0, 4)
        cache.install(8, block)
        cache.invalidate_word(8, 7)
        assert block.valid is True
        assert cache.get(8, 0) is block

    def test_pause_segment_drops_and_stops_all_blocks(self):
        cache = SuperblockCache()
        one = build_superblock([asm_inst(Op.NOP)] * 2, 0, 0, 2)
        cache.install(8, one)
        cache.install(9, build_superblock([asm_inst(Op.NOP)], 0, 0, 1))
        cache.pause_segment(8)
        assert one.valid is False
        assert cache.get(8, 0) is None
        assert cache.get(9, 0) is not None

    def test_wholesale_invalidate(self):
        cache = SuperblockCache()
        cache.install(8, build_superblock([asm_inst(Op.NOP)], 0, 0, 1))
        cache.install(9, build_superblock([asm_inst(Op.NOP)], 0, 0, 1))
        cache.invalidate(8)
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0

    def test_note_dispatch_hotness(self):
        cache = SuperblockCache()
        assert not cache.note_dispatch(8, 0)
        assert cache.note_dispatch(8, 0)  # HOT_THRESHOLD == 2


class TestCycleNeutrality:
    """Simulated figures are bit-identical across all three tiers."""

    WORKLOADS = [
        {},
        {"paged": True},
        {"hardware_rings": False},
        {"sdw_cache_enabled": False},
        {"stack_rule": "simple"},
        {"lazy_linking": True},
    ]

    TIERS = [
        {"block_tier_enabled": True, "jit_tier_enabled": True},
        {"block_tier_enabled": True},
        {"block_tier_enabled": False},
        {"fast_path_enabled": False, "block_tier_enabled": False},
    ]

    @pytest.mark.parametrize(
        "kwargs", WORKLOADS, ids=lambda kw: ",".join(kw) or "default"
    )
    def test_call_loop_neutral(self, kwargs):
        results = []
        for tier in self.TIERS:
            machine, process = build_call_loop(count=16, **tier, **kwargs)
            result = machine.run(process, "caller$main", ring=4)
            assert result.halted
            results.append(figures(machine, result))
            if tier.get("block_tier_enabled") and not kwargs:
                # The loop is hot: the tier actually ran, it did not
                # just fall back to per-step execution.  (Under paging
                # or with the SDW associative memory disabled the tier
                # correctly declines to engage — entry validation
                # requires an unpaged SDW identity — and per-step
                # execution takes over; the figures still match.)
                assert machine.processor.block_cache.stats()["hits"] > 0
        assert all(r == results[0] for r in results[1:])


class TestSelfModifyingCode:
    """A store into an already-hot superblock (the satellite workload)."""

    def smc_program(self, count):
        """A loop that patches an instruction inside its own block.

        Word 4 starts as NOP; every iteration stores ``SBA =1`` over it,
        so from the second pass the loop decrements A by 2 per trip.  A
        stale block would keep executing the NOP and double the
        iteration (and instruction) count — any divergence from per-step
        execution is loud.
        """
        return [
            asm_inst(Op.LDA, offset=count, immediate=True),
            asm_inst(Op.LDQ, offset=7),  # loop: load the patch word
            asm_inst(Op.STQ, offset=4),  # rewrite word 4, mid-block
            asm_inst(Op.SBA, offset=1, immediate=True),
            asm_inst(Op.NOP),  # becomes SBA =1
            asm_inst(Op.TNZ, offset=1),
            halt_word(),
            asm_inst(Op.SBA, offset=1, immediate=True),  # the patch word
        ]

    def run_smc(self, count=40, **proc_kwargs):
        bm = BareMachine(**proc_kwargs)
        # r1=4: ring 4 may execute (bracket [4, 7]) and write the segment.
        bm.add_segment(8, words=self.smc_program(count), r1=4)
        bm.start(8, 0, ring=4)
        bm.run(max_steps=5000)
        assert bm.proc.halted
        return bm

    def test_block_invalidated_and_figures_unchanged(self):
        tiers = {
            "block": self.run_smc(),
            "fast": self.run_smc(block_tier=False),
            "slow": self.run_smc(fast_path=False, block_tier=False),
        }
        observed = {
            name: (
                bm.regs.a,
                bm.regs.q,
                bm.proc.cycles,
                bm.proc.stats.instructions,
                bm.proc.stats.faults,
                bm.memory.reads,
                bm.memory.writes,
                bm.proc.sdw_cache.stats(),
            )
            for name, bm in tiers.items()
        }
        assert observed["block"] == observed["fast"] == observed["slow"]
        stats = tiers["block"].proc.block_cache.stats()
        # The loop got hot (blocks executed) and the stores invalidated
        # the covering block rather than executing stale entries.
        assert stats["hits"] > 0
        assert stats["invalidations"] >= 1

    def test_patch_takes_effect(self):
        """The rewritten instruction really executes from trip one."""
        bm = self.run_smc(count=40)
        assert bm.regs.a == 0
        # The store lands before word 4 executes, so every trip
        # decrements A by 2: 20 trips of 5 instructions, plus LDA and
        # HALT.  A stale NOP would double the trip count.
        assert bm.proc.stats.instructions == 2 + 20 * 5


class TestFaultParity:
    """A fault from the middle of a hot block attributes identically."""

    def faulting_program(self, count):
        """A hot loop whose LDA goes out of bounds on the last trip.

        Word 7 holds an in-bounds offset; the loop overwrites it with an
        out-of-bounds one when A reaches zero... simpler: the loop reads
        through an index that eventually walks past the bound.
        """
        return [
            asm_inst(Op.LDA, offset=count, immediate=True),
            asm_inst(Op.ADA, offset=1, immediate=True),  # loop: A += 1
            asm_inst(Op.LDQ, offset=2, indexed=True),  # Q := word[2 + A]
            asm_inst(Op.TRA, offset=1),
        ]

    def run_until_fault(self, size=40, **proc_kwargs):
        bm = BareMachine(**proc_kwargs)
        bm.add_segment(
            8, words=self.faulting_program(0), size=size, r1=4
        )
        bm.start(8, 0, ring=4)
        with pytest.raises(Fault) as excinfo:
            bm.run(max_steps=5000)
        return bm, excinfo.value

    def test_out_of_bounds_fault_parity(self):
        tiers = {
            "block": self.run_until_fault(),
            "fast": self.run_until_fault(block_tier=False),
            "slow": self.run_until_fault(fast_path=False, block_tier=False),
        }
        observed = {
            name: (
                fault.code,
                fault.at_segno,
                fault.at_wordno,
                fault.cur_ring,
                bm.proc.cycles,
                bm.proc.stats.instructions,
                bm.regs.a,
                bm.regs.ipr.wordno,
                bm.memory.reads,
            )
            for name, (bm, fault) in tiers.items()
        }
        assert observed["block"] == observed["fast"] == observed["slow"]
        assert observed["block"][0] is FaultCode.ACV_OUT_OF_BOUNDS
        bm, _ = tiers["block"]
        assert bm.proc.block_cache.stats()["hits"] > 0


class TestTimerAndEventParity:
    """Ticks land between the same instructions with blocks on or off."""

    def spin_program(self):
        return [
            asm_inst(Op.LDA, offset=0, immediate=True),
            asm_inst(Op.ADA, offset=1, immediate=True),  # loop
            asm_inst(Op.NOP),
            asm_inst(Op.NOP),
            asm_inst(Op.TRA, offset=1),
        ]

    def run_with_timer(self, ticks, **proc_kwargs):
        bm = BareMachine(**proc_kwargs)
        bm.add_code(8, self.spin_program(), ring=4)
        bm.start(8, 0, ring=4)
        bm.proc.set_timer(ticks)
        with pytest.raises(Fault) as excinfo:
            bm.run(max_steps=5000)
        assert excinfo.value.code is FaultCode.TIMER
        return (
            bm.proc.stats.instructions,
            bm.proc.cycles,
            bm.regs.a,
            bm.regs.ipr.wordno,
        )

    @pytest.mark.parametrize("ticks", [1, 2, 7, 50, 51, 52, 53])
    def test_timer_fires_after_exact_count(self, ticks):
        block = self.run_with_timer(ticks)
        fast = self.run_with_timer(ticks, block_tier=False)
        slow = self.run_with_timer(
            ticks, fast_path=False, block_tier=False
        )
        assert block == fast == slow
        assert block[0] == ticks  # exactly `ticks` instructions retired

    @pytest.mark.parametrize("after", [1, 3, 49, 50, 51])
    def test_event_fires_after_exact_count(self, after):
        def run(**proc_kwargs):
            bm = BareMachine(**proc_kwargs)
            bm.add_code(8, self.spin_program(), ring=4)
            bm.start(8, 0, ring=4)
            bm.proc.schedule_event(after, FaultCode.IO_COMPLETION, "tick")
            with pytest.raises(Fault) as excinfo:
                bm.run(max_steps=5000)
            assert excinfo.value.code is FaultCode.IO_COMPLETION
            return (
                bm.proc.stats.instructions,
                bm.proc.cycles,
                bm.regs.a,
                bm.regs.ipr.wordno,
            )

        block = run()
        fast = run(block_tier=False)
        slow = run(fast_path=False, block_tier=False)
        assert block == fast == slow
        assert block[0] == after


class TestRunComposition:
    """``Machine.run(reset_counters=False)`` composes across runs."""

    def test_consecutive_runs_accumulate_and_attribute(self):
        machine, process = build_call_loop(count=8)
        first = machine.run(process, "caller$main", ring=4)
        second = machine.run(
            process, "caller$main", ring=4, reset_counters=False
        )
        # Cumulative counters kept growing...
        assert second.instructions == 2 * first.instructions
        assert second.cycles == 2 * first.cycles
        assert second.metrics.instructions == 2 * first.instructions
        # ...while the per-run delta attributes this run alone.
        assert second.run_metrics.instructions == first.instructions
        assert second.run_metrics.cycles == first.cycles
        # Architectural counters compose exactly; host-tier diagnostics
        # may also move during inter-run setup (block invalidations
        # from reloading the stack), so they are excluded.
        assert (
            second.metrics.architectural()
            == first.metrics.plus(second.run_metrics).architectural()
        )

    def test_reset_counters_default_still_isolates(self):
        machine, process = build_call_loop(count=8)
        first = machine.run(process, "caller$main", ring=4)
        second = machine.run(process, "caller$main", ring=4)
        assert second.instructions == first.instructions
        assert second.run_metrics == second.metrics

    def test_snapshot_arithmetic(self):
        zero = MetricsSnapshot.zero()
        one = zero.plus(zero)
        assert one == zero
        machine, process = build_call_loop(count=4)
        result = machine.run(process, "caller$main", ring=4)
        snap = result.metrics
        assert snap.minus(snap) == zero
        assert MetricsSnapshot.sum_of([snap, snap]) == snap.plus(snap)
        assert snap.minus(zero) == snap
