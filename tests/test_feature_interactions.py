"""Cross-feature interactions.

Each configuration axis (paging, lazy linking, software rings, the
interval timer, time-sharing) is tested in isolation elsewhere; these
tests turn several on at once and require identical architectural
results — the axes must compose.
"""

import itertools

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

PROGRAM = """
        .seg    prog
main::  lda     =5
        eap4    back
        call    l_add,*
back:   eap4    back2
        call    l_add,*
back2:  halt
l_add:  .its    adder$entry
"""

ADDER = """
        .seg    adder
        .gates  1
entry:: ada     =10
        return  pr4|0
"""


def run_config(**kwargs):
    machine = Machine(services=False, **kwargs)
    user = machine.add_user("u")
    machine.store_program(
        ">t>adder",
        ADDER,
        acl=[AclEntry("*", RingBracketSpec.procedure(0, callable_from=5))],
    )
    machine.store_program(">t>prog", PROGRAM, acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>prog")
    return machine.run(process, "prog$main", ring=4)


class TestAllCombinations:
    @pytest.mark.parametrize(
        "paged,lazy,hardware",
        list(itertools.product([False, True], repeat=3)),
    )
    def test_identical_results_across_axes(self, paged, lazy, hardware):
        result = run_config(
            paged=paged, lazy_linking=lazy, hardware_rings=hardware
        )
        assert result.halted
        assert result.a == 25
        assert result.ring == 4

    def test_every_feature_adds_cost_but_not_behaviour(self):
        baseline = run_config()
        loaded = run_config(paged=True, lazy_linking=True, hardware_rings=False)
        assert loaded.a == baseline.a
        assert loaded.cycles > baseline.cycles


class TestTimerWithScheduler:
    def test_timer_rearmed_across_dispatches(self, machine):
        """The supervisor's timer quantum and the scheduler's quantum
        coexist: timer runouts inside a job are serviced and the job
        still completes under time-sharing."""
        machine.supervisor.timer_quantum = 7
        machine.supervisor.timer_limit = 1000
        user = machine.add_user("u")
        for i in range(2):
            machine.store_program(
                f">t>w{i}",
                f"""
        .seg    w{i}
main::  lda     =30
loop:   sba     =1
        tnz     loop
        halt
""",
                acl=USER_ACL,
            )
        pa = machine.login(user)
        machine.initiate(pa, ">t>w0")
        pb = machine.login(machine.add_user("v"))
        machine.initiate(pb, ">t>w1")
        scheduler = machine.make_scheduler(quantum=13)
        ja = scheduler.add(pa, "w0$main", ring=4)
        jb = scheduler.add(pb, "w1$main", ring=4)
        scheduler.run()
        assert ja.halted and jb.halted
        assert machine.supervisor.timer_runouts(pa) > 0


class TestLazyPagedLinkage:
    def test_unsnapped_link_survives_page_eviction(self):
        """A lazily linked, paged segment: evicting the page holding an
        unsnapped link and paging it back must preserve the faulting
        word (the backing store holds it), and the snap then works."""
        machine = Machine(services=False, paged=True, lazy_linking=True)
        user = machine.add_user("u")
        machine.store_data(
            ">t>target", [99], acl=[AclEntry("*", RingBracketSpec.data(4))]
        )
        machine.store_program(
            ">t>prog",
            """
        .seg    prog
main::  lda     l_t,*
        halt
l_t:    .its    target
""",
            acl=USER_ACL,
        )
        process = machine.login(user)
        machine.initiate(process, ">t>prog")
        active = machine.supervisor.activate(">t>prog")
        active.placed.page_table.unmap_page(0)
        machine.processor.invalidate_sdw(active.segno)
        result = machine.run(process, "prog$main", ring=4)
        assert result.halted and result.a == 99
        assert machine.supervisor.linkage.snaps == 1
