"""Unit tests for ring brackets and the Figure 1/2/4/6 permission rules."""

import pytest

from repro.core.rings import (
    RingBrackets,
    check_execute,
    check_read,
    check_write,
    execute_bracket,
    gate_extension,
    in_bracket,
    nested_subset_holds,
    permission_table,
    read_bracket,
    write_bracket,
)
from repro.errors import BracketOrderError, FieldRangeError


class TestBracketRanges:
    def test_write_bracket_is_zero_to_r1(self):
        assert RingBrackets(2, 4, 6).write_bracket == (0, 2)

    def test_read_bracket_is_zero_to_r2(self):
        assert RingBrackets(2, 4, 6).read_bracket == (0, 4)

    def test_execute_bracket_is_r1_to_r2(self):
        assert RingBrackets(2, 4, 6).execute_bracket == (2, 4)

    def test_gate_extension_is_r2_plus_1_to_r3(self):
        assert RingBrackets(2, 4, 6).gate_extension == (5, 6)

    def test_gate_extension_empty_when_r2_equals_r3(self):
        lo, hi = RingBrackets(2, 4, 4).gate_extension
        assert lo > hi
        assert not RingBrackets(2, 4, 4).has_gate_extension()

    def test_has_gate_extension(self):
        assert RingBrackets(0, 0, 5).has_gate_extension()

    def test_order_violation_r1_r2(self):
        with pytest.raises(BracketOrderError):
            RingBrackets(5, 4, 6)

    def test_order_violation_r2_r3(self):
        with pytest.raises(BracketOrderError):
            RingBrackets(1, 4, 3)

    def test_field_width(self):
        with pytest.raises(FieldRangeError):
            RingBrackets(0, 0, 8)

    def test_functional_forms_match_methods(self):
        assert write_bracket(1, 2, 3) == (0, 1)
        assert read_bracket(1, 2, 3) == (0, 2)
        assert execute_bracket(1, 2, 3) == (1, 2)
        assert gate_extension(1, 2, 3) == (3, 3)

    def test_in_bracket(self):
        assert in_bracket(2, (0, 4))
        assert not in_bracket(5, (0, 4))
        assert not in_bracket(0, (1, 4))


class TestSingleReferenceChecks:
    """Paper p. 12: a process may reference a segment only if the ring
    of execution is within the proper bracket."""

    def test_write_allowed_inside_bracket(self):
        b = RingBrackets(3, 5, 7)
        for ring in range(4):
            assert b.write_allowed(ring)

    def test_write_refused_above_bracket(self):
        b = RingBrackets(3, 5, 7)
        for ring in range(4, 8):
            assert not b.write_allowed(ring)

    def test_read_allowed_inside_bracket(self):
        b = RingBrackets(3, 5, 7)
        for ring in range(6):
            assert b.read_allowed(ring)
        assert not b.read_allowed(6)

    def test_execute_has_lower_limit(self):
        """The deliberate non-monotonicity: execution below R1 refused
        (accidental-execution protection, paper p. 15)."""
        b = RingBrackets(3, 5, 7)
        assert not b.execute_allowed(2)
        assert b.execute_allowed(3)
        assert b.execute_allowed(5)
        assert not b.execute_allowed(6)

    def test_call_bracket_includes_gate_extension(self):
        b = RingBrackets(0, 0, 5)
        assert b.call_bracket_allowed(5)
        assert not b.call_bracket_allowed(6)

    def test_flag_gates_every_check(self):
        b = RingBrackets(0, 7, 7)
        assert not check_read(0, b, False)
        assert not check_write(0, b, False)
        assert not check_execute(0, b, False)
        assert check_read(0, b, True)
        assert check_write(0, b, True)
        assert check_execute(0, b, True)


class TestPermissionTable:
    def test_figure1_example(self):
        """Writable data segment: W bracket 0-4, R bracket 0-6, no E."""
        table = permission_table(RingBrackets(4, 6, 6), True, True, False)
        writes = [row["write"] for row in table]
        reads = [row["read"] for row in table]
        executes = [row["execute"] for row in table]
        assert writes == [True] * 5 + [False] * 3
        assert reads == [True] * 7 + [False]
        assert executes == [False] * 8

    def test_figure2_example(self):
        """Gated pure procedure: E bracket 3-4, gates from 5-6."""
        table = permission_table(RingBrackets(3, 4, 6), True, False, True)
        executes = [row["execute"] for row in table]
        gates = [row["gate"] for row in table]
        writes = [row["write"] for row in table]
        assert executes == [False] * 3 + [True] * 2 + [False] * 3
        assert gates == [False] * 5 + [True] * 2 + [False]
        assert writes == [False] * 8

    def test_gate_column_requires_execute_flag(self):
        table = permission_table(RingBrackets(3, 4, 6), True, False, False)
        assert not any(row["gate"] for row in table)

    def test_row_count_respects_nrings(self):
        table = permission_table(RingBrackets(0, 0, 0), True, True, True, nrings=4)
        assert len(table) == 4

    def test_ring_column_is_index(self):
        table = permission_table(RingBrackets(0, 7, 7), True, True, True)
        assert [row["ring"] for row in table] == list(range(8))


class TestNestedSubsetProperty:
    """Paper p. 11: ring m's capabilities are a subset of ring n's for
    m > n — the property enabling the whole hardware design."""

    def test_holds_for_every_bracket_triple(self):
        import itertools

        for r1, r2, r3 in itertools.combinations_with_replacement(range(8), 3):
            for rflag in (False, True):
                for wflag in (False, True):
                    assert nested_subset_holds(
                        RingBrackets(r1, r2, r3), rflag, wflag, True
                    )

    def test_detects_violation_in_forged_table(self):
        """Sanity: the checker is not vacuous."""
        # hand-build a table shape the real rules cannot produce
        rows = permission_table(RingBrackets(0, 0, 0), True, True, False)
        rows[3]["read"] = True  # read reappears above the bracket

        # simulate nested_subset_holds' core loop on the forged rows
        seen_false = False
        violated = False
        for row in rows:
            if not row["read"]:
                seen_false = True
            elif seen_false:
                violated = True
        assert violated
