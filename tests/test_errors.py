"""The host-level error hierarchy."""

import pytest

from repro.errors import (
    AccessDenied,
    AssemblyError,
    BracketOrderError,
    ConfigurationError,
    FieldRangeError,
    FileSystemError,
    LinkError,
    MachineHalted,
    ReproError,
    SegmentBoundsError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (
            FieldRangeError,
            SegmentBoundsError,
            ConfigurationError,
            BracketOrderError,
            AssemblyError,
            LinkError,
            FileSystemError,
            AccessDenied,
            MachineHalted,
        ):
            assert issubclass(cls, ReproError)

    def test_field_range_is_also_value_error(self):
        assert issubclass(FieldRangeError, ValueError)

    def test_segment_bounds_is_also_index_error(self):
        assert issubclass(SegmentBoundsError, IndexError)

    def test_bracket_order_is_configuration(self):
        assert issubclass(BracketOrderError, ConfigurationError)

    def test_one_except_clause_catches_all(self):
        with pytest.raises(ReproError):
            raise AssemblyError("bad", 3)


class TestPayloads:
    def test_field_range_error_fields(self):
        err = FieldRangeError("SDW.R1", 9, 3)
        assert err.field == "SDW.R1"
        assert err.value == 9
        assert err.width == 3
        assert "9" in str(err) and "SDW.R1" in str(err)

    def test_assembly_error_line_prefix(self):
        assert "line 7" in str(AssemblyError("oops", 7))

    def test_assembly_error_without_line(self):
        assert str(AssemblyError("oops")) == "oops"

    def test_machine_halted_carries_cycles(self):
        assert MachineHalted(cycles=42).cycles == 42
