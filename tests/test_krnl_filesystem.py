"""Unit tests for users and the ACL'd segment file system."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import AccessDenied, ConfigurationError, FileSystemError
from repro.krnl.filesystem import FileSystem, split_path
from repro.krnl.users import User, UserRegistry
from repro.mem.segment import SegmentImage


@pytest.fixture
def fs():
    return FileSystem()


@pytest.fixture
def alice():
    return User("alice")


@pytest.fixture
def bob():
    return User("bob")


def image(name="seg"):
    return SegmentImage.zeros(name, 4)


class TestUsers:
    def test_register_and_lookup(self):
        registry = UserRegistry()
        registry.register("alice")
        assert registry.lookup("alice").name == "alice"

    def test_duplicate_rejected(self):
        registry = UserRegistry()
        registry.register("alice")
        with pytest.raises(ConfigurationError):
            registry.register("alice")

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            UserRegistry().lookup("ghost")

    def test_administrator_flag(self):
        registry = UserRegistry()
        admin = registry.register("root", administrator=True)
        assert admin.administrator

    def test_contains_and_iter(self):
        registry = UserRegistry()
        registry.register("a")
        registry.register("b")
        assert "a" in registry
        assert sorted(u.name for u in registry) == ["a", "b"]

    def test_bad_user_name(self):
        with pytest.raises(ConfigurationError):
            User("has$dollar")


class TestPaths:
    def test_split(self):
        assert split_path(">a>b>c") == ["a", "b", "c"]

    def test_relative_rejected(self):
        with pytest.raises(FileSystemError):
            split_path("a>b")

    def test_root_rejected(self):
        with pytest.raises(FileSystemError):
            split_path(">")

    def test_dollar_component_rejected(self):
        with pytest.raises(FileSystemError):
            split_path(">a$b")


class TestCreateGetDelete:
    def test_create_and_get(self, fs, alice):
        fs.create(">udd>alice>seg", image(), alice)
        assert fs.get(">udd>alice>seg").owner == alice

    def test_duplicate_path_rejected(self, fs, alice):
        fs.create(">x", image(), alice)
        with pytest.raises(FileSystemError):
            fs.create(">x", image(), alice)

    def test_get_missing(self, fs):
        with pytest.raises(FileSystemError):
            fs.get(">nothing")

    def test_exists(self, fs, alice):
        fs.create(">x", image(), alice)
        assert fs.exists(">x")
        assert not fs.exists(">y")

    def test_default_acl_grants_owner(self, fs, alice):
        node = fs.create(">x", image(), alice)
        assert node.match("alice") is not None
        assert node.match("bob") is None

    def test_delete_by_owner(self, fs, alice):
        fs.create(">x", image(), alice)
        fs.delete(">x", alice)
        assert not fs.exists(">x")

    def test_delete_by_stranger_refused(self, fs, alice, bob):
        fs.create(">x", image(), alice)
        with pytest.raises(AccessDenied):
            fs.delete(">x", bob)

    def test_delete_by_administrator(self, fs, alice):
        admin = User("root", administrator=True)
        fs.create(">x", image(), alice)
        fs.delete(">x", admin)
        assert not fs.exists(">x")

    def test_list_dir(self, fs, alice):
        fs.create(">udd>alice>a", image("a"), alice)
        fs.create(">udd>alice>b", image("b"), alice)
        fs.create(">sys>c", image("c"), alice)
        assert list(fs.list_dir(">udd>alice")) == [">udd>alice>a", ">udd>alice>b"]
        assert len(list(fs.list_dir(">"))) == 3


class TestAccessControl:
    def test_check_access_matching_entry(self, fs, alice):
        spec = RingBracketSpec.data(4)
        fs.create(">x", image(), alice, acl=[AclEntry("alice", spec)])
        assert fs.check_access(">x", alice).spec == spec

    def test_check_access_no_match(self, fs, alice, bob):
        fs.create(">x", image(), alice, acl=[AclEntry("alice", RingBracketSpec())])
        with pytest.raises(AccessDenied):
            fs.check_access(">x", bob)

    def test_wildcard_entry(self, fs, alice, bob):
        fs.create(">x", image(), alice, acl=[AclEntry("*", RingBracketSpec())])
        fs.check_access(">x", bob)  # no exception

    def test_first_matching_entry_wins(self, fs, alice):
        """ACL order is priority: a specific entry can precede '*'."""
        narrow = RingBracketSpec.data(2)
        wide = RingBracketSpec.data(6)
        fs.create(
            ">x",
            image(),
            alice,
            acl=[AclEntry("alice", narrow), AclEntry("*", wide)],
        )
        assert fs.check_access(">x", alice).spec == narrow
        assert fs.check_access(">x", User("carol")).spec == wide

    def test_set_acl_owner_only(self, fs, alice, bob):
        fs.create(">x", image(), alice)
        with pytest.raises(AccessDenied):
            fs.set_acl(">x", bob, [AclEntry("*", RingBracketSpec())])

    def test_set_acl_replaces(self, fs, alice, bob):
        fs.create(">x", image(), alice)
        fs.set_acl(">x", alice, [AclEntry("bob", RingBracketSpec.data(4))])
        fs.check_access(">x", bob)
        with pytest.raises(AccessDenied):
            fs.check_access(">x", alice)

    def test_sole_occupant_rule_on_set_acl(self, fs, alice):
        """A ring-4 requester cannot grant ring-0 brackets (p. 37)."""
        fs.create(">x", image(), alice)
        with pytest.raises(AccessDenied):
            fs.set_acl(
                ">x",
                alice,
                [AclEntry("*", RingBracketSpec(r1=0, r2=0, r3=0))],
                requester_ring=4,
            )

    def test_sole_occupant_rule_allows_own_ring(self, fs, alice):
        fs.create(">x", image(), alice)
        fs.set_acl(
            ">x",
            alice,
            [AclEntry("*", RingBracketSpec(r1=4, r2=4, r3=4))],
            requester_ring=4,
        )

    def test_add_acl_entry_prepends(self, fs, alice, bob):
        fs.create(">x", image(), alice, acl=[AclEntry("*", RingBracketSpec.data(6))])
        fs.add_acl_entry(
            ">x", alice, AclEntry("bob", RingBracketSpec.data(2)), requester_ring=0
        )
        assert fs.check_access(">x", bob).spec.r1 == 2
