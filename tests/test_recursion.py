"""Recursion with real stack frames.

The paper's stack machinery (per-ring stack segments, the stack-base
pointer from CALL, pointer stores/loads through frames) exists to make
ordinary programming idioms work; this test runs a genuinely recursive
procedure — triangular numbers by self-call — with hand-built frames:

    frame[0] = saved return pointer (SPR4)
    frame[1] = saved argument
    PR6      = frame pointer, advanced 2 words per call

Restoring the return pointer with ``eap4 pr6|0,*`` exercises the
indirect-word path: the saved PR4 *is* an indirect word, and EAP through
it reconstructs the pointer including its ring field.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.errors import ConfigurationError
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

RECURSIVE_SUM = """
        .seg    rsum
        .gates  1
; entry: A = n.  exit: A = n + (n-1) + ... + 1 + 0.
sum::   tze     done           ; base case: n == 0
        spr4    pr6|0          ; save my return pointer
        sta     pr6|1          ; save my n
        eap6    pr6|2          ; push a frame
        sba     =1             ; argument n-1
        eap4    after
        call    sum            ; recurse (same segment: no gate check)
after:  eap6    pr6|-2         ; pop my frame
        ada     pr6|1          ; A += my n
        eap4    pr6|0,*        ; restore my return pointer
done:   return  pr4|0
"""

MAIN = """
        .seg    driver
main::  eap6    pr0|2          ; frames start above the stack header
        lda     =N
        eap4    back
        call    l_sum,*
back:   halt
l_sum:  .its    rsum$sum
"""


def run_sum(n, ring=4):
    machine = Machine(services=False)
    user = machine.add_user("u")
    machine.store_program(">t>rsum", RECURSIVE_SUM, acl=USER_ACL)
    machine.store_program(">t>driver", MAIN.replace("N", str(n)), acl=USER_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>driver")
    return machine.run(process, f"driver$main", ring=ring)


class TestRecursion:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (5, 15), (10, 55)])
    def test_triangular_numbers(self, n, expected):
        result = run_sum(n)
        assert result.halted
        assert result.a == expected

    def test_deep_recursion_until_stack_bound(self):
        """Frames eventually run off the 256-word stack segment — and
        the failure is a clean bound violation, not corruption."""
        from repro.cpu.faults import Fault, FaultCode

        with pytest.raises(Fault) as excinfo:
            run_sum(200)  # 200 frames * 2 words + header > 256
        assert excinfo.value.code is FaultCode.ACV_OUT_OF_BOUNDS

    def test_recursion_depth_within_stack(self):
        result = run_sum(100)
        assert result.a == 5050

    def test_return_pointer_survives_nesting(self):
        """After full unwinding, execution is back in the driver at
        ring 4 with the stack pointer where main put it."""
        result = run_sum(7)
        assert result.ring == 4
        assert result.a == 28
