"""Unit tests for descriptor segments and the DBR."""

import pytest

from repro.errors import SegmentBoundsError
from repro.formats.sdw import SDW
from repro.mem.descriptor import DBR, DescriptorSegment


class TestDBR:
    def test_sdw_addr_is_two_words_per_segment(self):
        dbr = DBR(addr=0o1000, bound=16)
        assert dbr.sdw_addr(0) == 0o1000
        assert dbr.sdw_addr(3) == 0o1006

    def test_stack_segno_simple_rule(self):
        """With STACK = 0 the refined rule degenerates to segno = ring."""
        dbr = DBR(stack=0)
        assert [dbr.stack_segno(r) for r in range(8)] == list(range(8))

    def test_stack_segno_dbr_rule(self):
        dbr = DBR(stack=32)
        assert dbr.stack_segno(4) == 36

    def test_pack_unpack_roundtrip(self):
        dbr = DBR(addr=0o7654321, bound=100, stack=16)
        assert DBR.unpack(*dbr.pack()) == dbr


class TestDescriptorSegment:
    def test_allocate_initialises_all_missing(self, memory):
        dseg, dbr = DescriptorSegment.allocate(memory, bound=8)
        for segno in range(8):
            assert not dseg.get(segno).present

    def test_dbr_matches_allocation(self, memory):
        dseg, dbr = DescriptorSegment.allocate(memory, bound=8, stack=4)
        assert dbr.addr == dseg.addr
        assert dbr.bound == 8
        assert dbr.stack == 4

    def test_set_get_roundtrip(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=8)
        sdw = SDW(addr=0o4000, bound=10, r1=1, r2=2, r3=3, read=True)
        dseg.set(5, sdw)
        assert dseg.get(5) == sdw

    def test_sdw_lives_in_physical_memory(self, memory):
        """Hardware and supervisor must see the same bits."""
        dseg, dbr = DescriptorSegment.allocate(memory, bound=8)
        sdw = SDW(addr=0o4000, bound=10, read=True, execute=True)
        dseg.set(2, sdw)
        w0, w1 = memory.peek_block(dbr.sdw_addr(2), 2)
        assert SDW.unpack(w0, w1) == sdw

    def test_segno_out_of_bound(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=8)
        with pytest.raises(SegmentBoundsError):
            dseg.get(8)

    def test_clear_marks_missing(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg.set(3, SDW(addr=0o100, bound=1))
        dseg.clear(3)
        assert not dseg.get(3).present

    def test_find_free(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg.set(0, SDW(addr=0o100, bound=1))
        assert dseg.find_free() == 1
        assert dseg.find_free(start=2) == 2

    def test_find_free_exhausted(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=2)
        dseg.set(0, SDW(addr=0o100, bound=1))
        dseg.set(1, SDW(addr=0o200, bound=1))
        assert dseg.find_free() is None

    def test_present_segments_iterates_only_present(self, memory):
        dseg, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg.set(1, SDW(addr=0o100, bound=1))
        dseg.set(6, SDW(addr=0o200, bound=1))
        segnos = [segno for segno, _ in dseg.present_segments()]
        assert segnos == [1, 6]

    def test_two_descriptor_segments_are_independent(self, memory):
        """Separate descriptor segments = separate virtual memories."""
        dseg_a, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg_b, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg_a.set(0, SDW(addr=0o100, bound=1, read=True))
        assert not dseg_b.get(0).present

    def test_shared_segment_between_virtual_memories(self, memory):
        """One segment can appear in several descriptor segments —
        the sharing story of paper p. 7."""
        dseg_a, _ = DescriptorSegment.allocate(memory, bound=8)
        dseg_b, _ = DescriptorSegment.allocate(memory, bound=8)
        sdw = SDW(addr=0o500, bound=4, read=True)
        dseg_a.set(1, sdw)
        dseg_b.set(3, sdw)
        memory.load_image(0o500, [42])
        assert dseg_a.get(1).addr == dseg_b.get(3).addr
