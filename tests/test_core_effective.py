"""Unit tests for the Figure 5 effective-ring computation."""

from repro.core.effective import (
    effective_ring_after_indirect,
    effective_ring_after_pr,
    effective_ring_of_chain,
    highest_influencer,
    initial_effective_ring,
)


class TestSteps:
    def test_initial_is_current_ring(self):
        assert initial_effective_ring(4) == 4

    def test_pr_raises(self):
        assert effective_ring_after_pr(4, 6) == 6

    def test_pr_never_lowers(self):
        """A pointer register with a lower ring cannot reduce the
        effective ring — the max rule is one-directional."""
        assert effective_ring_after_pr(4, 1) == 4

    def test_indirect_raises_via_ind_ring(self):
        assert effective_ring_after_indirect(2, 5, 0) == 5

    def test_indirect_raises_via_holder_write_top(self):
        """SDW.R1 of the segment holding the indirect word enters the
        max: the highest ring that could have written the word
        (paper pp. 26-27)."""
        assert effective_ring_after_indirect(2, 0, 6) == 6

    def test_indirect_never_lowers(self):
        assert effective_ring_after_indirect(5, 0, 0) == 5

    def test_indirect_takes_maximum_of_all_three(self):
        assert effective_ring_after_indirect(3, 4, 5) == 5
        assert effective_ring_after_indirect(3, 5, 4) == 5
        assert effective_ring_after_indirect(5, 3, 4) == 5


class TestChains:
    def test_no_pr_no_chain(self):
        assert effective_ring_of_chain(3) == 3

    def test_pr_only(self):
        assert effective_ring_of_chain(3, pr_ring=6) == 6

    def test_chain_accumulates(self):
        assert effective_ring_of_chain(1, chain=[(2, 0), (0, 5), (3, 3)]) == 5

    def test_chain_monotone_prefixes(self):
        """The effective ring is non-decreasing along a chain."""
        chain = [(2, 1), (0, 4), (3, 0), (7, 2)]
        rings = [
            effective_ring_of_chain(0, chain=chain[:i])
            for i in range(len(chain) + 1)
        ]
        assert rings == sorted(rings)

    def test_result_is_max_of_influences(self):
        chain = [(2, 1), (0, 4), (3, 0)]
        flat = [2, 1, 0, 4, 3, 0]
        assert effective_ring_of_chain(1, pr_ring=2, chain=chain) == max(
            [1, 2] + flat
        )

    def test_highest_influencer_alias(self):
        assert highest_influencer(2, pr_ring=3, chain=[(4, 1)]) == 4
