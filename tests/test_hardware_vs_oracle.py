"""Cross-checks: the live hardware path against the enumerated oracles.

The decision tables in :mod:`repro.analysis.decision_tables` are built
from the pure policy functions; these tests drive the *machine* through
sampled rows and verify the hardware produces the same outcome — the
policy and the silicon cannot drift apart.
"""

import itertools

import pytest

from repro.analysis.decision_tables import (
    ALL_BRACKETS,
    call_decision_table,
    fetch_decision_table,
    return_decision_table,
    summarize_outcomes,
)
from repro.core.gates import CallOutcome, ReturnOutcome
from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.errors import MachineHalted

from tests.helpers import BareMachine, asm_inst, halt_word, ind_word


class TestFetchOracle:
    def test_machine_matches_table_on_sampled_brackets(self):
        """Every 10th fetch-table row is replayed on the live machine."""
        rows = fetch_decision_table()[::10]
        for row in rows:
            bm = BareMachine()
            bm.add_segment(
                8,
                [halt_word()],
                r1=row["r1"],
                r2=row["r2"],
                r3=row["r3"],
                execute=row["execute_flag"],
                read=True,
                write=False,
            )
            bm.start(8, 0, ring=row["ring"])
            if row["allowed"]:
                with pytest.raises(MachineHalted):
                    bm.step()
            else:
                with pytest.raises(Fault) as excinfo:
                    bm.step()
                expected = (
                    FaultCode.ACV_NO_EXECUTE
                    if row["outcome"] == "no-execute-flag"
                    else FaultCode.ACV_EXECUTE_BRACKET
                )
                assert excinfo.value.code is expected, row


def _call_machine(row):
    """Build a machine realising one CALL-table row and execute the CALL."""
    bm = BareMachine()
    for ring in range(8):
        bm.add_segment(
            ring, size=16, r1=ring, r2=ring, r3=ring,
            read=True, write=True, execute=False,
        )
    target_segno = 8 if row["same_segment"] else 9
    cur = row["cur_ring"]
    # caller segment: wide bracket so any cur_ring can execute there
    caller_words = [
        asm_inst(Op.CALL, offset=14, indirect=True),
        halt_word(),
    ] + [halt_word()] * 10
    bm.add_segment(
        8,
        caller_words + [0, 0, ind_word(target_segno, row["wordno"], ring=row["eff_ring"])],
        r1=0,
        r2=7,
        r3=7,
        read=True,
        write=False,
        execute=True,
        gate=16 if row["same_segment"] else 0,
    )
    if not row["same_segment"]:
        bm.add_segment(
            9,
            [halt_word()] * 8,
            r1=row["r1"],
            r2=row["r2"],
            r3=row["r3"],
            read=True,
            write=False,
            execute=row["execute_flag"],
            gate=row["gate_count"],
        )
    else:
        # rebuild segment 8 with the row's brackets: the call is internal
        bm.add_segment(
            10, [0], read=True, write=True, execute=False,
        )
    bm.start(8, 0, ring=cur)
    return bm


class TestCallOracle:
    def test_machine_matches_table_on_sample(self):
        """Replay a stratified sample of inter-segment CALL rows."""
        rows = [
            r
            for r in call_decision_table()
            if not r["same_segment"] and r["eff_ring"] >= r["cur_ring"]
        ]
        # take a spread of rows covering every outcome
        by_outcome = {}
        for row in rows:
            by_outcome.setdefault(row["outcome"], []).append(row)
        sample = list(
            itertools.chain.from_iterable(v[:: max(1, len(v) // 8)] for v in by_outcome.values())
        )
        fault_map = {
            CallOutcome.FAULT_NO_EXECUTE.name: FaultCode.ACV_NO_EXECUTE,
            CallOutcome.FAULT_RING_RAISED.name: FaultCode.ACV_RING_RAISED,
            CallOutcome.FAULT_OUTSIDE_BRACKET.name: FaultCode.ACV_OUTSIDE_CALL_BRACKET,
            CallOutcome.FAULT_NOT_GATE.name: FaultCode.ACV_NOT_GATE,
            CallOutcome.TRAP_UPWARD_CALL.name: FaultCode.TRAP_UPWARD_CALL,
        }
        assert len(sample) > 40  # roughly 8 rows per distinct outcome
        for row in sample:
            bm = _call_machine(row)
            outcome = row["outcome"]
            if outcome in (
                CallOutcome.SAME_RING.name,
                CallOutcome.DOWNWARD.name,
            ):
                bm.step()  # the CALL itself
                assert bm.regs.ipr.ring == row["new_ring"], row
                assert bm.regs.ipr.segno == 9
            else:
                with pytest.raises(Fault) as excinfo:
                    bm.step()
                assert excinfo.value.code is fault_map[outcome], row

    def test_call_table_outcome_census_is_stable(self):
        """The exhaustive census is a fixed point of the architecture;
        any change to the decision procedure shows up here."""
        census = summarize_outcomes(call_decision_table())
        assert sum(census.values()) == len(ALL_BRACKETS) * 2 * 8 * 8 * 2 * 2

    def test_return_table_census_is_stable(self):
        census = summarize_outcomes(return_decision_table())
        assert sum(census.values()) == len(ALL_BRACKETS) * 2 * 8 * 8


class TestReturnOracle:
    def test_machine_matches_table_on_sample(self):
        rows = [
            r for r in return_decision_table() if r["eff_ring"] >= r["cur_ring"]
        ]
        sample = rows[:: max(1, len(rows) // 200)]
        fault_map = {
            ReturnOutcome.FAULT_NO_EXECUTE.name: FaultCode.ACV_NO_EXECUTE,
            ReturnOutcome.FAULT_EXECUTE_BRACKET.name: FaultCode.ACV_EXECUTE_BRACKET,
        }
        for row in sample:
            bm = BareMachine()
            cur, eff = row["cur_ring"], row["eff_ring"]
            bm.add_segment(
                8,
                [asm_inst(Op.RETURN, offset=0, pr=4)] + [halt_word()] * 3,
                r1=0, r2=7, r3=7, read=True, write=False, execute=True,
            )
            bm.add_segment(
                9,
                [halt_word()] * 4,
                r1=row["r1"], r2=row["r2"], r3=row["r3"],
                read=True, write=False, execute=row["execute_flag"],
            )
            bm.start(8, 0, ring=cur)
            bm.regs.pr(4).load(9, 0, eff)
            outcome = row["outcome"]
            if outcome in (ReturnOutcome.SAME_RING.name, ReturnOutcome.UPWARD.name):
                bm.step()
                assert bm.regs.ipr.ring == row["new_ring"], row
            else:
                with pytest.raises(Fault) as excinfo:
                    bm.step()
                assert excinfo.value.code is fault_map[outcome], row
