"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.mem.physical import PhysicalMemory
from repro.sim.machine import Machine

from tests.helpers import BareMachine


@pytest.fixture
def memory() -> PhysicalMemory:
    """A fresh 64K-word physical memory."""
    return PhysicalMemory(1 << 16)


@pytest.fixture
def bare() -> BareMachine:
    """A bare hardware machine (faults propagate to the test)."""
    return BareMachine()


@pytest.fixture
def machine() -> Machine:
    """A full system with supervisor and standard services."""
    return Machine()


@pytest.fixture
def machine645() -> Machine:
    """The software-rings (Honeywell 645) baseline system."""
    return Machine(hardware_rings=False)
