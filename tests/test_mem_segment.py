"""Unit tests for host-side segment images."""

import pytest

from repro.errors import SegmentBoundsError
from repro.mem.segment import LinkRequest, SegmentImage


class TestSegmentImage:
    def test_zeros(self):
        image = SegmentImage.zeros("data", 10)
        assert len(image) == 10
        assert image.word(9) == 0

    def test_from_values_truncates(self):
        image = SegmentImage.from_values("d", [1 << 40])
        assert image.word(0) == (1 << 40) & (2**36 - 1)

    def test_bound_matches_length(self):
        assert SegmentImage.zeros("d", 5).bound == 5

    def test_word_bounds(self):
        image = SegmentImage.zeros("d", 3)
        with pytest.raises(SegmentBoundsError):
            image.word(3)

    def test_set_word(self):
        image = SegmentImage.zeros("d", 3)
        image.set_word(1, 42)
        assert image.word(1) == 42

    def test_patch_offset_keeps_high_bits(self):
        image = SegmentImage.from_values("d", [(0o123 << 27) | 0o777])
        image.patch_offset(0, 0o42)
        assert image.word(0) == (0o123 << 27) | 0o42

    def test_entry_lookup(self):
        image = SegmentImage("p", words=[0, 0], entries={"main": 1})
        assert image.entry("main") == 1

    def test_entry_missing_lists_available(self):
        image = SegmentImage("p", words=[0], entries={"a": 0})
        with pytest.raises(SegmentBoundsError) as excinfo:
            image.entry("b")
        assert "'a'" in str(excinfo.value)

    def test_gates_are_entries_below_gate_count(self):
        image = SegmentImage(
            "p",
            words=[0] * 5,
            entries={"g0": 0, "g1": 1, "inner": 4},
            gate_count=2,
        )
        assert image.gates() == [("g0", 0), ("g1", 1)]

    def test_link_request_defaults(self):
        link = LinkRequest(wordno=3, symbol="svc$write")
        assert link.field == "offset"
        assert link.ring is None
