"""Functional equivalence of the two machines (hypothesis-driven).

The 645 baseline and the hardware-rings machine must compute *exactly*
the same results on any program — software rings are slower, never
different.  A constrained random program generator builds call-chains
across rings and checks final state on both machines, and across the
paged/unpaged and cached/uncached configuration axes too.
"""

from hypothesis import given, settings, strategies as st

from repro.core.acl import AclEntry, RingBracketSpec
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

#: callee rings to mix in a chain (downward targets only: upward calls
#: differ legitimately in PR side effects between machines)
callee_rings = st.lists(
    st.sampled_from([0, 1, 2, 3, 4]), min_size=1, max_size=4
)
adds = st.lists(st.integers(0, 1000), min_size=1, max_size=4)




def build_program(machine, rings, addends):
    """caller in ring 4 calls a chain of gated callees; callee i runs in
    ring rings[i] and adds addends[i] to A."""
    user = machine.add_user("u")
    for index, (ring, add) in enumerate(zip(rings, addends)):
        spec = (
            RingBracketSpec.procedure(4)
            if ring == 4
            else RingBracketSpec.procedure(ring, callable_from=5)
        )
        machine.store_program(
            f">t>callee{index}",
            f"""
        .seg    callee{index}
        .gates  1
entry:: ada     ={add}
        return  pr4|0
""",
            acl=[AclEntry("*", spec)],
        )
    calls = "".join(
        f"""
        eap4    back{index}
        call    l_c{index},*
back{index}: nop
"""
        for index in range(len(rings))
    )
    links = "".join(
        f"l_c{index}: .its callee{index}$entry\n" for index in range(len(rings))
    )
    machine.store_program(
        ">t>caller",
        f"""
        .seg    caller
main::  lda     =1
{calls}
        halt
{links}
""",
        acl=USER_ACL,
    )
    process = machine.login(user)
    machine.initiate(process, ">t>caller")
    return process


def run_config(rings, addends, **machine_kwargs):
    machine = Machine(services=False, **machine_kwargs)
    process = build_program(machine, rings, addends)
    result = machine.run(process, "caller$main", ring=4)
    assert result.halted
    return result


class TestMachineEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(callee_rings, adds)
    def test_645_computes_identically(self, rings, addends):
        addends = (addends * len(rings))[: len(rings)]
        hardware = run_config(rings, addends, hardware_rings=True)
        software = run_config(rings, addends, hardware_rings=False)
        assert hardware.a == software.a == 1 + sum(addends)
        assert hardware.ring == software.ring == 4
        assert hardware.console == software.console
        # (the crossing *counter* differs by design: on the 645 the
        # crossings happen inside the trap handler, not in CALL/RETURN)
        # and the 645 is never cheaper
        assert software.cycles >= hardware.cycles

    @settings(max_examples=10, deadline=None)
    @given(callee_rings, adds)
    def test_paging_computes_identically(self, rings, addends):
        addends = (addends * len(rings))[: len(rings)]
        plain = run_config(rings, addends, paged=False)
        paged = run_config(rings, addends, paged=True)
        assert plain.a == paged.a
        assert plain.ring_crossings == paged.ring_crossings
        assert paged.cycles > plain.cycles

    @settings(max_examples=10, deadline=None)
    @given(callee_rings, adds)
    def test_sdw_cache_computes_identically(self, rings, addends):
        addends = (addends * len(rings))[: len(rings)]
        cached = run_config(rings, addends, sdw_cache_enabled=True)
        uncached = run_config(rings, addends, sdw_cache_enabled=False)
        assert cached.a == uncached.a
        assert cached.ring_crossings == uncached.ring_crossings
        assert uncached.cycles > cached.cycles

    @settings(max_examples=10, deadline=None)
    @given(callee_rings, adds)
    def test_stack_rules_compute_identically(self, rings, addends):
        addends = (addends * len(rings))[: len(rings)]
        simple = run_config(rings, addends, stack_rule="simple")
        dbr = run_config(rings, addends, stack_rule="dbr")
        assert simple.a == dbr.a
        assert simple.cycles == dbr.cycles
