"""Upward calls and downward returns through the software assist."""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.faults import Fault, FaultCode
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]
HIGH_ACL = [AclEntry("*", RingBracketSpec.procedure(6))]


def build(machine, caller_src, callee_src, callee_acl=None):
    user = machine.add_user("u")
    machine.store_program(">t>caller", caller_src, acl=USER_ACL)
    machine.store_program(">t>high", callee_src, acl=callee_acl or HIGH_ACL)
    process = machine.login(user)
    machine.initiate(process, ">t>caller")
    return process


CALLER = """
        .seg    caller
main::  lda     =7
        eap4    back
        call    l_high,*
back:   sta     pr6|2
        halt
l_high: .its    high$entry
"""

CALLEE = """
        .seg    high
        .gates  1
entry:: ada     =1
        return  pr4|0
"""


class TestUpwardCall:
    def test_roundtrip_returns_to_caller_ring(self, machine):
        process = build(machine, CALLER, CALLEE)
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        assert result.ring == 4
        assert result.a == 8

    def test_callee_executes_in_bracket_bottom_ring(self, machine):
        src = """
        .seg    high
        .gates  1
entry:: lda     =1
        sta     pr0|3          ; prove we can use OUR ring's stack
        return  pr4|0
"""
        process = build(machine, CALLER, src)
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        # the ring-6 stack received the store
        stack6 = process.dseg.get(process.stack_segno(6))
        assert machine.memory.peek_block(stack6.addr + 3, 1) == [1]

    def test_upward_call_still_needs_gate(self, machine):
        """The gate check precedes the upward-call trap."""
        no_gate_callee = """
        .seg    high
filler: nop
entry:: return  pr4|0
"""
        # no .gates: gate_count = 0, entry at word 1
        process = build(machine, CALLER, no_gate_callee)
        with pytest.raises(Fault) as excinfo:
            machine.run(process, "caller$main", ring=4)
        assert excinfo.value.code is FaultCode.ACV_NOT_GATE

    def test_nested_upward_calls(self, machine):
        """ring 4 -> ring 5 -> ring 6, unwound in LIFO order through the
        stacked return gates."""
        user = machine.add_user("u")
        machine.store_program(">t>caller", """
        .seg    caller
main::  lda     =0
        eap4    back
        call    l_mid,*
back:   halt
l_mid:  .its    mid$entry
""", acl=USER_ACL)
        machine.store_program(">t>mid", """
        .seg    mid
        .gates  1
entry:: eap6    pr0|0
        spr4    pr6|1
        ada     =10
        eap4    back
        call    l_top,*
back:   eap4    pr6|1,*
        return  pr4|0
l_top:  .its    top$entry
""", acl=[AclEntry("*", RingBracketSpec.procedure(5))])
        machine.store_program(">t>top", """
        .seg    top
        .gates  1
entry:: ada     =100
        return  pr4|0
""", acl=[AclEntry("*", RingBracketSpec.procedure(6))])
        process = machine.login(user)
        machine.initiate(process, ">t>caller")
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        assert result.a == 110
        assert result.ring == 4

    def test_wrong_return_gate_slot_is_violation(self, machine):
        """Only the top of the return-gate stack is usable: a callee
        returning through a stale slot gets an access violation."""
        process = build(machine, CALLER, CALLEE)
        machine.start(process, "caller$main", ring=4)
        # run until the upward call has happened (we're in ring 6)
        for _ in range(100):
            machine.processor.step()
            if machine.processor.registers.ipr.ring == 6:
                break
        assert machine.processor.registers.ipr.ring == 6
        # forge PR4 to name slot 7 of the return-gate segment
        assist = machine.supervisor.assist_for(process)
        machine.processor.registers.pr(4).load(assist.gate_segno, 7, 6)
        with pytest.raises(Fault) as excinfo:
            for _ in range(10):
                machine.processor.step()
        assert excinfo.value.code is FaultCode.ACV_NO_EXECUTE

    def test_caller_prs_restored_after_downward_return(self, machine):
        """The assist restores the caller's pointer registers so its
        pointers validate at the original rings again."""
        process = build(machine, CALLER, CALLEE)
        result = machine.run(process, "caller$main", ring=4)
        assert result.halted
        regs = machine.processor.registers
        # PR6 (stack pointer) is back to the ring-4 stack with ring 4
        assert regs.pr(6).ring == 4
        assert regs.pr(6).segno == process.stack_segno(4)

    def test_return_gate_stack_empties(self, machine):
        process = build(machine, CALLER, CALLEE)
        machine.run(process, "caller$main", ring=4)
        assert machine.supervisor.assist_for(process).stack.depth == 0
