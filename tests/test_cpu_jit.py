"""The trace-compile tier: engagement, coherence edges, and exactness.

The jit tier (`repro.cpu.jit`) compiles hot superblock heads into
specialized Python closures with batched counter accounting.  Like the
tiers below it, it may never change what the simulated machine *does*.
These tests pin the coherence edges the issue calls out — a
self-modifying write landing inside a compiled trace, SDW eviction
under associative-memory churn, timer/event expiry at every offset
around a trace-iteration boundary — plus snapshot/restore parity with
the tier enabled, the fast-gate entry path, and the
``REPRO_JIT_PARITY`` co-execution backstop.
"""

import pytest

from tests.helpers import BareMachine, asm_inst, halt_word
from tests.test_cpu_access_cache import build_call_loop
from repro.cpu.faults import Fault, FaultCode
from repro.cpu.isa import Op
from repro.cpu.jit import (
    HOT_THRESHOLD,
    MAX_TRACE_LEN,
    TraceCache,
    WARMUP_CHUNK,
)
from repro.state.snapshot import restore_machine, snapshot_machine

#: Enough call-loop iterations that the head passes warm-up (four
#: dispatches of up to WARMUP_CHUNK superblock instructions each) and
#: the compiled trace then carries the bulk of the run.
HOT_COUNT = 2000


def figures(result):
    """Everything that must be identical across the host tiers."""
    return (
        result.a,
        result.q,
        result.ring,
        result.halted,
        result.metrics.architectural(),
    )


def run_call_loop(count=HOT_COUNT, **machine_kwargs):
    machine, process = build_call_loop(count=count, **machine_kwargs)
    result = machine.run(process, "caller$main", ring=4)
    return machine, result


ALL_TIERS = [
    {"block_tier_enabled": True, "jit_tier_enabled": True},
    {"block_tier_enabled": True},
    {"block_tier_enabled": False},
    {"fast_path_enabled": False, "block_tier_enabled": False},
]


class TestEngagement:
    def test_call_loop_compiles_and_carries_the_run(self):
        machine, result = run_call_loop(jit_tier_enabled=True)
        assert result.halted
        stats = machine.processor.jit_cache.stats()
        assert stats["compiled"] >= 1
        assert stats["hits"] >= 1
        # The trace executed the bulk of the workload, not a sliver.
        assert stats["jit_instructions"] > result.instructions // 2

    def test_block_tier_still_runs_during_warmup(self):
        machine, result = run_call_loop(jit_tier_enabled=True)
        assert machine.processor.block_cache.stats()["hits"] > 0

    def test_jit_requires_block_tier(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_call_loop(
                block_tier_enabled=False, jit_tier_enabled=True
            )

    def test_disabled_by_default(self):
        machine, result = run_call_loop(count=64)
        assert machine.processor.jit_cache.stats() == {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "compiled": 0,
            "jit_instructions": 0,
            "entries": 0,
        }


class TestNeutrality:
    """Architectural figures are bit-identical across all four tiers."""

    WORKLOADS = [
        {},
        {"paged": True},
        {"hardware_rings": False},
        {"sdw_cache_enabled": False},
        {"stack_rule": "simple"},
        {"lazy_linking": True},
    ]

    @pytest.mark.parametrize(
        "kwargs", WORKLOADS, ids=lambda kw: ",".join(kw) or "default"
    )
    def test_call_loop_neutral(self, kwargs):
        results = []
        for tier in ALL_TIERS:
            machine, result = run_call_loop(**tier, **kwargs)
            assert result.halted
            results.append(figures(result))
            if tier.get("jit_tier_enabled") and not kwargs:
                assert machine.processor.jit_cache.stats()["hits"] > 0
        assert all(r == results[0] for r in results[1:])

    @pytest.mark.parametrize("count", [1, 2, 3, 100, HOT_COUNT])
    def test_every_count_matches_block_tier(self, count):
        jit = run_call_loop(count=count, jit_tier_enabled=True)[1]
        block = run_call_loop(count=count)[1]
        assert figures(jit) == figures(block)


class TestSelfModifyingCode:
    """A store landing inside an already-compiled trace."""

    def smc_loop(self, count):
        """Every iteration rewrites word 4 — which sits inside the
        loop body the trace compiles — with the SBA already there, so
        the *figures* never change but the coherence machinery fires
        on every pass: each compiled execution must stop right after
        its own invalidating store."""
        return [
            asm_inst(Op.LDA, offset=count, immediate=True),
            asm_inst(Op.LDQ, offset=7),  # loop: load the patch word
            asm_inst(Op.STQ, offset=4),  # rewrite word 4, mid-trace
            asm_inst(Op.NOP),
            asm_inst(Op.SBA, offset=1, immediate=True),  # the target
            asm_inst(Op.TNZ, offset=1),
            halt_word(),
            asm_inst(Op.SBA, offset=1, immediate=True),  # the patch
        ]

    def run_smc(self, count=400, **proc_kwargs):
        bm = BareMachine(**proc_kwargs)
        bm.add_segment(8, words=self.smc_loop(count), r1=4)
        bm.start(8, 0, ring=4)
        bm.run(max_steps=20000)
        assert bm.proc.halted
        return bm

    def observed(self, bm):
        return (
            bm.regs.a,
            bm.regs.q,
            bm.proc.stats.instructions,
            bm.proc.cycles,
            bm.proc.memory.reads,
            bm.proc.memory.writes,
            bm.proc.sdw_cache.hits,
            bm.proc.sdw_cache.misses,
        )

    def test_store_inside_trace_invalidates_and_figures_match(self):
        jit = self.run_smc(jit_tier=True)
        stats = jit.proc.jit_cache.stats()
        assert stats["compiled"] >= 1
        assert stats["invalidations"] >= 1  # its own store tore it down
        tiers = {
            "block": self.run_smc(),
            "fast": self.run_smc(block_tier=False),
            "slow": self.run_smc(fast_path=False, block_tier=False),
        }
        for name, bm in tiers.items():
            assert self.observed(jit) == self.observed(bm), name

    def test_patch_takes_effect_next_pass(self):
        """A genuinely mutating patch (NOP -> SBA) halves the
        iterations from the second pass; all tiers agree."""

        def program(count):
            words = self.smc_loop(count)
            words[4] = asm_inst(Op.NOP)  # starts as NOP, becomes SBA
            return words

        def run(**proc_kwargs):
            bm = BareMachine(**proc_kwargs)
            bm.add_segment(8, words=program(400), r1=4)
            bm.start(8, 0, ring=4)
            bm.run(max_steps=20000)
            assert bm.proc.halted
            return self.observed(bm)

        assert run(jit_tier=True) == run() == run(block_tier=False)


class TestSdwEviction:
    """Associative-memory churn pauses traces for the evicted segment."""

    @pytest.mark.parametrize("slots", [2, 4])
    def test_two_slot_cache_churn_matches_block_tier(self, slots):
        jit = run_call_loop(
            sdw_cache_slots=slots, jit_tier_enabled=True
        )[1]
        block = run_call_loop(sdw_cache_slots=slots)[1]
        assert figures(jit) == figures(block)


class TestTimerAndEventBoundaries:
    """Expiry at every offset around a trace-iteration boundary."""

    def spin_program(self):
        return [
            asm_inst(Op.LDA, offset=0, immediate=True),
            asm_inst(Op.ADA, offset=1, immediate=True),  # loop
            asm_inst(Op.NOP),
            asm_inst(Op.NOP),
            asm_inst(Op.TRA, offset=1),
        ]

    def outcome(self, bm):
        return (
            bm.proc.stats.instructions,
            bm.proc.cycles,
            bm.regs.a,
            bm.regs.ipr.wordno,
        )

    def run_with_timer(self, ticks, **proc_kwargs):
        bm = BareMachine(**proc_kwargs)
        bm.add_segment(8, words=self.spin_program(), r1=4)
        bm.start(8, 0, ring=4)
        bm.proc.set_timer(ticks)
        with pytest.raises(Fault) as excinfo:
            bm.run(max_steps=20000)
        assert excinfo.value.code is FaultCode.TIMER
        return self.outcome(bm)

    # The compiled spin trace is 4 instructions per iteration; well
    # past warm-up, cover each landing offset within an iteration plus
    # the warm-up edge itself.
    TICKS = [
        WARMUP_CHUNK * HOT_THRESHOLD - 1,
        WARMUP_CHUNK * HOT_THRESHOLD,
        2000, 2001, 2002, 2003,
    ]

    @pytest.mark.parametrize("ticks", TICKS)
    def test_timer_expiry_identical_across_tiers(self, ticks):
        jit = self.run_with_timer(ticks, jit_tier=True)
        block = self.run_with_timer(ticks)
        slow = self.run_with_timer(
            ticks, fast_path=False, block_tier=False
        )
        assert jit == block == slow
        assert jit[0] == ticks

    @pytest.mark.parametrize("after", [2000, 2001, 2002, 2003])
    def test_event_expiry_identical_across_tiers(self, after):
        def run(**proc_kwargs):
            bm = BareMachine(**proc_kwargs)
            bm.add_segment(8, words=self.spin_program(), r1=4)
            bm.start(8, 0, ring=4)
            bm.proc.schedule_event(after, FaultCode.IO_COMPLETION, "t")
            with pytest.raises(Fault) as excinfo:
                bm.run(max_steps=20000)
            assert excinfo.value.code is FaultCode.IO_COMPLETION
            return self.outcome(bm)

        jit = run(jit_tier=True)
        assert jit == run() == run(fast_path=False, block_tier=False)
        assert jit[0] == after

    @pytest.mark.parametrize("budget", [2000, 2001, 2002, 2003])
    def test_budget_runout_mid_trace_identical(self, budget):
        from repro.errors import ConfigurationError

        def run(**proc_kwargs):
            bm = BareMachine(**proc_kwargs)
            bm.add_segment(8, words=self.spin_program(), r1=4)
            bm.start(8, 0, ring=4)
            with pytest.raises(ConfigurationError):
                bm.run(max_steps=budget)  # spin loop never halts
            return self.outcome(bm)

        jit = run(jit_tier=True)
        assert jit == run() == run(fast_path=False, block_tier=False)
        assert jit[0] == budget


class TestSnapshotRestore:
    """Snapshots round-trip jit machines: caches drop, then rewarm."""

    def test_roundtrip_preserves_figures_and_config(self):
        machine, first = run_call_loop(
            jit_tier_enabled=True, fast_gate=True
        )
        assert machine.processor.jit_cache.stats()["entries"] > 0
        snap = snapshot_machine(machine)
        assert snap["config"]["jit_tier_enabled"] is True
        assert snap["config"]["fast_gate"] is True
        restored = restore_machine(snap)
        proc = restored.processor
        assert proc.jit_cache.enabled
        assert restored.fast_gate
        # Counters round-trip; trace contents do not (cold caches).
        assert proc.jit_cache.stats()["entries"] == 0
        assert proc.jit_cache.hits == machine.processor.jit_cache.hits
        assert (
            proc.jit_cache.instructions
            == machine.processor.jit_cache.instructions
        )

    def test_checkpoint_discipline_keeps_full_metrics_identical(self):
        """Dropping host caches at the checkpoint (what the serve
        workers do) makes a continued live machine and a restored
        successor agree in *every* counter, host tiers included."""
        machine, process = build_call_loop(
            count=HOT_COUNT, jit_tier_enabled=True, fast_gate=True
        )
        first = machine.run(process, "caller$main", ring=4)
        machine.processor.drop_host_caches()
        snap = snapshot_machine(machine)
        restored = restore_machine(snap)
        rprocess = restored.supervisor.processes[0]

        live = machine.run(
            process, "caller$main", ring=4, reset_counters=True
        )
        replayed = restored.run(
            rprocess, "caller$main", ring=4, reset_counters=True
        )
        assert live.metrics == replayed.metrics

    def test_old_snapshots_default_the_new_knobs_off(self):
        machine, _ = run_call_loop(count=8)
        snap = snapshot_machine(machine)
        del snap["config"]["jit_tier_enabled"]
        del snap["config"]["fast_gate"]
        restored = restore_machine(snap)
        assert not restored.processor.jit_cache.enabled
        assert not restored.fast_gate

    def test_block_override_clamps_inherited_jit(self):
        machine, _ = run_call_loop(count=8, jit_tier_enabled=True)
        snap = snapshot_machine(machine)
        restored = restore_machine(
            snap, fast_path_enabled=False, block_tier_enabled=False
        )
        assert not restored.processor.jit_cache.enabled


class TestFastGate:
    """Repeat gate entry skips re-attach; traces survive between runs."""

    def test_repeat_run_reuses_traces(self):
        machine, process = build_call_loop(
            count=HOT_COUNT, jit_tier_enabled=True, fast_gate=True
        )
        first = machine.run(process, "caller$main", ring=4)
        assert machine.processor.jit_cache.stats()["compiled"] >= 1
        second = machine.run(process, "caller$main", ring=4)
        stats = machine.processor.jit_cache.stats()
        # No recompilation: the repeat call entered the surviving
        # trace directly (counters were reset between the runs).
        assert stats["compiled"] == 0
        assert stats["hits"] >= 1
        # The repeat call re-validated nothing: the SDW associative
        # memory stayed warm, so the descriptor fetches the first call
        # paid are gone and the figures got (slightly) cheaper — the
        # measured form of the paper's repeat-gate-call claim.
        assert (second.a, second.q, second.ring) == (
            first.a, first.q, first.ring,
        )
        assert second.instructions == first.instructions
        assert second.metrics.sdw_misses == 0
        assert second.cycles < first.cycles

    def test_default_gate_recompiles_after_reattach(self):
        machine, process = build_call_loop(
            count=HOT_COUNT, jit_tier_enabled=True
        )
        first = machine.run(process, "caller$main", ring=4)
        second = machine.run(process, "caller$main", ring=4)
        # The DBR switch in attach flushed every host cache.
        assert machine.processor.jit_cache.stats()["compiled"] >= 1
        assert figures(second) == figures(first)


class TestParityBackstop:
    """REPRO_JIT_PARITY=1 co-executes every trace against per-step."""

    def test_parity_run_matches_plain_jit_run(self, monkeypatch):
        plain = run_call_loop(jit_tier_enabled=True)
        monkeypatch.setenv("REPRO_JIT_PARITY", "1")
        parity_machine, parity_result = run_call_loop()
        stats = parity_machine.processor.jit_cache.stats()
        assert parity_machine.processor.jit_cache.parity
        assert stats["hits"] >= 1
        assert figures(parity_result) == figures(plain[1])
        # Host-tier figures agree too: a parity run is bit-for-bit
        # indistinguishable from a non-parity jit run.
        assert parity_result.metrics == plain[1].metrics

    def test_parity_covers_smc_traces(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PARITY", "1")
        smc = TestSelfModifyingCode()
        bm = smc.run_smc(jit_tier=True)
        assert bm.proc.jit_cache.stats()["invalidations"] >= 1


class TestTraceCacheUnit:
    def test_install_evicts_at_capacity(self):
        cache = TraceCache(enabled=True, parity=False)

        class FakeTrace:
            def __init__(self, key):
                self.key = key
                self.valid = True
                self.words = {key[0]: {key[1]}}

        from repro.cpu.jit import MAX_TRACES

        for i in range(MAX_TRACES):
            cache.install(FakeTrace((i, 0, 4)))
        assert len(cache) == MAX_TRACES
        cache.install(FakeTrace((MAX_TRACES, 0, 4)))
        assert len(cache) == 1  # wholesale flush, then the newcomer

    def test_invalidate_word_applies_rebuild_backoff(self):
        cache = TraceCache(enabled=True, parity=False)

        class FakeTrace:
            key = (8, 0, 4)
            valid = True
            words = {8: {0, 1, 2}}

        cache.install(FakeTrace())
        cache.invalidate_word(8, 1)
        assert cache.get((8, 0, 4)) is None
        assert cache.invalidations == 1
        # Well more than HOT_THRESHOLD dispatches needed again.
        for _ in range(HOT_THRESHOLD):
            assert not cache.note_dispatch((8, 0, 4))

    def test_max_trace_len_bounds_recording(self):
        assert MAX_TRACE_LEN >= 4  # sanity: room for a call loop body
