"""Two processors on one memory.

The paper's processor mechanisms are per-processor (each has its own
DBR, PRs, ring of execution); the memory, descriptor segments, and
segments are shared system state.  These tests interleave two Processor
instances over one PhysicalMemory — two users running simultaneously,
each in its own virtual memory, sharing one data segment.
"""

import pytest

from repro.core.acl import AclEntry, RingBracketSpec
from repro.cpu.processor import Processor
from repro.errors import MachineHalted
from repro.sim.machine import Machine

USER_ACL = [AclEntry("*", RingBracketSpec.procedure(4))]

WORKER = """
        .seg    NAME
main::  lda     =COUNT
loop:   aos     l_shared,*
        sba     =1
        tnz     loop
        halt
l_shared: .its  shared
"""


def build(machine):
    alice = machine.add_user("alice")
    bob = machine.add_user("bob")
    machine.store_data(">shared", [0], acl=[AclEntry("*", RingBracketSpec.data(4))])
    machine.store_program(
        ">a>wa", WORKER.replace("NAME", "wa").replace("COUNT", "15"), acl=USER_ACL
    )
    machine.store_program(
        ">b>wb", WORKER.replace("NAME", "wb").replace("COUNT", "10"), acl=USER_ACL
    )
    pa = machine.login(alice)
    pb = machine.login(bob)
    machine.initiate(pa, ">a>wa")
    machine.initiate(pb, ">b>wb")
    return pa, pb


def start_on(machine, cpu, process, ref, ring=4):
    machine.supervisor.attach(cpu, process)
    segno, wordno = process.entry_of(ref)
    stack = process.stack_segno(ring)
    for pr in cpu.registers.prs:
        pr.load(stack, 0, ring)
    cpu.registers.crr = ring
    cpu.registers.ipr.set(ring, segno, wordno)


class TestTwoProcessors:
    def test_interleaved_execution_shares_memory(self, machine):
        pa, pb = build(machine)
        cpu_a = machine.processor
        cpu_b = Processor(machine.memory)
        start_on(machine, cpu_a, pa, "wa$main")
        start_on(machine, cpu_b, pb, "wb$main")

        halted = {cpu_a: False, cpu_b: False}
        for _ in range(2000):
            for cpu in (cpu_a, cpu_b):
                if halted[cpu]:
                    continue
                try:
                    cpu.step()
                except MachineHalted:
                    halted[cpu] = True
            if all(halted.values()):
                break
        assert all(halted.values())

        shared = machine.supervisor.activate(">shared")
        assert machine.memory.peek_block(shared.placed.addr, 1) == [25]

    def test_each_processor_has_its_own_ring_state(self, machine):
        """Processor A can sit in ring 0 while B runs ring 4 — ring of
        execution is per-processor, not per-system."""
        pa, pb = build(machine)
        cpu_a = machine.processor
        cpu_b = Processor(machine.memory)
        start_on(machine, cpu_a, pa, "wa$main", ring=4)
        start_on(machine, cpu_b, pb, "wb$main", ring=4)
        cpu_b.registers.ipr.ring = 4
        # force A's registers into ring 0 briefly (supervisor-style)
        cpu_a.registers.ipr.ring = 0
        assert cpu_a.registers.ipr.ring != cpu_b.registers.ipr.ring

    def test_separate_dbrs_separate_virtual_memories(self, machine):
        pa, pb = build(machine)
        cpu_a = machine.processor
        cpu_b = Processor(machine.memory)
        machine.supervisor.attach(cpu_a, pa)
        machine.supervisor.attach(cpu_b, pb)
        # the same segment number (a stack) maps to different storage
        sdw_a = cpu_a.fetch_sdw(4)
        sdw_b = cpu_b.fetch_sdw(4)
        assert sdw_a.addr != sdw_b.addr
        # but a shared global segment maps to the same storage
        shared_segno = machine.initiate(pa, ">shared")
        assert machine.initiate(pb, ">shared") == shared_segno
        assert (
            cpu_a.fetch_sdw(shared_segno).addr
            == cpu_b.fetch_sdw(shared_segno).addr
        )
