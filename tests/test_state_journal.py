"""The write-ahead journal: framing, torn tails, corruption, batching."""

import pytest

from repro.errors import ConfigurationError, JournalError
from repro.state.journal import (
    MAGIC,
    JournalReader,
    JournalWriter,
    _encode_record,
    read_journal,
)


def write_records(path, payloads, fsync_every=1):
    with JournalWriter(str(path), fsync_every=fsync_every) as writer:
        return [writer.append(record) for record in payloads]


class TestRoundTrip:
    def test_records_come_back_in_order_with_seqs(self, tmp_path):
        path = tmp_path / "j.bin"
        seqs = write_records(path, [{"x": i} for i in range(5)])
        assert seqs == [1, 2, 3, 4, 5]
        records = read_journal(str(path))
        assert [r["x"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        with JournalWriter(str(path)) as writer:
            assert writer.last_seq == 2
            assert writer.append({"x": 2}) == 3
        assert [r["seq"] for r in read_journal(str(path))] == [1, 2, 3]

    def test_reader_is_iterable(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 7}])
        assert [r["x"] for r in JournalReader(str(path))] == [7]

    def test_missing_file_is_empty_unless_strict(self, tmp_path):
        path = str(tmp_path / "absent.bin")
        assert read_journal(path) == []
        with pytest.raises(JournalError):
            read_journal(path, strict=True)

    def test_writer_owns_seq(self, tmp_path):
        with JournalWriter(str(tmp_path / "j.bin")) as writer:
            with pytest.raises(ConfigurationError):
                writer.append({"seq": 9})


class TestTornTail:
    def test_torn_payload_dropped_in_recovery_mode(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # rip bytes off the final payload
        records = read_journal(str(path))
        assert [r["x"] for r in records] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_torn_header_dropped_in_recovery_mode(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}])
        path.write_bytes(path.read_bytes() + b"\x05\x00")  # partial frame
        assert [r["x"] for r in read_journal(str(path))] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_writer_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        intact = len(path.read_bytes())
        path.write_bytes(path.read_bytes() + b"\x99\x99\x99")
        with JournalWriter(str(path)) as writer:
            assert writer.last_seq == 2
            writer.append({"x": 2})
        records = read_journal(str(path), strict=True)
        assert [r["x"] for r in records] == [0, 1, 2]
        assert len(path.read_bytes()) > intact


class TestCorruption:
    def test_interior_crc_flip_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 8] ^= 0xFF  # first byte of record 1's payload
        path.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            read_journal(str(path))
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_final_record_crc_flip_is_a_torn_tail(self, tmp_path):
        path = tmp_path / "j.bin"
        write_records(path, [{"x": 0}, {"x": 1}])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert [r["x"] for r in read_journal(str(path))] == [0]
        with pytest.raises(JournalError):
            read_journal(str(path), strict=True)

    def test_sequence_gap_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        body = MAGIC + _encode_record({"seq": 1}) + _encode_record({"seq": 3})
        path.write_bytes(body)
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(str(path))

    def test_bad_magic_always_raises(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"NOTJRNL\n" + _encode_record({"seq": 1}))
        with pytest.raises(JournalError, match="magic"):
            read_journal(str(path))


class TestFsyncBatching:
    def test_appends_buffer_until_the_batch_boundary(self, tmp_path):
        path = tmp_path / "j.bin"
        writer = JournalWriter(str(path), fsync_every=4)
        for i in range(3):
            writer.append({"x": i})
        # nothing flushed yet: a concurrent reader sees an empty journal
        assert read_journal(str(path)) == []
        writer.append({"x": 3})
        assert [r["x"] for r in read_journal(str(path))] == [0, 1, 2, 3]
        writer.append({"x": 4})
        writer.sync()
        assert len(read_journal(str(path))) == 5
        writer.close()

    def test_close_flushes_pending_appends(self, tmp_path):
        path = tmp_path / "j.bin"
        writer = JournalWriter(str(path), fsync_every=100)
        writer.append({"x": 0})
        writer.close()
        assert len(read_journal(str(path))) == 1

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JournalWriter(str(tmp_path / "j.bin"), fsync_every=0)
